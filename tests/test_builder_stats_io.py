"""Tests for the graph builder, Table-I statistics and graph serialization."""

import io

import pytest

from repro.errors import GraphIntegrityError
from repro.model import GraphBuilder, graph_statistics
from repro.model.examples import contact_tracing_example
from repro.model.io import (
    from_json_dict,
    load_csv,
    load_json,
    object_versions,
    save_csv,
    save_json,
    to_json_dict,
    to_networkx,
)
from repro.temporal import Interval, IntervalSet


class TestGraphBuilder:
    def test_simple_build(self):
        graph = (
            GraphBuilder(domain=(0, 9))
            .node("a", "Person")
            .version(0, 4, name="ann")
            .node("b", "Person")
            .version(2, 6)
            .edge("ab", "knows", "a", "b")
            .version(2, 4)
            .build()
        )
        assert graph.label("a") == "Person"
        assert graph.existence("ab") == IntervalSet([(2, 4)])
        assert graph.property_value("a", "name", 3) == "ann"

    def test_domain_inferred_from_versions(self):
        graph = GraphBuilder().node("a", "L").version(3, 7).build()
        assert graph.domain == Interval(3, 7)

    def test_multiple_versions_with_property_change(self):
        graph = (
            GraphBuilder(domain=(1, 9))
            .node("n", "Person")
            .version(1, 4, risk="low")
            .version(5, 9, risk="high")
            .build()
        )
        assert graph.property_value("n", "risk", 4) == "low"
        assert graph.property_value("n", "risk", 5) == "high"

    def test_symmetric_edge(self):
        builder = GraphBuilder(domain=(0, 5))
        builder.node("a", "Person").version(0, 5)
        builder.node("b", "Person").version(0, 5)
        fwd, bwd = builder.symmetric_edge("m", "meets", "a", "b")
        fwd.version(1, 2)
        bwd.version(1, 2)
        graph = builder.build()
        assert graph.endpoints("m") == ("a", "b")
        assert graph.endpoints("m_rev") == ("b", "a")

    def test_duplicate_declaration_rejected(self):
        builder = GraphBuilder(domain=(0, 5))
        builder.node("a", "Person").version(0, 5)
        with pytest.raises(GraphIntegrityError):
            builder.node("a", "Person")

    def test_object_without_versions_rejected(self):
        builder = GraphBuilder(domain=(0, 5))
        builder.node("a", "Person")
        with pytest.raises(GraphIntegrityError):
            builder.build()

    def test_empty_builder_rejected(self):
        with pytest.raises(GraphIntegrityError):
            GraphBuilder().build()

    def test_invalid_edge_interval_rejected_at_build(self):
        builder = GraphBuilder(domain=(0, 9))
        builder.node("a", "P").version(0, 3)
        builder.node("b", "P").version(0, 9)
        builder.edge("ab", "knows", "a", "b").version(2, 7)
        with pytest.raises(GraphIntegrityError):
            builder.build()


class TestStatistics:
    def test_figure1_statistics(self, figure1):
        stats = graph_statistics(figure1)
        assert stats.num_nodes == 7
        assert stats.num_edges == 10
        assert stats.num_time_points == 11
        # Node versions: n1:1, n2:2, n3:1, n4:1, n5:1, n6:3, n7:1 = 10
        assert stats.num_temporal_nodes == 10
        # Edge versions: e1 has two (property change), all others one = 11
        assert stats.num_temporal_edges == 11

    def test_statistics_from_tpg(self, figure1_tpg):
        assert graph_statistics(figure1_tpg) == graph_statistics(contact_tracing_example())

    def test_as_row_keys(self, figure1):
        row = graph_statistics(figure1).as_row()
        assert set(row) == {"# nodes", "# edges", "# temp. nodes", "# temp. edges", "|Omega|"}


class TestObjectVersions:
    def test_versions_of_changing_node(self, figure1):
        versions = list(object_versions(figure1, "n6"))
        assert [(v["start"], v["end"]) for v in versions] == [(2, 8), (9, 9), (10, 11)]
        assert versions[1]["properties"]["test"] == "pos"
        assert "test" not in versions[0]["properties"]

    def test_versions_of_stable_node(self, figure1):
        versions = list(object_versions(figure1, "n1"))
        assert len(versions) == 1
        assert versions[0]["properties"] == {"name": "Ann", "risk": "low"}

    def test_versions_of_edge_with_property_change(self, figure1):
        versions = list(object_versions(figure1, "e1"))
        assert [(v["start"], v["end"]) for v in versions] == [(3, 3), (5, 6)]
        assert versions[0]["properties"]["loc"] == "cafe"
        assert versions[1]["properties"]["loc"] == "park"


class TestJsonSerialization:
    def test_round_trip_dict(self, figure1):
        payload = to_json_dict(figure1)
        back = from_json_dict(payload)
        assert set(back.nodes()) == set(figure1.nodes())
        assert set(back.edges()) == set(figure1.edges())
        for obj in figure1.objects():
            assert back.existence(obj) == figure1.existence(obj)
            for name in figure1.property_names(obj):
                assert back.property_family(obj, name) == figure1.property_family(obj, name)

    def test_round_trip_file_object(self, figure1):
        buffer = io.StringIO()
        save_json(figure1, buffer)
        buffer.seek(0)
        back = load_json(buffer)
        assert set(back.objects()) == set(figure1.objects())

    def test_round_trip_path(self, figure1, tmp_path):
        path = tmp_path / "graph.json"
        save_json(figure1, path)
        back = load_json(path)
        assert back.domain == figure1.domain

    def test_malformed_payload_rejected(self):
        with pytest.raises(GraphIntegrityError):
            from_json_dict({"nodes": []})


class TestCsvSerialization:
    def test_round_trip(self, figure1, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        save_csv(figure1, nodes, edges)
        back = load_csv(nodes, edges, domain=(1, 11))
        assert set(back.objects()) == set(figure1.objects())
        for obj in figure1.objects():
            assert back.existence(obj) == figure1.existence(obj)

    def test_domain_inference(self, figure1, tmp_path):
        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        save_csv(figure1, nodes, edges)
        back = load_csv(nodes, edges)
        assert back.domain == Interval(1, 11)


class TestNetworkxExport:
    def test_export_counts(self, figure1):
        nx_graph = to_networkx(figure1)
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph.number_of_edges() == 10

    def test_export_attributes(self, figure1):
        nx_graph = to_networkx(figure1)
        assert nx_graph.nodes["n1"]["label"] == "Person"
        assert nx_graph.nodes["n6"]["existence"] == [(2, 11)]
