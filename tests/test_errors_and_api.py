"""Tests for the exception hierarchy and the top-level package API."""

import pytest

import repro
from repro.errors import (
    EvaluationError,
    GraphIntegrityError,
    InvalidIntervalError,
    QuerySyntaxError,
    QueryTranslationError,
    ReproError,
    UnknownObjectError,
    UnsupportedFragmentError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidIntervalError,
            GraphIntegrityError,
            UnknownObjectError,
            QuerySyntaxError,
            QueryTranslationError,
            UnsupportedFragmentError,
            EvaluationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_are_value_errors(self):
        assert issubclass(InvalidIntervalError, ValueError)
        assert issubclass(QuerySyntaxError, ValueError)

    def test_unknown_object_is_key_error(self):
        assert issubclass(UnknownObjectError, KeyError)

    def test_single_except_clause_catches_everything(self, figure1):
        from repro.dataflow import DataflowEngine

        engine = DataflowEngine(figure1)
        with pytest.raises(ReproError):
            engine.match("MATCH (x")  # syntax error
        with pytest.raises(ReproError):
            engine.match("MATCH (x)-/(FWD/FWD)*/-(y) ON g")  # unsupported fragment


class TestTopLevelApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_module_docstring(self):
        graph = repro.contact_tracing_example()
        engine = repro.DataflowEngine(graph)
        table = engine.match(
            "MATCH (x:Person {risk = 'high'})-"
            "/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON contact_tracing"
        )
        assert len(table) == 3

    def test_parse_and_classify_roundtrip(self):
        expr = repro.parse_path("FWD/:meets/FWD/NEXT[0,12]")
        assert repro.classify(expr) is repro.Fragment.NOI

    def test_graph_statistics_export(self):
        stats = repro.graph_statistics(repro.contact_tracing_example())
        assert stats.num_nodes == 7

    def test_snapshot_exports(self):
        graph = repro.contact_tracing_example()
        snap = repro.snapshot_at(graph, 5)
        assert snap.has_node("n1")
        assert len(list(repro.snapshot_sequence(graph))) == 11

    def test_interval_exports(self):
        assert repro.Interval(1, 2).end == 2
        assert repro.IntervalSet([(1, 2)]).total_points() == 2
