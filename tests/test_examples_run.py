"""Smoke tests: every example script must run end to end.

The examples are part of the public deliverable; these tests import each
script as a module and call its ``main()`` so that API drift breaks the
build instead of silently breaking the documentation.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Q9" in out and "Cross-check passed" in out

    def test_contact_tracing_small_population(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["contact_tracing.py", "60"])
        _load("contact_tracing").main()
        out = capsys.readouterr().out
        assert "Exposure analysis" in out

    def test_travel_planning(self, capsys):
        _load("travel_planning").main()
        out = capsys.readouterr().out
        assert "earliest arrival" in out
        assert "buenos_aires" in out

    def test_room_availability(self, capsys):
        _load("room_availability").main()
        out = capsys.readouterr().out
        assert "next available at hour 12" in out
        assert "room_c: never closed" in out

    def test_every_example_has_a_test(self):
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        covered = {"quickstart", "contact_tracing", "travel_planning", "room_availability"}
        assert scripts == covered, "add a smoke test for new example scripts"


class TestMainModule:
    def test_python_dash_m_entry_point(self, capsys):
        from repro.cli import main

        assert main(["query", "Q3"]) == 0
        assert "n1" in capsys.readouterr().out

    def test_main_module_importable(self):
        import repro.__main__  # noqa: F401

    @pytest.mark.parametrize("name", ["quickstart", "travel_planning"])
    def test_examples_define_main(self, name):
        module = _load(name)
        assert callable(module.main)
