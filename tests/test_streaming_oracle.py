"""Streaming differential oracle: incremental == cold, after every batch.

The streaming engine rewrites the maintenance path of every compiled
structure the evaluators rely on (graph index condition tables, hop
tables, per-seed cached families), so this suite holds it to the same
standard the coalescing frontier was held to in PR 2: randomized
differential fuzzing.

For ≥ 200 fuzzed ``(graph, query, delta-sequence)`` cases:

* three **incremental** sessions (coalesced+index, coalesced without
  index, legacy rows — the dataflow configurations of the fuzz-oracle
  matrix) apply the same delta batches to independent copies of the
  graph;
* after *every* batch, each session's table must equal a **cold** full
  evaluation by a fresh engine on a pristine rebuild of the materialized
  graph — no shared index, no shared caches;
* where the coalesced output is defined, the incremental families must
  also be canonical (one entry per binding tuple, nonempty coalesced
  times) and expand exactly to the cold rows — the interval-vs-point
  oracle of PR 3, now over mutated graphs;
* every fourth case additionally cross-checks the cold row set against
  the reference engine in both point and interval modes, closing the
  loop with the remaining fuzz-oracle configurations.

Failure messages carry the seeds needed to replay a case in isolation
(`run_streaming_case(seed)`).  ``REPRO_FUZZ_SEED_OFFSET`` shifts the
window, so the CI fuzz matrix exercises disjoint cases.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.datagen.random_graphs import (
    random_delta_batches,
    random_itpg,
    random_match_query,
)
from repro.dataflow import DataflowEngine
from repro.errors import EvaluationError
from repro.eval import ReferenceEngine
from repro.eval.bindings import expand_match_families
from repro.model.io import from_json_dict, to_json_dict

#: Sweep size: ``BATCHES x BATCH_SIZE`` cases (each with 3 delta batches
#: and 4 incremental configurations).
BATCH_SIZE = 25
BATCHES = 8  # 200 cases, the floor required by the acceptance criteria
#: Every Nth case also cross-checks the reference engines on the cold side.
REFERENCE_EVERY = 4
SEED_OFFSET = int(os.environ.get("REPRO_FUZZ_SEED_OFFSET", "0"))


def incremental_engines(payload: dict) -> dict[str, DataflowEngine]:
    """The dataflow fuzz-oracle configurations as streaming sessions.

    Each gets its own graph copy: a delta batch applies to a graph
    exactly once, so sessions cannot share one instance.
    """
    return {
        "stream-coalesced": DataflowEngine(from_json_dict(payload), incremental=True),
        "stream-coalesced-noindex": DataflowEngine(
            from_json_dict(payload), use_index=False, incremental=True
        ),
        "stream-legacy-rows": DataflowEngine(
            from_json_dict(payload), use_coalesced=False, incremental=True
        ),
        "stream-columnar": DataflowEngine(
            from_json_dict(payload), kernel="columnar", incremental=True
        ),
    }


def check_intervals(name, engine, query, variables, cold_rows, context) -> None:
    """Canonicity + exact expansion of the incremental coalesced output."""
    try:
        families = engine.match_intervals(query)
    except EvaluationError:
        return
    seen = set()
    for bindings, times in families:
        assert bindings not in seen, (
            f"{name} produced duplicate family bindings {bindings!r} ({context})"
        )
        seen.add(bindings)
        assert not times.is_empty(), (
            f"{name} produced an empty-times family for {bindings!r} ({context})"
        )
    expanded = expand_match_families(families, variables)
    assert expanded == cold_rows, (
        f"{name} interval output diverged from the cold point table ({context}): "
        f"{len(expanded)} rows vs {len(cold_rows)}; "
        f"extra={sorted(expanded - cold_rows, key=repr)[:5]}, "
        f"missing={sorted(cold_rows - expanded, key=repr)[:5]}"
    )


def check_durability(payload, query, batches, cold_rows, context, tmpdir) -> None:
    """The WAL + snapshot differential: restart-from-disk == continuous.

    A durable session (delta WAL + a snapshot every second batch) applies
    the same stream; the state recovered from its snapshot + WAL tail —
    a cold process that never saw the live stream — must answer exactly
    like the continuous run (= the cold oracle).
    """
    from repro.resilience import recover
    from repro.streaming import DeltaBatch

    wal_path = os.path.join(tmpdir, "deltas.wal")
    snap_path = os.path.join(tmpdir, "state.snap")
    durable = DataflowEngine(from_json_dict(payload), incremental=True)
    name = durable.streaming_session().register(query)
    session = durable.streaming_session()
    session.attach_wal(wal_path)
    session.configure_snapshots(snap_path, every=2)
    for batch in batches:
        durable.apply_delta(DeltaBatch.from_json_dict(batch.to_json_dict()))
    session.wal.close()
    assert os.path.exists(snap_path), f"no snapshot written ({context})"
    # ``queries=`` because the fuzzed MatchQuery objects carry no
    # parseable text for recovery to re-register from.
    recovered, report = recover(snap_path, wal_path, queries={name: query})
    assert not report.torn_tail, f"clean WAL reported torn ({context})"
    assert report.skipped + report.replayed == len(batches), (
        f"recovery covered {report.skipped}+{report.replayed} WAL records, "
        f"expected {len(batches)} ({context})"
    )
    recovered_rows = recovered.table(name).as_set()
    assert recovered_rows == cold_rows, (
        f"snapshot+WAL recovery diverged from the continuous run ({context}): "
        f"{len(recovered_rows)} vs {len(cold_rows)} rows; "
        f"extra={sorted(recovered_rows - cold_rows, key=repr)[:5]}, "
        f"missing={sorted(cold_rows - recovered_rows, key=repr)[:5]}"
    )


def run_streaming_case(seed: int) -> None:
    """One streaming differential case; raises AssertionError on divergence.

    Reproduce a failure with::

        graph = random_itpg(<seed>)
        query = random_match_query(<seed> * 31 + 7)
        batches = random_delta_batches(graph, <seed> * 17 + 3)
    """
    base = random_itpg(seed)
    query = random_match_query(seed * 31 + 7)
    batches = random_delta_batches(base, seed * 17 + 3)
    payload = to_json_dict(base)
    engines = incremental_engines(payload)
    for engine in engines.values():
        engine.match(query)  # cold registration
    shadow = from_json_dict(payload)
    check_reference = seed % REFERENCE_EVERY == 0

    from repro.streaming import DeltaBatch, apply_delta

    for number, batch in enumerate(batches, start=1):
        context = f"seed={seed}, batch={number}/{len(batches)}"
        apply_delta(shadow, batch)
        for engine in engines.values():
            # Re-serialize per engine: batches apply to one graph once.
            engine.apply_delta(DeltaBatch.from_json_dict(batch.to_json_dict()))
        cold_engine = DataflowEngine(from_json_dict(to_json_dict(shadow)))
        cold_table = cold_engine.match(query)
        cold_rows = cold_table.as_set()
        for name, engine in engines.items():
            incremental_rows = engine.match(query).as_set()
            assert incremental_rows == cold_rows, (
                f"{name} diverged from cold evaluation ({context}): "
                f"{len(incremental_rows)} vs {len(cold_rows)} rows; "
                f"extra={sorted(incremental_rows - cold_rows, key=repr)[:5]}, "
                f"missing={sorted(cold_rows - incremental_rows, key=repr)[:5]}"
            )
            check_intervals(
                name, engine, query, cold_table.variables, cold_rows, context
            )
        if check_reference:
            pristine = from_json_dict(to_json_dict(shadow))
            for ref_name, reference in (
                ("reference-point", ReferenceEngine(pristine)),
                ("reference-intervals", ReferenceEngine(pristine, use_intervals=True)),
            ):
                assert reference.match(query).as_set() == cold_rows, (
                    f"{ref_name} disagreed with the cold dataflow engine "
                    f"({context})"
                )
    # Durability oracle (PR 6): a session restarted from its snapshot +
    # WAL must answer exactly like the continuous run.  ``cold_rows``
    # here is the final-state cold table from the last loop iteration.
    with tempfile.TemporaryDirectory(prefix="repro-durable-") as tmpdir:
        check_durability(
            payload, query, batches, cold_rows, f"seed={seed}, final", tmpdir
        )


@pytest.mark.parametrize("batch", range(BATCHES))
def test_streaming_differential_batch(batch: int) -> None:
    for position in range(BATCH_SIZE):
        run_streaming_case(SEED_OFFSET + batch * BATCH_SIZE + position)


def test_sweep_size_meets_charter() -> None:
    assert BATCHES * BATCH_SIZE >= 200


def test_recovery_with_torn_final_wal_record_matches_prefix_run() -> None:
    """A crash mid-append loses exactly the torn record, nothing else.

    The WAL's last line is cut in half (what an interrupted write leaves
    behind); recovery must drop it, report the tear, and land on the
    state of the stream *prefix* — identical to a continuous run that
    never saw the final batch.
    """
    from repro.resilience import recover
    from repro.streaming import DeltaBatch

    seed = 1
    base = random_itpg(seed)
    query = random_match_query(seed * 31 + 7)
    batches = random_delta_batches(base, seed * 17 + 3)
    payload = to_json_dict(base)
    with tempfile.TemporaryDirectory(prefix="repro-torn-") as tmpdir:
        wal_path = os.path.join(tmpdir, "deltas.wal")
        snap_path = os.path.join(tmpdir, "state.snap")
        durable = DataflowEngine(from_json_dict(payload), incremental=True)
        session = durable.streaming_session()
        name = session.register(query)
        session.attach_wal(wal_path)
        session.snapshot(snap_path)  # snapshot of the pre-stream state
        for batch in batches:
            durable.apply_delta(DeltaBatch.from_json_dict(batch.to_json_dict()))
        session.wal.close()

        # Tear the final record the way a power cut would.
        with open(wal_path, "rb") as handle:
            raw = handle.read()
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:-1])
        if torn:
            torn += b"\n"
        torn += lines[-1][: len(lines[-1]) // 2]
        with open(wal_path, "wb") as handle:
            handle.write(torn)

        recovered, report = recover(snap_path, wal_path, queries={name: query})
        assert report.torn_tail
        assert report.replayed == len(batches) - 1

        # The continuous prefix run: same stream minus the lost batch.
        prefix = DataflowEngine(from_json_dict(payload), incremental=True)
        prefix_name = prefix.streaming_session().register(query)
        for batch in batches[:-1]:
            prefix.apply_delta(DeltaBatch.from_json_dict(batch.to_json_dict()))
        assert (
            recovered.table(name).as_set()
            == prefix.streaming_session().table(prefix_name).as_set()
        )
