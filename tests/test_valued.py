"""Unit tests for valued intervals and coalesced valued-interval families."""

import pytest

from repro.errors import InvalidIntervalError
from repro.temporal import Interval, IntervalSet, ValuedInterval, ValuedIntervalSet


class TestValuedInterval:
    def test_accessors(self):
        entry = ValuedInterval("low", Interval(1, 4))
        assert entry.value == "low"
        assert entry.start == 1
        assert entry.end == 4

    def test_equality(self):
        assert ValuedInterval("a", Interval(1, 2)) == ValuedInterval("a", Interval(1, 2))
        assert ValuedInterval("a", Interval(1, 2)) != ValuedInterval("b", Interval(1, 2))


class TestConstruction:
    def test_empty(self):
        assert ValuedIntervalSet.empty().is_empty()

    def test_constant(self):
        family = ValuedIntervalSet.constant("x", 2, 6)
        assert family.entries == (ValuedInterval("x", Interval(2, 6)),)

    def test_same_value_adjacent_entries_merge(self):
        family = ValuedIntervalSet([("v", Interval(1, 2)), ("v", Interval(3, 4))])
        assert family.entries == (ValuedInterval("v", Interval(1, 4)),)

    def test_same_value_overlapping_entries_merge(self):
        family = ValuedIntervalSet([("v", Interval(1, 4)), ("v", Interval(3, 6))])
        assert family.entries == (ValuedInterval("v", Interval(1, 6)),)

    def test_different_value_adjacent_entries_stay(self):
        family = ValuedIntervalSet([("a", Interval(1, 2)), ("b", Interval(3, 4))])
        assert len(family) == 2

    def test_conflicting_overlap_rejected(self):
        with pytest.raises(InvalidIntervalError):
            ValuedIntervalSet([("a", Interval(1, 4)), ("b", Interval(3, 6))])

    def test_gap_with_same_value_stays_separate(self):
        family = ValuedIntervalSet([("v", Interval(1, 2)), ("v", Interval(5, 8))])
        assert len(family) == 2

    def test_from_points(self):
        family = ValuedIntervalSet.from_points([(1, "a"), (2, "a"), (3, "b"), (5, "b")])
        assert family.entries == (
            ValuedInterval("a", Interval(1, 2)),
            ValuedInterval("b", Interval(3, 3)),
            ValuedInterval("b", Interval(5, 5)),
        )

    def test_from_points_conflicting_assignment_rejected(self):
        with pytest.raises(InvalidIntervalError):
            ValuedIntervalSet.from_points([(1, "a"), (1, "b")])

    def test_equality_and_hash(self):
        a = ValuedIntervalSet([("v", Interval(1, 2))])
        b = ValuedIntervalSet([("v", Interval(1, 2))])
        assert a == b and hash(a) == hash(b)


class TestLookup:
    @pytest.fixture()
    def risk(self):
        # Bob's risk history from Figure 1.
        return ValuedIntervalSet([("low", Interval(1, 4)), ("high", Interval(5, 9))])

    def test_value_at(self, risk):
        assert risk.value_at(1) == "low"
        assert risk.value_at(4) == "low"
        assert risk.value_at(5) == "high"
        assert risk.value_at(9) == "high"

    def test_value_at_undefined(self, risk):
        assert risk.value_at(0) is None
        assert risk.value_at(10) is None

    def test_is_defined_at(self, risk):
        assert risk.is_defined_at(3)
        assert not risk.is_defined_at(11)

    def test_support(self, risk):
        assert risk.support() == IntervalSet([(1, 9)])

    def test_when_equals(self, risk):
        assert risk.when_equals("low") == IntervalSet([(1, 4)])
        assert risk.when_equals("high") == IntervalSet([(5, 9)])
        assert risk.when_equals("none").is_empty()

    def test_values(self, risk):
        assert risk.values() == {"low", "high"}


class TestAlgebra:
    def test_merge_disjoint(self):
        a = ValuedIntervalSet([("x", Interval(1, 2))])
        b = ValuedIntervalSet([("y", Interval(4, 5))])
        merged = a.merge(b)
        assert merged.value_at(1) == "x" and merged.value_at(5) == "y"

    def test_merge_conflict_rejected(self):
        a = ValuedIntervalSet([("x", Interval(1, 4))])
        b = ValuedIntervalSet([("y", Interval(2, 3))])
        with pytest.raises(InvalidIntervalError):
            a.merge(b)

    def test_restrict(self):
        family = ValuedIntervalSet([("a", Interval(1, 5)), ("b", Interval(7, 9))])
        restricted = family.restrict(IntervalSet([(3, 8)]))
        assert restricted.entries == (
            ValuedInterval("a", Interval(3, 5)),
            ValuedInterval("b", Interval(7, 8)),
        )

    def test_restrict_to_empty(self):
        family = ValuedIntervalSet([("a", Interval(1, 5))])
        assert family.restrict(IntervalSet.empty()).is_empty()
