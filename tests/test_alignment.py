"""Unit tests for temporal-alignment join primitives."""

from repro.temporal import Interval, IntervalSet
from repro.temporal.alignment import (
    align,
    align_many,
    align_sets,
    interval_product,
    overlap_join,
    reachable_window,
)


class TestAlign:
    def test_align_overlap(self):
        assert align(Interval(1, 5), Interval(3, 9)) == Interval(3, 5)

    def test_align_disjoint(self):
        assert align(Interval(1, 2), Interval(5, 6)) is None

    def test_align_many(self):
        assert align_many([Interval(1, 9), Interval(3, 7), Interval(5, 11)]) == Interval(5, 7)

    def test_align_many_empty_intersection(self):
        assert align_many([Interval(1, 3), Interval(5, 7)]) is None

    def test_align_many_no_input(self):
        assert align_many([]) is None

    def test_align_sets(self):
        a = IntervalSet([(1, 4), (8, 10)])
        b = IntervalSet([(3, 9)])
        assert align_sets(a, b) == IntervalSet([(3, 4), (8, 9)])


class TestJoins:
    def test_overlap_join_matches_on_key_and_time(self):
        left = [("k1", Interval(1, 5)), ("k2", Interval(1, 5))]
        right = [("k1", Interval(4, 9)), ("k1", Interval(7, 8))]
        out = list(
            overlap_join(
                left,
                right,
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
                left_interval=lambda r: r[1],
                right_interval=lambda r: r[1],
            )
        )
        assert len(out) == 1
        lrow, rrow, overlap = out[0]
        assert lrow[0] == "k1" and rrow[1] == Interval(4, 9)
        assert overlap == Interval(4, 5)

    def test_overlap_join_no_matches(self):
        left = [("k", Interval(1, 2))]
        right = [("k", Interval(5, 6)), ("other", Interval(1, 2))]
        assert list(
            overlap_join(
                left,
                right,
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
                left_interval=lambda r: r[1],
                right_interval=lambda r: r[1],
            )
        ) == []

    def test_interval_product(self):
        left = [("a", Interval(1, 4))]
        right = [("b", Interval(3, 6)), ("c", Interval(9, 9))]
        assert list(interval_product(left, right)) == [("a", "b", Interval(3, 4))]


class TestReachableWindow:
    """The interval form of temporal navigation used by the dataflow engine."""

    DOMAIN = Interval(0, 20)

    def test_forward_bounded_contiguous(self):
        existence = IntervalSet([(0, 10)])
        out = reachable_window(Interval(2, 3), existence, 1, 4, True, True, self.DOMAIN)
        assert out == [(Interval(2, 3), Interval(3, 7))]

    def test_forward_contiguous_respects_run_end(self):
        existence = IntervalSet([(0, 5), (8, 12)])
        out = reachable_window(Interval(4, 4), existence, 0, 10, True, True, self.DOMAIN)
        # The run containing 4 ends at 5; the later run is unreachable
        # contiguously.  Reachable points: {4} (zero moves) ∪ {5}.
        assert out == [
            (Interval(4, 4), Interval(4, 4)),
            (Interval(4, 4), Interval(5, 5)),
        ]

    def test_backward_unbounded_contiguous(self):
        existence = IntervalSet([(2, 9)])
        out = reachable_window(Interval(9, 9), existence, 0, None, False, True, self.DOMAIN)
        assert out == [
            (Interval(9, 9), Interval(9, 9)),
            (Interval(9, 9), Interval(2, 8)),
        ]

    def test_anchor_outside_existence_reaches_only_itself_when_contiguous(self):
        # Zero moves visit no point, so with lower bound 0 every anchor
        # reaches itself regardless of existence ((N/∃)[0,m] semantics:
        # the k = 0 repetition is the identity).
        existence = IntervalSet([(5, 9)])
        out = reachable_window(Interval(1, 2), existence, 0, 3, True, True, self.DOMAIN)
        assert out == [(Interval(1, 2), Interval(1, 2))]

    def test_anchor_just_before_run_can_enter_it(self):
        # The anchor itself is never visited, so a move from t = 4 into
        # the run [5, 9] is contiguous: the visited points 5, 6, 7 exist.
        existence = IntervalSet([(5, 9)])
        out = reachable_window(Interval(4, 4), existence, 1, 3, True, True, self.DOMAIN)
        assert out == [(Interval(4, 4), Interval(5, 7))]

    def test_anchor_just_after_run_can_enter_it_backward(self):
        existence = IntervalSet([(5, 9)])
        out = reachable_window(Interval(10, 10), existence, 2, None, False, True, self.DOMAIN)
        assert out == [(Interval(10, 10), Interval(5, 8))]

    def test_anchor_spanning_two_runs_produces_identity_and_run_windows(self):
        existence = IntervalSet([(0, 3), (6, 9)])
        out = reachable_window(Interval(2, 7), existence, 0, None, True, True, self.DOMAIN)
        assert out == [
            (Interval(2, 7), Interval(2, 7)),  # zero moves
            (Interval(2, 2), Interval(3, 3)),  # within the first run
            (Interval(5, 7), Interval(6, 9)),  # entering/within the second run
        ]

    def test_non_contiguous_ignores_existence(self):
        existence = IntervalSet([(0, 1)])
        out = reachable_window(Interval(3, 4), existence, 2, 3, True, False, self.DOMAIN)
        assert out == [(Interval(3, 4), Interval(5, 7))]

    def test_non_contiguous_clamps_to_domain(self):
        existence = IntervalSet([(0, 20)])
        out = reachable_window(Interval(18, 19), existence, 0, 5, True, False, self.DOMAIN)
        assert out == [(Interval(18, 19), Interval(18, 20))]

    def test_backward_non_contiguous_unbounded(self):
        existence = IntervalSet([(0, 20)])
        out = reachable_window(Interval(5, 6), existence, 2, None, False, False, self.DOMAIN)
        assert out == [(Interval(5, 6), Interval(0, 4))]

    def test_lower_bound_exceeding_run_gives_nothing(self):
        existence = IntervalSet([(0, 4)])
        assert reachable_window(Interval(3, 4), existence, 5, 9, True, True, self.DOMAIN) == []
