"""Tests for the executable hardness reductions of the appendix."""

import pytest

from repro.eval import check_anoi, check_full
from repro.eval.bottom_up import evaluate_path
from repro.lang.fragments import Fragment, classify, in_fragment
from repro.reductions import (
    QBFInstance,
    gsubset_sum_reduction,
    qbf_reduction,
    solve_gsubset_sum,
    solve_qbf,
    solve_subset_sum,
    subset_sum_reduction,
)


def member(instance):
    """Membership of the instance tuple via the reference evaluator."""
    key = instance.source + instance.target
    return key in evaluate_path(instance.graph, instance.path)


class TestSubsetSumGadget:
    @pytest.mark.parametrize(
        "numbers,target",
        [
            ([3, 5, 7], 12),
            ([3, 5, 7], 11),
            ([2, 4, 6], 5),
            ([2, 4, 6], 12),
            ([1], 0),
            ([5], 5),
            ([], 0),
            ([4], 3),
        ],
    )
    def test_matches_brute_force(self, numbers, target):
        instance = subset_sum_reduction(numbers, target)
        assert member(instance) == solve_subset_sum(numbers, target)

    def test_gadget_is_in_anoi_fragment(self):
        instance = subset_sum_reduction([2, 3], 4)
        assert in_fragment(instance.path, Fragment.ANOI)
        assert check_anoi(
            instance.graph, instance.path, instance.source, instance.target
        ) == solve_subset_sum([2, 3], 4)

    def test_graph_is_single_node(self):
        instance = subset_sum_reduction([1, 2], 3)
        assert instance.graph.num_nodes() == 1
        assert instance.graph.num_edges() == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            subset_sum_reduction([-1], 3)
        with pytest.raises(ValueError):
            subset_sum_reduction([1], -3)


class TestGeneralizedSubsetSumGadget:
    @pytest.mark.parametrize(
        "u,w,target",
        [
            ([1], [1], 1),
            ([2], [1], 2),
            ([1, 2], [1], 3),
            ([3], [1, 2], 3),
            ([2, 2], [1], 5),
            ([], [1], 1),
        ],
    )
    def test_matches_brute_force(self, u, w, target):
        instance = gsubset_sum_reduction(u, w, target)
        assert member(instance) == solve_gsubset_sum(u, w, target)

    def test_gadget_avoids_path_conditions(self):
        instance = gsubset_sum_reduction([1], [2], 2)
        assert classify(instance.path) is Fragment.NOI

    def test_description_mentions_instance(self):
        instance = gsubset_sum_reduction([1], [2], 2)
        assert "G-SUBSET-SUM" in instance.description


class TestQBFGadget:
    CASES = [
        (QBFInstance(("exists",), ((1,),)), True),
        (QBFInstance(("forall",), ((1,),)), False),
        (QBFInstance(("exists", "forall"), ((1,),)), True),
        (QBFInstance(("forall", "exists"), ((1, 2),)), True),
        (QBFInstance(("forall", "forall"), ((1, 2),)), False),
        (QBFInstance(("exists", "exists"), ((1,), (-1,))), False),
        (QBFInstance(("forall", "exists"), ((-1, 2), (1, -2))), True),
        (QBFInstance(("exists", "forall"), ((-1, 2), (1, -2))), False),
    ]

    @pytest.mark.parametrize("instance,expected", CASES)
    def test_brute_force_solver(self, instance, expected):
        assert solve_qbf(instance) == expected

    @pytest.mark.parametrize("instance,expected", CASES)
    def test_gadget_matches_solver(self, instance, expected):
        reduction = qbf_reduction(instance)
        assert member(reduction) == expected

    @pytest.mark.parametrize("instance,expected", CASES[:4])
    def test_full_checker_agrees(self, instance, expected):
        reduction = qbf_reduction(instance)
        assert (
            check_full(reduction.graph, reduction.path, reduction.source, reduction.target)
            == expected
        )

    def test_gadget_uses_full_language(self):
        # The bit predicate nests an occurrence indicator inside another
        # (P[2^i, 2^i][0,_]), so the gadget needs the full NavL[PC,NOI].
        reduction = qbf_reduction(QBFInstance(("exists", "forall"), ((1, 2),)))
        assert classify(reduction.path) is Fragment.FULL

    def test_domain_size_is_exponential_in_variables(self):
        reduction = qbf_reduction(QBFInstance(("exists",) * 3, ((1,),)))
        assert len(reduction.graph.domain) == 8

    def test_invalid_instances_rejected(self):
        with pytest.raises(ValueError):
            QBFInstance(("maybe",), ((1,),))
        with pytest.raises(ValueError):
            QBFInstance(("exists",), ((2,),))
        with pytest.raises(ValueError):
            QBFInstance(("exists",), ((0,),))

    def test_empty_clause_set_is_valid(self):
        instance = QBFInstance(("forall",), ())
        assert solve_qbf(instance)
        reduction = qbf_reduction(instance)
        assert member(reduction)
