"""Tests for the baselines: snapshot evaluation, naive point expansion, temporal paths."""

import pytest

from repro.baselines import (
    NaivePointEngine,
    earliest_arrival_path,
    fastest_path,
    latest_departure_path,
    shortest_temporal_path,
    snapshot_reducible_evaluation,
    snapshot_rpq,
    TemporalPathFinder,
)
from repro.baselines.snapshot_eval import contains_temporal_operator
from repro.dataflow import PAPER_QUERIES
from repro.errors import UnsupportedFragmentError
from repro.eval import ReferenceEngine, evaluate_path
from repro.lang import ast
from repro.model import GraphBuilder, snapshot_at


class TestSnapshotRPQ:
    def test_contains_temporal_operator(self):
        assert contains_temporal_operator(ast.N)
        assert contains_temporal_operator(ast.test(ast.time_lt(3)))
        assert not contains_temporal_operator(ast.concat(ast.F, ast.test(ast.exists())))

    def test_single_snapshot_edge_hop(self, figure1):
        snap = snapshot_at(figure1, 5)
        hop = ast.concat(
            ast.test(ast.is_node()), ast.F, ast.test(ast.label("meets")), ast.F
        )
        pairs = snapshot_rpq(snap, hop)
        assert ("n1", "n2") in pairs
        assert ("n7", "n6") in pairs
        assert ("n2", "n3") not in pairs  # e2 does not exist at time 5

    def test_snapshot_repeat(self, figure1):
        snap = snapshot_at(figure1, 6)
        two_hops = ast.repeat(ast.F, 0, 4)
        pairs = snapshot_rpq(snap, two_hops)
        assert ("n3", "n4") in pairs  # n3 -e3-> n4 via two F steps
        assert ("n3", "n3") in pairs  # zero steps

    def test_temporal_expression_rejected(self, figure1):
        snap = snapshot_at(figure1, 5)
        with pytest.raises(UnsupportedFragmentError):
            snapshot_rpq(snap, ast.concat(ast.N, ast.F))


class TestSnapshotReducibility:
    """Structural-only queries agree with per-snapshot evaluation (design principle)."""

    @pytest.mark.parametrize(
        "expr",
        [
            ast.concat(
                ast.test(ast.and_(ast.is_node(), ast.exists())),
                ast.F,
                ast.test(ast.and_(ast.label("meets"), ast.exists())),
                ast.F,
                ast.test(ast.and_(ast.is_node(), ast.exists())),
            ),
            ast.concat(
                ast.test(ast.and_(ast.prop_eq("risk", "high"), ast.exists())),
                ast.F,
                ast.test(ast.and_(ast.label("visits"), ast.exists())),
                ast.F,
                ast.test(ast.and_(ast.label("Room"), ast.exists())),
            ),
        ],
    )
    def test_structural_queries_are_snapshot_reducible(self, figure1, expr):
        temporal = {
            tup
            for tup in evaluate_path(figure1, expr)
        }
        per_snapshot = snapshot_reducible_evaluation(figure1, expr)
        assert temporal == per_snapshot

    def test_snapshot_reducibility_on_tiny_graph(self, tiny):
        expr = ast.concat(
            ast.test(ast.and_(ast.is_node(), ast.exists())),
            ast.F,
            ast.test(ast.exists()),
            ast.F,
            ast.test(ast.and_(ast.is_node(), ast.exists())),
        )
        assert frozenset(evaluate_path(tiny, expr)) == snapshot_reducible_evaluation(tiny, expr)


class TestNaivePointEngine:
    def test_same_answers_as_reference(self, figure1):
        naive = NaivePointEngine(figure1)
        reference = ReferenceEngine(figure1)
        for name in ("Q3", "Q5", "Q6", "Q9"):
            text = PAPER_QUERIES[name].text
            assert naive.match(text).as_set() == reference.match(text).as_set()

    def test_stats_report_expansion_cost(self, figure1):
        naive = NaivePointEngine(figure1)
        result = naive.match_with_stats(PAPER_QUERIES["Q3"].text)
        assert result.expansion_seconds >= 0.0
        assert result.total_seconds >= result.evaluation_seconds


@pytest.fixture()
def travel_graph():
    """A small transport network: flights/trains between four cities over a day."""
    builder = GraphBuilder(domain=(0, 23))
    for city in ("tokyo", "seoul", "dubai", "buenos_aires"):
        builder.node(city, "City").version(0, 23, name=city)
    builder.edge("f1", "flight", "tokyo", "seoul").version(2, 5)
    builder.edge("f2", "flight", "seoul", "dubai").version(7, 10)
    builder.edge("t1", "train", "dubai", "buenos_aires").version(12, 20)
    builder.edge("f3", "flight", "tokyo", "dubai").version(14, 16)
    return builder.build()


class TestTemporalPaths:
    def test_earliest_arrival(self, travel_graph):
        journey = earliest_arrival_path(travel_graph, "tokyo", "buenos_aires")
        assert journey is not None
        assert [e.edge_id for e in journey.edges] == ["f1", "f2", "t1"]
        assert journey.arrival == 13

    def test_earliest_arrival_respects_departure(self, travel_graph):
        finder = TemporalPathFinder(travel_graph)
        journey = finder.earliest_arrival("tokyo", "dubai", depart_after=6)
        assert [e.edge_id for e in journey.edges] == ["f3"]

    def test_unreachable_returns_none(self, travel_graph):
        assert earliest_arrival_path(travel_graph, "buenos_aires", "tokyo") is None

    def test_source_equals_target(self, travel_graph):
        journey = earliest_arrival_path(travel_graph, "tokyo", "tokyo")
        assert journey is not None and journey.hops == 0

    def test_latest_departure(self, travel_graph):
        journey = latest_departure_path(travel_graph, "tokyo", "dubai")
        assert journey is not None
        assert [e.edge_id for e in journey.edges] == ["f3"]
        assert journey.departure >= 14

    def test_fastest(self, travel_graph):
        journey = fastest_path(travel_graph, "tokyo", "dubai")
        assert journey is not None
        # The direct flight (1 hop) is faster than the two-hop route.
        assert [e.edge_id for e in journey.edges] == ["f3"]

    def test_shortest_counts_hops(self, travel_graph):
        # The earliest-arrival route needs 3 hops (via Seoul), but taking the
        # later direct flight to Dubai reaches Buenos Aires in only 2 hops.
        journey = shortest_temporal_path(travel_graph, "tokyo", "buenos_aires")
        assert journey is not None
        assert journey.hops == 2
        assert [e.edge_id for e in journey.edges] == ["f3", "t1"]

    def test_label_filter(self, travel_graph):
        # Using only flights, Buenos Aires is unreachable (the last leg is a train).
        assert earliest_arrival_path(
            travel_graph, "tokyo", "buenos_aires", labels=["flight"]
        ) is None

    def test_journeys_are_time_respecting(self, travel_graph):
        finder = TemporalPathFinder(travel_graph)
        journey = finder.earliest_arrival("tokyo", "buenos_aires")
        times = [e.start for e in journey.edges]
        assert times == sorted(times)
