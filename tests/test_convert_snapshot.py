"""Tests for TPG ↔ ITPG conversion and for snapshot extraction."""

import pytest

from repro.model import (
    IntervalTPG,
    TemporalPropertyGraph,
    itpg_to_tpg,
    snapshot_at,
    snapshot_sequence,
    tpg_to_itpg,
)
from repro.temporal import Interval, IntervalSet


class TestConversionRoundTrip:
    def test_itpg_to_tpg_preserves_structure(self, figure1):
        tpg = itpg_to_tpg(figure1)
        assert set(tpg.nodes()) == set(figure1.nodes())
        assert set(tpg.edges()) == set(figure1.edges())
        assert tpg.domain == figure1.domain
        for edge in figure1.edges():
            assert tpg.endpoints(edge) == figure1.endpoints(edge)

    def test_round_trip_existence(self, figure1):
        tpg = itpg_to_tpg(figure1)
        back = tpg_to_itpg(tpg)
        for obj in figure1.objects():
            assert back.existence(obj) == figure1.existence(obj)

    def test_round_trip_properties(self, figure1):
        back = tpg_to_itpg(itpg_to_tpg(figure1))
        for obj in figure1.objects():
            for name in figure1.property_names(obj):
                assert back.property_family(obj, name) == figure1.property_family(obj, name)

    def test_pointwise_agreement(self, figure1, figure1_tpg):
        for obj in figure1.objects():
            for t in figure1.time_points():
                assert figure1.exists(obj, t) == figure1_tpg.exists(obj, t)
                for name in figure1.property_names(obj):
                    assert figure1.property_value(obj, name, t) == figure1_tpg.property_value(
                        obj, name, t
                    )

    def test_coalescing_during_conversion(self):
        tpg = TemporalPropertyGraph((0, 5))
        tpg.add_node("n", "L")
        tpg.set_existence("n", [0, 1, 2, 4])
        itpg = tpg_to_itpg(tpg)
        assert itpg.existence("n") == IntervalSet([(0, 2), (4, 4)])

    def test_property_value_change_produces_two_entries(self):
        tpg = TemporalPropertyGraph((0, 5))
        tpg.add_node("n", "L")
        tpg.set_existence("n", range(6))
        tpg.set_property("n", "p", "a", [0, 1, 2])
        tpg.set_property("n", "p", "b", [3, 4])
        itpg = tpg_to_itpg(tpg)
        family = itpg.property_family("n", "p")
        assert len(family) == 2
        assert family.value_at(2) == "a" and family.value_at(3) == "b"

    def test_converted_graph_validates(self, figure1_tpg):
        tpg_to_itpg(figure1_tpg).validate()


class TestSnapshots:
    def test_snapshot_membership(self, figure1):
        snap = snapshot_at(figure1, 5)
        assert snap.has_node("n1") and snap.has_node("n2")
        assert snap.has_node("n4") and snap.has_node("n5")
        assert not snap.has_node("n3") or figure1.exists("n3", 5)
        assert snap.has_edge("e1") and snap.has_edge("e10")
        assert not snap.has_edge("e2")

    def test_snapshot_properties(self, figure1):
        snap = snapshot_at(figure1, 5)
        assert snap.property_value("n2", "risk") == "high"
        snap_early = snapshot_at(figure1, 2)
        assert snap_early.property_value("n2", "risk") == "low"

    def test_snapshot_time_outside_existence(self, figure1):
        snap = snapshot_at(figure1, 11)
        assert snap.has_node("n6")
        assert not snap.has_node("n1")
        assert snap.num_edges() == 0

    def test_snapshot_counts(self, figure1):
        snap = snapshot_at(figure1, 1)
        assert snap.num_nodes() == 4  # n1, n2, n3, n7 exist at time 1
        assert set(snap.edges()) == {"e2"}

    def test_edge_endpoints_present(self, figure1):
        snap = snapshot_at(figure1, 6)
        for edge in snap.edges():
            src, tgt = snap.edge_endpoints[edge]
            assert snap.has_node(src) and snap.has_node(tgt)

    def test_snapshot_sequence_length(self, figure1):
        assert len(list(snapshot_sequence(figure1))) == len(figure1.domain)

    def test_snapshot_adjacency_helpers(self, figure1):
        snap = snapshot_at(figure1, 6)
        assert "e9" in snap.out_edges("n7")
        assert "e9" in snap.in_edges("n4")

    def test_snapshot_works_on_tpg(self, figure1_tpg):
        snap = snapshot_at(figure1_tpg, 9)
        assert snap.property_value("n6", "test") == "pos"

    def test_snapshot_to_networkx(self, figure1):
        nx_graph = snapshot_at(figure1, 5).to_networkx()
        assert nx_graph.number_of_nodes() == snapshot_at(figure1, 5).num_nodes()
        assert nx_graph.graph["time"] == 5


class TestSnapshotAgreementAcrossRepresentations:
    @pytest.mark.parametrize("t", [1, 4, 5, 9, 11])
    def test_same_snapshot_from_tpg_and_itpg(self, figure1, figure1_tpg, t):
        a = snapshot_at(figure1, t)
        b = snapshot_at(figure1_tpg, t)
        assert a.node_labels == b.node_labels
        assert a.edge_labels == b.edge_labels
        assert a.edge_endpoints == b.edge_endpoints
        assert a.properties == b.properties
