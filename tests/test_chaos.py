"""Chaos suite: the resilience runtime under injected faults.

Every test here drives a *real* execution path — pool workers, the
dataflow step loop, the WAL appender, the CLI stream reader — through
the deterministic failpoint registry (:mod:`repro.resilience.failpoints`)
and checks the acceptance bar of the PR-6 charter:

* a configured deadline fires within **2x** its budget on the serial,
  thread, and process backends (slow steps / slow workers injected);
* a deadline expiry is a hard stop: it is never retried, even when a
  retry policy is armed;
* a crash mid-WAL-append (torn write) loses exactly the torn record:
  recovery lands on the longest durable prefix;
* a malformed delta surfaces through the real CLI as a structured error
  (exit code 2 with file/line context), leaving engine state untouched.

Worker-SIGKILL recovery and backend degradation live with the other
process-backend tests in ``test_workers_parallelism.py``
(``TestFailpointCrashRecovery``); primitive-level unit tests live in
``test_resilience.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.datagen import (
    ContactTracingConfig,
    TrajectoryConfig,
    generate_contact_tracing_graph,
)
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import DeadlineExceeded, InjectedFault
from repro.model.io import save_json
from repro.model.itpg import IntervalTPG
from repro.parallel.pool import shutdown_pools
from repro.resilience import RetryPolicy, failpoints, recover, scan_wal, write_snapshot
from repro.streaming import DeltaBatch, StreamingEngine


@pytest.fixture(scope="module")
def contact_graph():
    """Large enough that worker pools actually engage (mirrors the PR-4 suite)."""
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
        ),
        positivity_rate=0.2,
        seed=7,
    )
    return generate_contact_tracing_graph(config)


@pytest.fixture(autouse=True)
def _clean_slate():
    failpoints.disarm_all()
    shutdown_pools()
    yield
    failpoints.disarm_all()
    shutdown_pools()


def small_graph() -> IntervalTPG:
    graph = IntervalTPG((0, 9))
    graph.add_node("a", "Person", [(0, 4)])
    graph.add_node("b", "Person", [(2, 9)])
    graph.add_node("r", "Room", [(0, 9)])
    graph.add_edge("e0", "meets", "a", "b", [(2, 4)])
    graph.add_edge("v0", "visits", "a", "r", [(1, 3)])
    return graph


QUERY = "MATCH (x:Person) ON g"


# --------------------------------------------------------------------- #
# Deadlines fire within 2x the configured budget on every backend
# --------------------------------------------------------------------- #
class TestDeadlineUnderSlowExecution:
    #: The acceptance bound: expiry must surface within twice the budget
    #: (the injected stall per step/worker is sized so one stall cannot
    #: overshoot it).
    def _assert_within_bound(self, error: DeadlineExceeded, budget: float):
        assert error.deadline_seconds == budget
        assert error.elapsed >= budget
        assert error.elapsed <= 2.0 * budget, (
            f"deadline fired after {error.elapsed:.3f}s, over 2x the "
            f"{budget:g}s budget"
        )

    def test_serial_backend_cancels_slow_steps(self, contact_graph):
        budget = 0.25
        failpoints.arm("engine.step", "sleep", seconds=0.1, times=0)
        engine = DataflowEngine(contact_graph, deadline_seconds=budget)
        with pytest.raises(DeadlineExceeded) as excinfo:
            # Q5's chain is 8 steps deep: the injected 0.1s stalls blow
            # the budget a couple of steps in.
            engine.match(PAPER_QUERIES["Q5"].text)
        self._assert_within_bound(excinfo.value, budget)
        assert "steps_completed" in excinfo.value.partial

    def test_thread_backend_cancels_slow_steps(self, contact_graph):
        budget = 0.25
        failpoints.arm("engine.step", "sleep", seconds=0.1, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="thread",
            deadline_seconds=budget,
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q5"].text)
        self._assert_within_bound(excinfo.value, budget)

    def test_process_backend_cancels_slow_workers(self, contact_graph):
        budget = 0.5
        failpoints.arm("worker.chunk", "sleep", seconds=5.0, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="process",
            deadline_seconds=budget,
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q1"].text)
        self._assert_within_bound(excinfo.value, budget)
        assert excinfo.value.partial.get("backend") == "process"

    def test_deadline_is_never_retried(self, contact_graph):
        """A spent budget is a hard stop even with a generous retry policy."""
        budget = 0.5
        failpoints.arm("worker.chunk", "sleep", seconds=5.0, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="process",
            deadline_seconds=budget,
            retry=RetryPolicy(retries=3, base_delay=0.01, seed=5),
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q1"].text)
        # Retrying would have stacked more worker waits on top; staying
        # inside the 2x bound proves the expiry propagated immediately.
        self._assert_within_bound(excinfo.value, budget)

    def test_within_budget_query_is_unaffected(self, contact_graph):
        engine = DataflowEngine(contact_graph, deadline_seconds=60.0)
        baseline = DataflowEngine(contact_graph)
        query = PAPER_QUERIES["Q1"].text
        assert engine.match(query).as_set() == baseline.match(query).as_set()


# --------------------------------------------------------------------- #
# Torn WAL writes: crash mid-append loses exactly the torn record
# --------------------------------------------------------------------- #
class TestTornWALWrites:
    def test_crash_mid_append_recovers_the_durable_prefix(self, tmp_path):
        wal_path = tmp_path / "deltas.wal"
        snap_path = tmp_path / "state.snap"
        session = StreamingEngine(small_graph())
        name = session.register(QUERY)
        session.attach_wal(str(wal_path))
        write_snapshot(session, snap_path)  # pre-stream snapshot

        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        failpoints.arm("wal.append", "torn", times=1)
        with pytest.raises(InjectedFault):
            # The "process dies" here: batch 2 reaches memory but only
            # half its WAL record reaches the disk.
            session.apply(DeltaBatch(sequence=2).add_existence("b", 0, 1))

        scan = scan_wal(wal_path)
        assert scan.torn_tail and scan.last_seq == 1

        recovered, report = recover(snap_path, wal_path)
        assert report.torn_tail
        assert report.replayed == 1  # the durable prefix: batch 1 only

        # The recovered state equals a continuous run that stopped at
        # the last durable batch.
        prefix = StreamingEngine(small_graph())
        prefix.register(QUERY)
        prefix.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        assert recovered.table(name).as_set() == prefix.table(QUERY).as_set()

    def test_reopened_wal_resumes_after_torn_write(self, tmp_path):
        wal_path = tmp_path / "deltas.wal"
        session = StreamingEngine(small_graph())
        session.register(QUERY)
        session.attach_wal(str(wal_path))
        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        failpoints.arm("wal.append", "torn", times=1)
        with pytest.raises(InjectedFault):
            session.apply(DeltaBatch(sequence=2).add_existence("b", 0, 1))
        failpoints.disarm_all()

        # The restarted writer repairs the tail and appends cleanly.
        resumed = StreamingEngine(small_graph())
        resumed.register(QUERY)
        resumed.attach_wal(str(wal_path))
        resumed.apply(DeltaBatch(sequence=5).add_existence("b", 0, 1))
        scan = scan_wal(wal_path)
        assert not scan.torn_tail
        assert [record.seq for record in scan.records] == [1, 2]


# --------------------------------------------------------------------- #
# Malformed deltas through the real CLI
# --------------------------------------------------------------------- #
class TestMalformedDeltaViaCli:
    def _stream_files(self, tmp_path):
        graph_path = tmp_path / "graph.json"
        save_json(small_graph(), graph_path)
        deltas_path = tmp_path / "deltas.jsonl"
        deltas_path.write_text(
            "\n".join(
                json.dumps(batch.to_json_dict())
                for batch in (
                    DeltaBatch(sequence=1).add_existence("a", 5, 7),
                    DeltaBatch(sequence=2).add_existence("b", 0, 1),
                )
            )
            + "\n"
        )
        return str(graph_path), str(deltas_path)

    def test_injected_malformed_delta_exits_with_context(self, tmp_path, capsys):
        graph_path, deltas_path = self._stream_files(tmp_path)
        # Corrupt every parsed record in flight (a buggy producer).
        failpoints.arm("stream.delta", "malformed", times=0)
        code = cli_main(
            ["query", QUERY, "--graph", graph_path, "--stream", deltas_path]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert f"{deltas_path}:1:" in captured.err
        assert "invalid delta batch" in captured.err
        # Nothing was applied: the failure struck before the first batch.
        assert "# batch 1" not in captured.out

    def test_failure_after_good_batches_keeps_their_output(self, tmp_path, capsys):
        graph_path, _ = self._stream_files(tmp_path)
        deltas_path = tmp_path / "partly-bad.jsonl"
        deltas_path.write_text(
            json.dumps(DeltaBatch(sequence=1).add_existence("a", 5, 7).to_json_dict())
            + "\n"
            + json.dumps({"sequence": 2, "nodes": [{"bogus": True}]})
            + "\n"
        )
        wal_path = tmp_path / "deltas.wal"
        code = cli_main(
            [
                "query", QUERY, "--graph", graph_path,
                "--stream", str(deltas_path), "--wal", str(wal_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert f"{deltas_path}:2:" in captured.err
        assert "# batch 1 (seq 1):" in captured.out
        # Engine state stopped exactly at the last good batch: the WAL
        # (written only after successful applies) holds batch 1 alone.
        scan = scan_wal(wal_path)
        assert [record.seq for record in scan.records] == [1]

    def test_clean_stream_is_unaffected_by_unarmed_registry(self, tmp_path, capsys):
        graph_path, deltas_path = self._stream_files(tmp_path)
        code = cli_main(
            ["query", QUERY, "--graph", graph_path, "--stream", deltas_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# batch 2 (seq 2):" in out


# --------------------------------------------------------------------- #
# Replicated serving under chaos: SIGKILL the primary mid-stream, pin
# that the promoted standby answers epoch-identically to a never-crashed
# run up to the last acknowledged record (PR-9 acceptance).
# --------------------------------------------------------------------- #
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path


def _subprocess_env(**extra) -> dict:
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(failpoints.ENV_VAR, None)  # no inherited failpoints by default
    env.update(extra)
    return env


def _chaos_batch(sequence: int) -> dict:
    """A delta over the Figure-1 example that changes Q1/Q5 answers."""
    batch = DeltaBatch(sequence=sequence)
    node = f"n_chaos{sequence}"
    batch.add_node(node, "Person", [(2, 8)])
    batch.set_property(node, "name", f"C{sequence}", 2, 8)
    batch.set_property(node, "risk", "high", 2, 8)
    batch.add_edge(f"e_chaos{sequence}", "meets", "n1", node, [(3, 6)])
    return batch.to_json_dict()


def _spawn_serve(args: list, env: dict) -> tuple:
    """Start ``repro serve`` and return ``(process, bound_port)``."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(r"listening on [\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError("serve subprocess never printed its listening line")


def _wait_until(predicate, *, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.time() + timeout
    last = None
    while time.time() < deadline:
        last = predicate()
        if last:
            return last
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s (last: {last!r})")


def _health(port: int):
    from repro.resilience.retry import RetryPolicy
    from repro.server import ServerClient

    try:
        with ServerClient("127.0.0.1", port, retry=RetryPolicy(retries=0)) as probe:
            return probe.health()
    except Exception:
        return None


class TestReplicatedServingChaos:
    FAST = [
        "--heartbeat-interval", "0.2",
        "--failover-after", "1.0",
    ]

    def _reference_after(self, batches: int):
        """The never-crashed run: same deltas, one process, no failover."""
        from repro.server import ServerState

        state = ServerState()
        state.add_graph("default")
        host = state.host("default")
        host.register("Q5")
        for seq in range(1, batches + 1):
            host.apply_delta(_chaos_batch(seq))
        answer = host.query("Q5")
        return answer["result"]["families"], answer["server"]["epoch"]

    def test_sigkill_primary_standby_promotes_epoch_identical(self, tmp_path):
        from repro.server import ServerClient

        primary_proc, primary_port = _spawn_serve(
            ["--wal", str(tmp_path / "primary.wal"), "--register", "Q5"]
            + self.FAST,
            _subprocess_env(),
        )
        standby_proc = None
        try:
            standby_proc, standby_port = _spawn_serve(
                ["--standby-of", f"127.0.0.1:{primary_port}"] + self.FAST,
                _subprocess_env(),
            )
            pc = ServerClient("127.0.0.1", primary_port)
            pc.apply_delta(_chaos_batch(1))
            pc.apply_delta(_chaos_batch(2))
            _wait_until(
                lambda: (h := _health(standby_port))
                and h["status"] == "standby"
                and h["epochs"]["default"] == 2
            )
            pc.close()
            primary_proc.kill()  # SIGKILL: no drain, no close frame
            primary_proc.wait(timeout=30)
            health = _wait_until(
                lambda: (h := _health(standby_port))
                and h["role"] == "primary"
                and h
            )
            assert health["status"] == "ready"
            assert health["fence"]["previous_primary"] == f"127.0.0.1:{primary_port}"
            assert health["fence"]["fence_seq"] == {"default": 2}

            expected, epoch = self._reference_after(2)
            with ServerClient("127.0.0.1", standby_port) as sc:
                answer = sc.query("Q5")
                assert answer["result"]["families"] == expected
                assert answer["server"]["epoch"] == epoch
                # The registered query replicated and is epoch-identical.
                assert sc.table("Q5")["result"]["families"] == expected
                # The promoted standby accepts writes.
                applied = sc.apply_delta(_chaos_batch(3))
                assert applied["server"]["epoch"] == epoch + 1
        finally:
            for proc in (primary_proc, standby_proc):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

    def test_primary_killed_mid_ship_promotes_at_last_acked(self, tmp_path):
        """The `replicate.ship` failpoint kills the primary between the
        local apply (record 3 reaches its WAL) and the ship, so the
        standby promotes at the last *acked* record — exactly seq 2."""
        from repro.errors import ConnectionClosed
        from repro.server import ServerClient

        fp_dir = str(tmp_path / "failpoints")
        primary_proc, primary_port = _spawn_serve(
            ["--wal", str(tmp_path / "primary.wal"), "--register", "Q5"]
            + self.FAST,
            _subprocess_env(**{failpoints.ENV_VAR: fp_dir}),
        )
        standby_proc = None
        try:
            standby_proc, standby_port = _spawn_serve(
                ["--standby-of", f"127.0.0.1:{primary_port}"] + self.FAST,
                _subprocess_env(),
            )
            pc = ServerClient("127.0.0.1", primary_port)
            pc.apply_delta(_chaos_batch(1))
            pc.apply_delta(_chaos_batch(2))
            _wait_until(
                lambda: (h := _health(standby_port))
                and h["status"] == "standby"
                and h["epochs"]["default"] == 2
            )
            # Arm NOW (records 1-2 already shipped): the very next ship
            # attempt — record 3 — dies mid-stream with no cleanup.
            failpoints.arm(
                "replicate.ship", "kill", times=0, directory=fp_dir
            )
            try:
                pc.apply_delta(_chaos_batch(3))
            except (ConnectionClosed, OSError):
                pass  # the primary died racing the response write
            pc.close()
            assert primary_proc.wait(timeout=30) != 0
            health = _wait_until(
                lambda: (h := _health(standby_port))
                and h["role"] == "primary"
                and h
            )
            # Record 3 existed only on the dead primary: the fence and
            # the promoted answers stop at the last acked record.
            assert health["fence"]["fence_seq"] == {"default": 2}
            expected, epoch = self._reference_after(2)
            with ServerClient("127.0.0.1", standby_port) as sc:
                answer = sc.query("Q5")
                assert answer["result"]["families"] == expected
                assert answer["server"]["epoch"] == epoch
        finally:
            for proc in (primary_proc, standby_proc):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

    def test_sigterm_drains_finishes_in_flight_and_snapshots(self, tmp_path):
        """Satellite 1+5: SIGTERM triggers the graceful drain — the
        in-flight request answers, the final snapshot lands on disk, and
        the exit code is 0."""
        from repro.server import ServerClient

        snapshot = tmp_path / "drain.snapshot"
        proc, port = _spawn_serve(
            [
                "--wal", str(tmp_path / "drain.wal"),
                "--snapshot", str(snapshot),
                # Periodic snapshots never fire: only the drain writes one.
                "--snapshot-every", "100",
                "--drain-timeout", "15",
            ],
            _subprocess_env(),
        )
        try:
            with ServerClient("127.0.0.1", port) as client:
                client.apply_delta(_chaos_batch(1))
                assert not snapshot.exists()  # pre-drain: nothing periodic
                proc.send_signal(signal.SIGTERM)
                # The draining server still answers the request already
                # on the wire (satellite 5 at the process level): either
                # this response or a clean close, never a hang.
                deadline = time.time() + 30
                while time.time() < deadline and proc.poll() is None:
                    time.sleep(0.05)
            assert proc.wait(timeout=30) == 0
            assert snapshot.exists(), "drain did not write the final snapshot"
            output = proc.stdout.read()
            assert "# server stopped" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
