"""Chaos suite: the resilience runtime under injected faults.

Every test here drives a *real* execution path — pool workers, the
dataflow step loop, the WAL appender, the CLI stream reader — through
the deterministic failpoint registry (:mod:`repro.resilience.failpoints`)
and checks the acceptance bar of the PR-6 charter:

* a configured deadline fires within **2x** its budget on the serial,
  thread, and process backends (slow steps / slow workers injected);
* a deadline expiry is a hard stop: it is never retried, even when a
  retry policy is armed;
* a crash mid-WAL-append (torn write) loses exactly the torn record:
  recovery lands on the longest durable prefix;
* a malformed delta surfaces through the real CLI as a structured error
  (exit code 2 with file/line context), leaving engine state untouched.

Worker-SIGKILL recovery and backend degradation live with the other
process-backend tests in ``test_workers_parallelism.py``
(``TestFailpointCrashRecovery``); primitive-level unit tests live in
``test_resilience.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.datagen import (
    ContactTracingConfig,
    TrajectoryConfig,
    generate_contact_tracing_graph,
)
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import DeadlineExceeded, InjectedFault
from repro.model.io import save_json
from repro.model.itpg import IntervalTPG
from repro.parallel.pool import shutdown_pools
from repro.resilience import RetryPolicy, failpoints, recover, scan_wal, write_snapshot
from repro.streaming import DeltaBatch, StreamingEngine


@pytest.fixture(scope="module")
def contact_graph():
    """Large enough that worker pools actually engage (mirrors the PR-4 suite)."""
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
        ),
        positivity_rate=0.2,
        seed=7,
    )
    return generate_contact_tracing_graph(config)


@pytest.fixture(autouse=True)
def _clean_slate():
    failpoints.disarm_all()
    shutdown_pools()
    yield
    failpoints.disarm_all()
    shutdown_pools()


def small_graph() -> IntervalTPG:
    graph = IntervalTPG((0, 9))
    graph.add_node("a", "Person", [(0, 4)])
    graph.add_node("b", "Person", [(2, 9)])
    graph.add_node("r", "Room", [(0, 9)])
    graph.add_edge("e0", "meets", "a", "b", [(2, 4)])
    graph.add_edge("v0", "visits", "a", "r", [(1, 3)])
    return graph


QUERY = "MATCH (x:Person) ON g"


# --------------------------------------------------------------------- #
# Deadlines fire within 2x the configured budget on every backend
# --------------------------------------------------------------------- #
class TestDeadlineUnderSlowExecution:
    #: The acceptance bound: expiry must surface within twice the budget
    #: (the injected stall per step/worker is sized so one stall cannot
    #: overshoot it).
    def _assert_within_bound(self, error: DeadlineExceeded, budget: float):
        assert error.deadline_seconds == budget
        assert error.elapsed >= budget
        assert error.elapsed <= 2.0 * budget, (
            f"deadline fired after {error.elapsed:.3f}s, over 2x the "
            f"{budget:g}s budget"
        )

    def test_serial_backend_cancels_slow_steps(self, contact_graph):
        budget = 0.25
        failpoints.arm("engine.step", "sleep", seconds=0.1, times=0)
        engine = DataflowEngine(contact_graph, deadline_seconds=budget)
        with pytest.raises(DeadlineExceeded) as excinfo:
            # Q5's chain is 8 steps deep: the injected 0.1s stalls blow
            # the budget a couple of steps in.
            engine.match(PAPER_QUERIES["Q5"].text)
        self._assert_within_bound(excinfo.value, budget)
        assert "steps_completed" in excinfo.value.partial

    def test_thread_backend_cancels_slow_steps(self, contact_graph):
        budget = 0.25
        failpoints.arm("engine.step", "sleep", seconds=0.1, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="thread",
            deadline_seconds=budget,
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q5"].text)
        self._assert_within_bound(excinfo.value, budget)

    def test_process_backend_cancels_slow_workers(self, contact_graph):
        budget = 0.5
        failpoints.arm("worker.chunk", "sleep", seconds=5.0, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="process",
            deadline_seconds=budget,
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q1"].text)
        self._assert_within_bound(excinfo.value, budget)
        assert excinfo.value.partial.get("backend") == "process"

    def test_deadline_is_never_retried(self, contact_graph):
        """A spent budget is a hard stop even with a generous retry policy."""
        budget = 0.5
        failpoints.arm("worker.chunk", "sleep", seconds=5.0, times=0)
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="process",
            deadline_seconds=budget,
            retry=RetryPolicy(retries=3, base_delay=0.01, seed=5),
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q1"].text)
        # Retrying would have stacked more worker waits on top; staying
        # inside the 2x bound proves the expiry propagated immediately.
        self._assert_within_bound(excinfo.value, budget)

    def test_within_budget_query_is_unaffected(self, contact_graph):
        engine = DataflowEngine(contact_graph, deadline_seconds=60.0)
        baseline = DataflowEngine(contact_graph)
        query = PAPER_QUERIES["Q1"].text
        assert engine.match(query).as_set() == baseline.match(query).as_set()


# --------------------------------------------------------------------- #
# Torn WAL writes: crash mid-append loses exactly the torn record
# --------------------------------------------------------------------- #
class TestTornWALWrites:
    def test_crash_mid_append_recovers_the_durable_prefix(self, tmp_path):
        wal_path = tmp_path / "deltas.wal"
        snap_path = tmp_path / "state.snap"
        session = StreamingEngine(small_graph())
        name = session.register(QUERY)
        session.attach_wal(str(wal_path))
        write_snapshot(session, snap_path)  # pre-stream snapshot

        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        failpoints.arm("wal.append", "torn", times=1)
        with pytest.raises(InjectedFault):
            # The "process dies" here: batch 2 reaches memory but only
            # half its WAL record reaches the disk.
            session.apply(DeltaBatch(sequence=2).add_existence("b", 0, 1))

        scan = scan_wal(wal_path)
        assert scan.torn_tail and scan.last_seq == 1

        recovered, report = recover(snap_path, wal_path)
        assert report.torn_tail
        assert report.replayed == 1  # the durable prefix: batch 1 only

        # The recovered state equals a continuous run that stopped at
        # the last durable batch.
        prefix = StreamingEngine(small_graph())
        prefix.register(QUERY)
        prefix.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        assert recovered.table(name).as_set() == prefix.table(QUERY).as_set()

    def test_reopened_wal_resumes_after_torn_write(self, tmp_path):
        wal_path = tmp_path / "deltas.wal"
        session = StreamingEngine(small_graph())
        session.register(QUERY)
        session.attach_wal(str(wal_path))
        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        failpoints.arm("wal.append", "torn", times=1)
        with pytest.raises(InjectedFault):
            session.apply(DeltaBatch(sequence=2).add_existence("b", 0, 1))
        failpoints.disarm_all()

        # The restarted writer repairs the tail and appends cleanly.
        resumed = StreamingEngine(small_graph())
        resumed.register(QUERY)
        resumed.attach_wal(str(wal_path))
        resumed.apply(DeltaBatch(sequence=5).add_existence("b", 0, 1))
        scan = scan_wal(wal_path)
        assert not scan.torn_tail
        assert [record.seq for record in scan.records] == [1, 2]


# --------------------------------------------------------------------- #
# Malformed deltas through the real CLI
# --------------------------------------------------------------------- #
class TestMalformedDeltaViaCli:
    def _stream_files(self, tmp_path):
        graph_path = tmp_path / "graph.json"
        save_json(small_graph(), graph_path)
        deltas_path = tmp_path / "deltas.jsonl"
        deltas_path.write_text(
            "\n".join(
                json.dumps(batch.to_json_dict())
                for batch in (
                    DeltaBatch(sequence=1).add_existence("a", 5, 7),
                    DeltaBatch(sequence=2).add_existence("b", 0, 1),
                )
            )
            + "\n"
        )
        return str(graph_path), str(deltas_path)

    def test_injected_malformed_delta_exits_with_context(self, tmp_path, capsys):
        graph_path, deltas_path = self._stream_files(tmp_path)
        # Corrupt every parsed record in flight (a buggy producer).
        failpoints.arm("stream.delta", "malformed", times=0)
        code = cli_main(
            ["query", QUERY, "--graph", graph_path, "--stream", deltas_path]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert f"{deltas_path}:1:" in captured.err
        assert "invalid delta batch" in captured.err
        # Nothing was applied: the failure struck before the first batch.
        assert "# batch 1" not in captured.out

    def test_failure_after_good_batches_keeps_their_output(self, tmp_path, capsys):
        graph_path, _ = self._stream_files(tmp_path)
        deltas_path = tmp_path / "partly-bad.jsonl"
        deltas_path.write_text(
            json.dumps(DeltaBatch(sequence=1).add_existence("a", 5, 7).to_json_dict())
            + "\n"
            + json.dumps({"sequence": 2, "nodes": [{"bogus": True}]})
            + "\n"
        )
        wal_path = tmp_path / "deltas.wal"
        code = cli_main(
            [
                "query", QUERY, "--graph", graph_path,
                "--stream", str(deltas_path), "--wal", str(wal_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert f"{deltas_path}:2:" in captured.err
        assert "# batch 1 (seq 1):" in captured.out
        # Engine state stopped exactly at the last good batch: the WAL
        # (written only after successful applies) holds batch 1 alone.
        scan = scan_wal(wal_path)
        assert [record.seq for record in scan.records] == [1]

    def test_clean_stream_is_unaffected_by_unarmed_registry(self, tmp_path, capsys):
        graph_path, deltas_path = self._stream_files(tmp_path)
        code = cli_main(
            ["query", QUERY, "--graph", graph_path, "--stream", deltas_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# batch 2 (seq 2):" in out
