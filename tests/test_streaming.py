"""Unit tests for the streaming subsystem: DeltaBatch, maintenance, CLI.

The end-to-end incremental-vs-cold equivalence lives in
``test_streaming_oracle.py``; this module pins the edge cases of the
update model itself — adjacent-interval merging, out-of-domain deltas,
empty batches, out-of-order application — plus the in-place
``GraphIndex`` maintenance and the CLI ``--stream`` surface.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.dataflow import DataflowEngine
from repro.datagen.streaming import contact_tracing_stream
from repro.datagen import ContactTracingConfig, TrajectoryConfig
from repro.errors import (
    EvaluationError,
    GraphIntegrityError,
    InvalidIntervalError,
    UnknownObjectError,
)
from repro.lang import ast
from repro.model.io import from_json_dict, save_json, to_json_dict
from repro.model.itpg import IntervalTPG
from repro.perf.graph_index import graph_index_for
from repro.streaming import DeltaBatch, StreamingEngine, apply_delta
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet


def small_graph() -> IntervalTPG:
    graph = IntervalTPG((0, 9))
    graph.add_node("a", "Person", [(0, 4)])
    graph.add_node("b", "Person", [(2, 9)])
    graph.add_node("r", "Room", [(0, 9)])
    graph.add_edge("e0", "meets", "a", "b", [(2, 4)])
    graph.add_edge("v0", "visits", "a", "r", [(1, 3)])
    graph.set_property("a", "risk", "low", 0, 4)
    graph.set_property("b", "risk", "high", 2, 9)
    return graph


def snapshot(graph: IntervalTPG) -> dict:
    return to_json_dict(graph)


# --------------------------------------------------------------------- #
# DeltaBatch edge cases
# --------------------------------------------------------------------- #
class TestDeltaBatchEdgeCases:
    def test_adjacent_intervals_merge(self):
        graph = small_graph()
        effects = apply_delta(graph, DeltaBatch().add_existence("a", 5, 7))
        # [0,4] + [5,7] coalesce into one maximal interval.
        assert graph.existence("a") == IntervalSet(((0, 7),))
        assert effects.touched == frozenset({"a"})
        assert effects.dirty_times == IntervalSet(((5, 7),))

    def test_adjacent_merge_maintains_index(self):
        graph = small_graph()
        index = graph_index_for(graph)
        exists_table = index.condition_table(ast.exists())
        assert exists_table["a"] == IntervalSet(((0, 4),))
        apply_delta_and_maintain(graph, DeltaBatch().add_existence("a", 5, 7))
        assert index.existence["a"] == IntervalSet(((0, 7),))
        # The shared memoized table was repaired in place.
        assert exists_table["a"] == IntervalSet(((0, 7),))

    def test_delta_outside_domain_rejected_atomically(self):
        graph = small_graph()
        before = snapshot(graph)
        batch = (
            DeltaBatch()
            .add_existence("b", 8, 9)  # valid part...
            .add_node("c", "Person", [(12, 14)])  # ...entirely outside [0,9]
        )
        with pytest.raises(GraphIntegrityError, match="outside the temporal domain"):
            apply_delta(graph, batch)
        # Nothing was applied, including the valid records before the bad one.
        assert snapshot(graph) == before

    def test_delta_outside_domain_allowed_after_horizon_advance(self):
        graph = small_graph()
        batch = DeltaBatch().extend_domain(14).add_node("c", "Person", [(12, 14)])
        effects = apply_delta(graph, batch)
        assert effects.horizon_advanced
        assert graph.domain == Interval(0, 14)
        assert graph.existence("c") == IntervalSet(((12, 14),))

    def test_horizon_cannot_move_backwards(self):
        graph = small_graph()
        with pytest.raises(GraphIntegrityError, match="append-only"):
            apply_delta(graph, DeltaBatch().extend_domain(5))
        with pytest.raises(GraphIntegrityError, match="backwards"):
            DeltaBatch().extend_domain(9).extend_domain(5)

    def test_empty_delta_is_noop(self):
        graph = small_graph()
        before = snapshot(graph)
        batch = DeltaBatch(sequence=1)
        assert batch.is_empty()
        engine = DataflowEngine(graph, incremental=True)
        rows = engine.match("MATCH (x:Person) ON g").as_set()
        result = engine.apply_delta(batch)
        assert result.affected_seeds == 0
        assert snapshot(graph) == before
        assert engine.match("MATCH (x:Person) ON g").as_set() == rows
        # The empty batch still advances the stream position.
        assert engine.streaming_session().last_sequence == 1

    def test_out_of_order_batches_raise(self):
        graph = small_graph()
        engine = DataflowEngine(graph, incremental=True)
        engine.apply_delta(DeltaBatch(sequence=2).add_existence("a", 5, 5))
        with pytest.raises(EvaluationError, match="out of order"):
            engine.apply_delta(DeltaBatch(sequence=2).add_existence("a", 6, 6))
        with pytest.raises(EvaluationError, match="strictly increasing"):
            engine.apply_delta(DeltaBatch(sequence=1))
        # A failed apply leaves the stream position usable.
        engine.apply_delta(DeltaBatch(sequence=3).add_existence("a", 6, 6))
        assert graph.existence("a") == IntervalSet(((0, 6),))

    def test_unsequenced_batches_always_accepted(self):
        graph = small_graph()
        engine = DataflowEngine(graph, incremental=True)
        engine.apply_delta(DeltaBatch(sequence=5).add_existence("a", 5, 5))
        engine.apply_delta(DeltaBatch().add_existence("a", 6, 6))
        assert engine.streaming_session().last_sequence == 5

    def test_duplicate_and_unknown_ids_rejected(self):
        graph = small_graph()
        before = snapshot(graph)
        with pytest.raises(GraphIntegrityError, match="already in use"):
            apply_delta(graph, DeltaBatch().add_node("a", "Person", [(0, 1)]))
        with pytest.raises(UnknownObjectError, match="unknown node"):
            apply_delta(graph, DeltaBatch().add_edge("e9", "meets", "a", "zz", [(2, 3)]))
        with pytest.raises(UnknownObjectError, match="unknown object"):
            apply_delta(graph, DeltaBatch().add_existence("zz", 0, 1))
        assert snapshot(graph) == before

    def test_edge_outside_endpoint_existence_rejected(self):
        graph = small_graph()
        before = snapshot(graph)
        # "a" exists on [0,4] only; edge through [0,6] is not contained.
        batch = DeltaBatch().add_edge("e9", "meets", "a", "b", [(2, 6)])
        with pytest.raises(GraphIntegrityError, match="outside the existence"):
            apply_delta(graph, batch)
        assert snapshot(graph) == before
        # Extending the endpoint in the same batch makes it valid.
        apply_delta(
            graph,
            DeltaBatch().add_existence("a", 5, 6).add_edge("e9", "meets", "a", "b", [(2, 6)]),
        )
        graph.validate()

    def test_conflicting_property_values_rejected_atomically(self):
        graph = small_graph()
        before = snapshot(graph)
        batch = DeltaBatch().add_existence("a", 5, 5).set_property("a", "risk", "high", 3, 4)
        with pytest.raises(InvalidIntervalError):
            apply_delta(graph, batch)
        assert snapshot(graph) == before

    def test_property_outside_existence_rejected(self):
        graph = small_graph()
        with pytest.raises(GraphIntegrityError, match="outside its existence"):
            apply_delta(graph, DeltaBatch().set_property("a", "risk", "low", 5, 6))

    def test_batch_new_objects_can_be_extended_in_batch(self):
        graph = small_graph()
        batch = (
            DeltaBatch()
            .add_node("c", "Person", [(0, 2)])
            .add_existence("c", 3, 5)
            .add_edge("e9", "knows", "c", "b", [(3, 4)])
            .set_property("c", "risk", "low", 0, 5)
        )
        effects = apply_delta(graph, batch)
        graph.validate()
        assert graph.existence("c") == IntervalSet(((0, 5),))
        assert effects.new_nodes == ("c",)
        assert effects.new_edges == ("e9",)
        # Batch-new objects are dirty but not "touched existing".
        assert "c" not in effects.touched
        assert "b" in effects.touched  # endpoint adjacency changed

    def test_json_round_trip(self):
        batch = (
            DeltaBatch(sequence=7)
            .extend_domain(20)
            .add_node("c", "Person", [(0, 2), (4, 5)])
            .add_edge("e9", "meets", "c", "c", [(1, 2)])
            .add_existence("c", 7, 8)
            .set_property("c", "risk", "low", 0, 2)
        )
        clone = DeltaBatch.from_json_dict(json.loads(json.dumps(batch.to_json_dict())))
        assert clone.sequence == 7
        assert clone.horizon == 20
        assert clone.nodes == batch.nodes
        assert clone.edges == batch.edges
        assert clone.existence == batch.existence
        assert clone.properties == batch.properties


def apply_delta_and_maintain(graph: IntervalTPG, batch: DeltaBatch):
    """Apply a batch and maintain the graph's cached index (test helper)."""
    effects = apply_delta(graph, batch)
    graph_index_for(graph).apply_delta(effects)
    return effects


# --------------------------------------------------------------------- #
# Incremental index maintenance
# --------------------------------------------------------------------- #
class TestIndexMaintenance:
    def test_new_objects_enter_buckets_and_ids(self):
        graph = small_graph()
        index = graph_index_for(graph)
        ids_before = dict(index.object_id)
        apply_delta_and_maintain(
            graph,
            DeltaBatch()
            .add_node("c", "Person", [(0, 3)])
            .add_edge("e9", "meets", "c", "b", [(2, 3)])
            .set_property("c", "risk", "high", 0, 3),
        )
        # Existing dense ids are stable; new objects appended.
        for obj, dense in ids_before.items():
            assert index.object_id[obj] == dense
        assert index.is_node("c") and index.is_edge("e9")
        assert "c" in index.node_label_buckets["Person"]
        assert "e9" in index.edge_label_buckets["meets"]
        assert "c" in index.prop_value_buckets[("risk", "high")]
        assert index.edge_source["e9"] == "c"
        assert "e9" in index.out_adjacency["c"]
        assert "e9" in index.in_adjacency["b"]

    def test_condition_tables_repaired_for_dirty_objects(self):
        graph = small_graph()
        index = graph_index_for(graph)
        low = index.condition_table(ast.prop_eq("risk", "low"))
        assert low["a"] == IntervalSet(((0, 4),))
        assert "b" not in low
        apply_delta_and_maintain(
            graph,
            DeltaBatch().add_existence("a", 5, 7).set_property("a", "risk", "low", 5, 7),
        )
        assert low["a"] == IntervalSet(((0, 7),))
        # Untouched objects keep their entries untouched.
        assert "b" not in low

    def test_negated_condition_shrinks_on_update(self):
        graph = small_graph()
        index = graph_index_for(graph)
        not_low = index.condition_table(ast.not_(ast.prop_eq("risk", "low")))
        assert not_low["a"] == IntervalSet(((5, 9),))
        apply_delta_and_maintain(
            graph,
            DeltaBatch().add_existence("a", 5, 6).set_property("a", "risk", "low", 5, 6),
        )
        assert not_low["a"] == IntervalSet(((7, 9),))

    def test_hop_tables_invalidate_within_two_moves(self):
        graph = small_graph()
        index = graph_index_for(graph)
        entries = index.hop_entries("a", True, (), True, ())
        targets = {target for target, _times in entries}
        assert targets == {"b", "r"}
        apply_delta_and_maintain(
            graph,
            DeltaBatch()
            .add_node("c", "Person", [(0, 9)])
            .add_edge("e9", "knows", "a", "c", [(0, 4)]),
        )
        entries_after = index.hop_entries("a", True, (), True, ())
        assert {target for target, _times in entries_after} == {"b", "r", "c"}

    def test_horizon_advance_clears_domain_clamped_tables(self):
        graph = small_graph()
        index = graph_index_for(graph)
        not_exists = index.condition_table(ast.not_(ast.exists()))
        assert not_exists["a"] == IntervalSet(((5, 9),))
        apply_delta_and_maintain(graph, DeltaBatch().extend_domain(12))
        fresh = index.condition_table(ast.not_(ast.exists()))
        assert fresh["a"] == IntervalSet(((5, 12),))
        assert index.domain == Interval(0, 12)

    def test_structural_closure_radii(self):
        graph = small_graph()
        index = graph_index_for(graph)
        assert index.structural_closure({"a"}, 0) == {"a"}
        assert index.structural_closure({"a"}, 1) == {"a", "e0", "v0"}
        assert index.structural_closure({"a"}, 2) == {"a", "e0", "v0", "b", "r"}
        assert index.structural_closure({"missing"}, 3) == set()

    def test_index_epoch_counts_maintained_batches(self):
        graph = small_graph()
        index = graph_index_for(graph)
        assert index.epoch == 0
        apply_delta_and_maintain(graph, DeltaBatch().add_existence("a", 5, 6))
        apply_delta_and_maintain(graph, DeltaBatch().add_existence("a", 7, 8))
        assert index.epoch == 2

    def test_property_mutation_reaches_warm_process_workers(self):
        """Regression (stale condition tables in warm workers).

        A resident condition table over ``test = 'pos'`` is repaired in
        place by the incremental index maintenance — that path was
        audited sound.  The variant that *did* serve stale rows is the
        warm worker-process cache: before the plan-invalidation fix, a
        property set by a delta never reached the workers' resident
        graphs, so a condition the cached table depends on kept
        answering from the pre-delta property family.  Incremental must
        equal a cold rebuild over a fresh copy of the mutated graph.
        """
        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(
                num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
            ),
            positivity_rate=0.2,
            seed=7,
        )
        from repro.datagen import generate_contact_tracing_graph

        graph = generate_contact_tracing_graph(config)
        # The {test = 'pos'} condition sits on the hop *target*, so it is
        # evaluated inside the worker processes — a leading condition
        # would be absorbed into the parent-side frontier and never
        # exercise the worker caches.
        query = "MATCH (x:Person)-[z:meets]->(y {test = 'pos'}) ON contact_tracing"
        engine = DataflowEngine(graph, workers=2, parallel_backend="process")
        stale = engine.match_intervals(query)
        # Find an untested person someone meets, and hand them a positive
        # test over exactly that meeting's span.
        target = span = None
        for node in graph.nodes():
            if graph.label(node) != "Person":
                continue
            if len(graph.property_family(node, "test")) > 0:
                continue
            for edge in graph.in_edges(node):
                if graph.label(edge) == "meets":
                    target = node
                    span = next(iter(graph.existence(edge)))
                    break
            if target is not None:
                break
        assert target is not None, "no untested met person in the contact graph"
        apply_delta_and_maintain(
            graph,
            DeltaBatch().set_property(target, "test", "pos", span.start, span.end),
        )
        incremental = engine.match_intervals(query)
        cold = DataflowEngine(from_json_dict(to_json_dict(graph)))
        rebuilt = cold.match_intervals(query)

        def canonical(families):
            return sorted(
                (tuple(bindings), tuple((iv.start, iv.end) for iv in times))
                for bindings, times in families
            )

        assert canonical(incremental) != canonical(stale)
        assert canonical(incremental) == canonical(rebuilt)
        # Every gained family binds the newly-positive person as target.
        gained = set(canonical(incremental)) - set(canonical(stale))
        assert gained
        assert all(dict(bindings)["y"] == target for bindings, _times in gained)


# --------------------------------------------------------------------- #
# StreamingEngine behaviour
# --------------------------------------------------------------------- #
class TestStreamingEngine:
    QUERY = "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) ON g"

    def test_incremental_matches_cold_after_each_batch(self):
        graph = small_graph()
        engine = DataflowEngine(graph, incremental=True)
        assert engine.incremental
        batches = [
            DeltaBatch(sequence=1)
            .add_node("c", "Person", [(3, 8)])
            .set_property("c", "risk", "high", 3, 8)
            .add_edge("e1", "meets", "a", "c", [(3, 4)]),
            DeltaBatch(sequence=2).add_existence("b", 0, 1),
            DeltaBatch(sequence=3).extend_domain(12).add_existence("c", 9, 12)
            .set_property("c", "risk", "high", 9, 12),
        ]
        for batch in batches:
            engine.apply_delta(batch)
            cold = DataflowEngine(from_json_dict(to_json_dict(graph)))
            assert engine.match(self.QUERY).as_set() == cold.match(self.QUERY).as_set()
            inc_families = sorted(
                ((b, tuple(t.intervals)) for b, t in engine.match_intervals(self.QUERY)),
                key=repr,
            )
            cold_families = sorted(
                ((b, tuple(t.intervals)) for b, t in cold.match_intervals(self.QUERY)),
                key=repr,
            )
            assert inc_families == cold_families

    def test_apply_delta_requires_incremental(self):
        engine = DataflowEngine(small_graph())
        with pytest.raises(EvaluationError, match="incremental=True"):
            engine.apply_delta(DeltaBatch())

    def test_unaffected_seeds_are_not_rederived(self):
        graph = small_graph()
        engine = DataflowEngine(graph, incremental=True)
        engine.match("MATCH (x:Person) ON g")
        # Touch only the Room node: no Person seed is within radius 0.
        result = engine.apply_delta(DeltaBatch(sequence=1).add_existence("r", 0, 9))
        (update,) = result.queries
        assert update.total_seeds == 2
        assert update.affected_seeds == 0
        assert not update.recomputed_all

    def test_horizon_advance_recomputes_everything(self):
        graph = small_graph()
        engine = DataflowEngine(graph, incremental=True)
        engine.match("MATCH (x:Person) ON g")
        result = engine.apply_delta(DeltaBatch(sequence=1).extend_domain(11))
        (update,) = result.queries
        assert update.recomputed_all
        assert update.affected_seeds == update.total_seeds

    def test_streaming_engine_standalone_registration(self):
        graph = small_graph()
        session = StreamingEngine(graph)
        name = session.register(self.QUERY)
        assert name == self.QUERY
        assert session.query_names() == (self.QUERY,)
        families = session.results(name)
        assert families
        with pytest.raises(EvaluationError, match="not registered"):
            session.table("MATCH (q) ON g")

    def test_temporal_window_filter_skips_far_seeds(self):
        # Chain with bounded temporal radius: a delta far in time from a
        # seed's satisfaction times must not re-derive it.
        graph = IntervalTPG((0, 30))
        graph.add_node("early", "Person", [(0, 2)])
        graph.add_node("late", "Person", [(25, 30)])
        graph.add_node("mid", "Room", [(0, 30)])
        graph.add_edge("ve", "visits", "early", "mid", [(0, 2)])
        graph.add_edge("vl", "visits", "late", "mid", [(25, 28)])
        engine = DataflowEngine(graph, incremental=True)
        query = "MATCH (x:Person)-/FWD/:visits/FWD/NEXT[0,2]/-(r:Room) ON g"
        engine.match(query)
        # Dirty the shared room node late in time: 'early' seed times
        # [0,2] are outside the dilated window [23,30] despite being in
        # the structural closure.
        result = engine.apply_delta(
            DeltaBatch(sequence=1)
            .add_node("p9", "Person", [(27, 29)])
            .add_edge("v9", "visits", "p9", "mid", [(27, 28)])
        )
        (update,) = result.queries
        assert update.affected_seeds >= 1
        cold = DataflowEngine(from_json_dict(to_json_dict(graph)))
        assert engine.match(query).as_set() == cold.match(query).as_set()
        # 'early' was skipped by the time filter.
        session = engine.streaming_session()
        state = session._state(query)
        assert "early" in state.seed_times

    def test_legacy_and_noindex_sessions_agree(self):
        payload = to_json_dict(small_graph())
        query = "MATCH (x:Person {risk = 'high'}) ON g"
        engines = {
            "coalesced": DataflowEngine(from_json_dict(payload), incremental=True),
            "noindex": DataflowEngine(
                from_json_dict(payload), use_index=False, incremental=True
            ),
            "legacy": DataflowEngine(
                from_json_dict(payload), use_coalesced=False, incremental=True
            ),
        }
        batch = (
            DeltaBatch(sequence=1)
            .add_existence("a", 5, 9)
            .set_property("a", "risk", "high", 5, 9)
        )
        reference = None
        for engine in engines.values():
            engine.match(query)
            engine.apply_delta(
                DeltaBatch.from_json_dict(batch.to_json_dict())
            )
            rows = engine.match(query).as_set()
            if reference is None:
                reference = rows
            assert rows == reference
        assert reference  # the update made 'a' high-risk on [5,9]


# --------------------------------------------------------------------- #
# Streaming workload generator
# --------------------------------------------------------------------- #
class TestContactTracingStream:
    CONFIG = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=25, num_locations=20, num_rooms=6, num_windows=24, seed=5
        ),
        seed=5,
    )

    def test_stream_replays_to_valid_graph(self):
        stream = contact_tracing_stream(self.CONFIG, num_batches=4)
        assert stream.batches
        sequences = [batch.sequence for batch in stream.batches]
        assert sequences == sorted(sequences)
        final = stream.replay()
        final.validate()
        assert final.num_nodes() > stream.initial.num_nodes() or (
            final.num_edges() > stream.initial.num_edges()
        )

    def test_fresh_initial_is_pristine_under_mutation(self):
        stream = contact_tracing_stream(self.CONFIG, num_batches=3)
        engine = DataflowEngine(stream.initial, incremental=True)
        engine.match("MATCH (x:Person) ON g")
        for batch in stream.batches:
            engine.apply_delta(batch)
        # initial was mutated through the engine; fresh_initial was not.
        assert stream.initial.num_edges() > stream.fresh_initial().num_edges()
        cold = DataflowEngine(stream.replay())
        assert (
            engine.match("MATCH (x:Person) ON g").as_set()
            == cold.match("MATCH (x:Person) ON g").as_set()
        )

    def test_advance_horizon_variant(self):
        stream = contact_tracing_stream(
            self.CONFIG, num_batches=4, initial_fraction=0.2, advance_horizon=True
        )
        full_end = self.CONFIG.trajectory.num_windows - 1
        assert stream.initial.domain.end <= full_end
        final = stream.replay()
        final.validate()
        if any(batch.horizon is not None for batch in stream.batches):
            # Batches moved the horizon monotonically up to the final end.
            horizons = [b.horizon for b in stream.batches if b.horizon is not None]
            assert horizons == sorted(horizons)
            assert final.domain.end == horizons[-1]
        else:
            # The prefix already reached the last event's end.
            assert final.domain == stream.initial.domain

    def test_batch_size_and_num_batches_are_exclusive(self):
        with pytest.raises(ValueError):
            contact_tracing_stream(self.CONFIG, num_batches=2, batch_size=3)


# --------------------------------------------------------------------- #
# CLI --stream
# --------------------------------------------------------------------- #
class TestCliStream:
    def test_generate_and_stream_query(self, tmp_path, capsys):
        graph_path = tmp_path / "prefix.json"
        deltas_path = tmp_path / "deltas.jsonl"
        assert cli_main([
            "generate", "--persons", "20", "--locations", "15", "--rooms", "5",
            "--windows", "16", "-o", str(graph_path),
            "--stream-batches", "3", "--stream-output", str(deltas_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "delta batches" in out
        assert deltas_path.exists()
        assert cli_main([
            "query", "MATCH (x:Person) ON g", "--graph", str(graph_path),
            "--stream", str(deltas_path), "--stats", "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "# stream: initial graph" in out
        assert "# batch 1 (seq 1):" in out
        assert "# batch 3 (seq 3):" in out
        assert "seeds re-derived" in out

    def test_stream_requires_dataflow_engine(self, tmp_path, capsys):
        deltas_path = tmp_path / "d.jsonl"
        deltas_path.write_text("{}\n")
        assert cli_main([
            "query", "MATCH (x) ON g", "--engine", "reference",
            "--stream", str(deltas_path),
        ]) == 2
        assert "--stream" in capsys.readouterr().err

    def test_stream_final_table_reflects_batches(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        deltas_path = tmp_path / "d.jsonl"
        save_json(small_graph(), str(graph_path))
        batch = (
            DeltaBatch(sequence=1)
            .add_node("zz", "Person", [(0, 3)])
            .set_property("zz", "risk", "high", 0, 3)
        )
        deltas_path.write_text(json.dumps(batch.to_json_dict()) + "\n\n# comment\n")
        assert cli_main([
            "query", "MATCH (x:Person {risk = 'high'}) ON g",
            "--graph", str(graph_path), "--stream", str(deltas_path),
            "--intervals", "--limit", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "x=zz @ [0,3]" in out

    def test_stream_line_numbers_are_1_based_and_physical(self, tmp_path):
        """Line numbers count physical lines from 1, across reader paths."""
        from repro.errors import StreamFormatError
        from repro.streaming.reader import parse_stream_line, read_delta_stream

        path = tmp_path / "d.jsonl"
        good = json.dumps(DeltaBatch(sequence=1).add_existence("a", 5, 6).to_json_dict())
        # Record sits on physical line 3 (after a comment and a blank);
        # the malformed record is physical line 5.
        path.write_text(f"# header\n\n{good}\n\nnot json\n")
        stream = read_delta_stream(str(path))
        number, batch = next(stream)
        assert number == 3
        assert batch.sequence == 1
        with pytest.raises(StreamFormatError) as err:
            next(stream)
        assert err.value.line == 5
        assert ":5:" in str(err.value)
        # The single-line parser reports the number it was given, 1-based.
        with pytest.raises(StreamFormatError) as err:
            parse_stream_line("not json", path=str(path), number=1)
        assert err.value.line == 1
        assert ":1:" in str(err.value)

    def test_wal_records_carry_1_based_line_numbers(self, tmp_path):
        from repro.resilience.wal import DeltaWAL, scan_wal

        path = tmp_path / "d.wal"
        wal = DeltaWAL(str(path))
        wal.append(DeltaBatch(sequence=1).add_existence("a", 5, 6))
        wal.append(DeltaBatch(sequence=2).add_existence("a", 7, 8))
        wal.close()
        records = scan_wal(str(path)).records
        assert [record.line for record in records] == [1, 2]

    def test_stream_bad_json_reports_line(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        deltas_path = tmp_path / "d.jsonl"
        save_json(small_graph(), str(graph_path))
        deltas_path.write_text("not json\n")
        assert cli_main([
            "query", "MATCH (x) ON g", "--graph", str(graph_path),
            "--stream", str(deltas_path),
        ]) == 2
        assert ":1: invalid JSON" in capsys.readouterr().err
