"""Tests for the ReferenceEngine facade (path evaluation + MATCH evaluation)."""

import pytest

from repro.eval import ReferenceEngine
from repro.lang import ast


class TestPathEvaluation:
    def test_evaluate_path_returns_relation(self, figure1_engine):
        relation = figure1_engine.evaluate_path(ast.test(ast.label("Room")))
        assert ("n4", 1, "n4", 1) in relation
        assert ("n1", 1, "n1", 1) not in relation

    def test_holds_membership(self, figure1_engine):
        hop = ast.concat(ast.F, ast.test(ast.exists()), ast.F, ast.test(ast.exists()))
        assert figure1_engine.holds(hop, ("n6", 7), ("n4", 7))
        assert not figure1_engine.holds(hop, ("n6", 3), ("n4", 3))

    def test_graph_property_exposes_tpg(self, figure1_engine):
        assert figure1_engine.graph.num_nodes() == 7

    def test_accepts_tpg_input(self, figure1_tpg):
        engine = ReferenceEngine(figure1_tpg)
        assert len(engine.match("MATCH (x:Room) ON g")) > 0


class TestMatchEvaluation:
    def test_match_single_element(self, figure1_engine):
        table = figure1_engine.match("MATCH (x:Room) ON contact_tracing")
        objs = {obj for ((obj, _t),) in table.rows}
        assert objs == {"n4", "n5"}

    def test_match_without_variables(self, figure1_engine):
        table = figure1_engine.match("MATCH (:Room) ON contact_tracing")
        assert table.variables == ()
        # A single empty row records that the pattern is satisfiable.
        assert len(table) == 1

    def test_match_unsatisfiable_pattern_is_empty(self, figure1_engine):
        table = figure1_engine.match("MATCH (x:Building) ON contact_tracing")
        assert table.is_empty()

    def test_match_with_edge_condition(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person)-[z:meets {loc = 'park'}]->(y:Person) ON contact_tracing"
        )
        edges = {z for (_x, (z, _zt), _y) in table.rows}
        assert edges == {"e1", "e2", "e11"}

    def test_match_undirected_edge(self, figure1_engine):
        directed = figure1_engine.match(
            "MATCH (x:Person {name = 'Mia'})-[:meets]->(y:Person) ON g"
        )
        undirected = figure1_engine.match(
            "MATCH (x:Person {name = 'Mia'})-[:meets]-(y:Person) ON g"
        )
        # Mia (n3) has outgoing meets edge e11 and incoming meets edge e2.
        directed_targets = {obj for _x, (obj, _t) in directed.rows}
        undirected_targets = {obj for _x, (obj, _t) in undirected.rows}
        assert directed_targets == {"n6"}
        assert undirected_targets == {"n6", "n2"}

    def test_match_incoming_edge(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (r:Room)<-[:visits]-(p:Person) ON contact_tracing"
        )
        rooms = {obj for (obj, _t), _p in table.rows}
        assert rooms == {"n4", "n5"}

    def test_match_accepts_compiled_query(self, figure1_engine):
        from repro.lang.translate import compile_match

        compiled = compile_match("MATCH (x:Room) ON g")
        assert len(figure1_engine.match(compiled)) == len(
            figure1_engine.match("MATCH (x:Room) ON g")
        )

    def test_match_chain_of_three_elements(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person {risk = 'high'})-[:visits]->(r:Room)<-[:visits]-"
            "(y:Person {risk = 'low'}) ON contact_tracing"
        )
        assert len(table) > 0
        for (_x, xt), (_r, rt), (_y, yt) in table.rows:
            assert xt == rt == yt

    def test_unknown_label_value_gives_empty_not_error(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person {risk = 'medium'}) ON contact_tracing"
        )
        assert table.is_empty()


class TestMatchSemanticsDetails:
    def test_edge_variable_time_aligned_with_endpoints(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person)-[z:visits]->(r:Room) ON contact_tracing"
        )
        for (_x, xt), (_z, zt), (_r, rt) in table.rows:
            assert xt == zt == rt

    def test_time_condition_restricts_bindings(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person {time >= '9'}) ON contact_tracing"
        )
        assert all(t >= 9 for ((_obj, t),) in table.rows)

    def test_anonymous_intermediate_element_does_not_bind(self, figure1_engine):
        table = figure1_engine.match(
            "MATCH (x:Person {risk = 'high'})-[:visits]->()<-[:visits]-"
            "(y:Person {risk = 'low'}) ON contact_tracing"
        )
        assert table.variables == ("x", "y")
        # n7 and n3 share room n4 with low-risk Eve (n6) at times 7/8 and 7.
        assert len(table) > 0
        assert {obj for (obj, _t), _y in table.rows} <= {"n3", "n7"}
