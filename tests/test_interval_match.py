"""Interval-native MATCH composition in the reference/bottom-up engine.

PR 3 lifted the reference engine's MATCH-segment composition onto
:class:`~repro.perf.interval_relation.IntervalRelation` diagonals
(:class:`~repro.perf.interval_eval.IntervalMatchEvaluator`) and gave
:class:`~repro.eval.engine.ReferenceEngine` a first-class
``match_intervals`` mirroring the dataflow API.  These tests pin:

* the offset-diagonal frontier representation (binding times relate to
  the current time by fixed offsets along composed diagonals);
* exact agreement of interval-mode ``match`` with the point-mode ground
  truth, including the reference-only fragment (path conditions,
  structural repetition) that the dataflow engine rejects;
* ``match_intervals`` in both modes: canonical families, exact
  expansion, and the dynamic per-row definedness check.
"""

from __future__ import annotations

import pytest

from repro.datagen.random_graphs import (
    random_itpg,
    random_match_query,
    random_path_expression,
)
from repro.dataflow import DataflowEngine
from repro.errors import EvaluationError
from repro.eval import ReferenceEngine
from repro.eval.bindings import expand_match_families
from repro.lang import ast
from repro.lang.parser import MatchQuery, NodePattern, PathPattern
from repro.lang.translate import compile_match
from repro.perf.interval_eval import IntervalBottomUpEvaluator, IntervalMatchEvaluator
from repro.temporal import Interval, IntervalSet


def pc_query(path, bind_second=True, text="<pc>"):
    """A two-element MATCH joined by an arbitrary NavL path connector."""
    return MatchQuery(
        elements=(
            NodePattern(variable="x"),
            NodePattern(variable="y" if bind_second else None),
        ),
        connectors=(PathPattern(path=path, source_text=text),),
        graph_name="g",
        text=text,
    )


class TestOffsetFrontier:
    """The offset-diagonal representation of the MATCH frontier."""

    def test_temporal_axis_shifts_offsets(self):
        graph = random_itpg(0)
        composer = IntervalMatchEvaluator(IntervalBottomUpEvaluator(graph))
        compiled = compile_match(pc_query(ast.N, text="<n>"))
        for (bindings, offsets, _current), times in composer.frontier(
            compiled
        ).items():
            assert len(bindings) == len(offsets) == 2
            # x was bound one N-move before y: its time is current - 1.
            assert offsets == (-1, 0)
            assert not times.is_empty()

    def test_cancelling_moves_return_to_zero_offset(self):
        graph = random_itpg(0)
        composer = IntervalMatchEvaluator(IntervalBottomUpEvaluator(graph))
        compiled = compile_match(pc_query(ast.concat(ast.N, ast.P), text="<np>"))
        entries = composer.frontier(compiled)
        assert entries
        for (_bindings, offsets, _current), _times in entries.items():
            assert offsets == (0, 0)

    def test_frontier_families_are_coalesced(self):
        graph = random_itpg(1)
        composer = IntervalMatchEvaluator(IntervalBottomUpEvaluator(graph))
        compiled = compile_match(random_match_query(42))
        for _key, times in composer.frontier(compiled).items():
            assert not times.is_empty()
            intervals = times.intervals
            for left, right in zip(intervals, intervals[1:]):
                assert right.start - left.end > 1


class TestIntervalModeMatch:
    """Interval-mode match() equals the point-mode ground truth."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_queries_agree(self, seed):
        graph = random_itpg(seed)
        query = random_match_query(seed * 131 + 5)
        point = ReferenceEngine(graph).match(query)
        interval = ReferenceEngine(graph, use_intervals=True).match(query)
        assert point.variables == interval.variables
        assert point.rows == interval.rows

    @pytest.mark.parametrize("seed", range(6))
    def test_reference_only_fragment_agrees(self, seed):
        # Path conditions and structural repetition are outside the
        # dataflow fragment; the interval-native composition must still
        # handle them (through the sub-relation's source projection).
        graph = random_itpg(seed)
        path = random_path_expression(5500 + seed, allow_path_conditions=True)
        query = pc_query(path, text=f"<pc-{seed}>")
        point = ReferenceEngine(graph).match(query)
        interval = ReferenceEngine(graph, use_intervals=True).match(query)
        assert point.rows == interval.rows

    def test_unbound_elements_and_empty_variable_lists(self):
        graph = random_itpg(2)
        query = MatchQuery(
            elements=(NodePattern(variable=None), NodePattern(variable=None)),
            connectors=(PathPattern(path=ast.F, source_text="<f>"),),
            graph_name="g",
            text="<anon>",
        )
        point = ReferenceEngine(graph).match(query)
        interval = ReferenceEngine(graph, use_intervals=True).match(query)
        assert point.variables == interval.variables == ()
        assert point.rows == interval.rows


class TestReferenceMatchIntervals:
    """ReferenceEngine.match_intervals mirrors the dataflow API."""

    @pytest.mark.parametrize("use_intervals", [False, True])
    def test_families_expand_to_match_rows(self, figure1, use_intervals):
        engine = ReferenceEngine(figure1, use_intervals=use_intervals)
        query = "MATCH (x:Person {risk = 'high'}) ON g"
        table = engine.match(query)
        families = engine.match_intervals(query)
        bindings = [b for b, _times in families]
        assert len(bindings) == len(set(bindings))
        assert expand_match_families(families, table.variables) == table.as_set()

    @pytest.mark.parametrize("use_intervals", [False, True])
    def test_agrees_with_dataflow_families(self, figure1, use_intervals):
        engine = ReferenceEngine(figure1, use_intervals=use_intervals)
        dataflow = DataflowEngine(figure1)
        query = "MATCH (x:Person)-[z:meets]->(y:Person) ON g"
        mine = sorted(
            ((b, tuple(ts.intervals)) for b, ts in engine.match_intervals(query)),
            key=repr,
        )
        theirs = sorted(
            ((b, tuple(ts.intervals)) for b, ts in dataflow.match_intervals(query)),
            key=repr,
        )
        assert mine == theirs

    @pytest.mark.parametrize("use_intervals", [False, True])
    def test_rejects_group_spanning_bindings(self, use_intervals):
        graph = random_itpg(4)
        engine = ReferenceEngine(graph, use_intervals=use_intervals)
        query = pc_query(ast.N, text="<n>")
        # x and y are bound one temporal move apart: no shared time axis.
        if engine.match(query):
            with pytest.raises(EvaluationError):
                engine.match_intervals(query)

    @pytest.mark.parametrize("use_intervals", [False, True])
    def test_definedness_is_per_output_row(self, use_intervals):
        # An empty result never raises: with no output rows there is
        # nothing that fails to coalesce.
        graph = random_itpg(4)
        never = MatchQuery(
            elements=(
                NodePattern(variable="x", condition=ast.prop_eq("risk", "none")),
                NodePattern(variable="y"),
            ),
            connectors=(PathPattern(path=ast.N, source_text="<n>"),),
            graph_name="g",
            text="<never>",
        )
        engine = ReferenceEngine(graph, use_intervals=use_intervals)
        assert engine.match(never).is_empty()
        assert engine.match_intervals(never) == []


class TestHandBuiltGraph:
    """A fully hand-checkable instance of the offset composition."""

    def test_two_segment_family(self):
        graph_domain = Interval(0, 6)
        from repro.model.itpg import IntervalTPG

        graph = IntervalTPG(graph_domain)
        graph.add_node("a", "Person", IntervalSet([(0, 4)]))
        graph.add_node("b", "Person", IntervalSet([(2, 6)]))
        graph.add_edge("e", "meets", "a", "b", IntervalSet([(2, 4)]))
        graph.validate()
        query = "MATCH (x:Person)-[:meets]->(y:Person) ON g"
        for use_intervals in (False, True):
            engine = ReferenceEngine(graph, use_intervals=use_intervals)
            families = engine.match_intervals(query)
            assert families == [
                ((("x", "a"), ("y", "b")), IntervalSet([(2, 4)]))
            ]
