"""The lazy, interval-backed binding table (PR 3's full-scan output path).

:class:`~repro.eval.bindings.IntervalBindingTable` stores the coalesced
``(bindings, IntervalSet)`` families of the dataflow engine's Step 3 and
derives point rows only on demand.  These tests pin:

* the lazy-expansion contract — producing (and sizing, and
  limit-printing) the table does not expand point rows;
* exact equivalence with the eager :class:`BindingTable` on every
  read-path (rows, sets, records, pretty, equality);
* which query shapes the dataflow engine serves lazily.
"""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.eval.bindings import BindingTable, IntervalBindingTable
from repro.temporal import IntervalSet


def families_fixture():
    return [
        ((("x", "n2"), ("y", "n9")), IntervalSet([(0, 3), (6, 7)])),
        ((("x", "n1"), ("y", "n3")), IntervalSet([(2, 4)])),
    ]


class TestLazyContract:
    def test_len_and_emptiness_without_expansion(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        assert len(table) == 9
        assert table and not table.is_empty()
        assert table.num_families() == 2
        assert table.num_intervals() == 3
        assert table._table is None  # nothing expanded yet

    def test_limited_pretty_does_not_materialize(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        rendered = table.pretty(limit=3)
        assert table._table is None
        assert "... (6 more rows)" in rendered

    def test_limited_pretty_equals_eager_pretty(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        for limit in (1, 3, 9, 50, 0, -1, -4):
            lazy = IntervalBindingTable(("x", "y"), families_fixture())
            assert lazy.pretty(limit=limit) == table.materialized().pretty(limit=limit)

    def test_rows_expand_sorted_and_cached(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        rows = table.rows
        assert table._table is not None
        expected = BindingTable.build(
            ("x", "y"),
            [
                (("n2", t), ("n9", t))
                for t in (0, 1, 2, 3, 6, 7)
            ]
            + [(("n1", t), ("n3", t)) for t in (2, 3, 4)],
        )
        assert rows == expected.rows
        assert table == expected and expected == table

    def test_empty_families_are_dropped(self):
        table = IntervalBindingTable(
            ("x",), [((("x", "a"),), IntervalSet.empty())]
        )
        assert table.is_empty()
        assert len(table) == 0
        assert table.rows == ()

    def test_zero_variable_table(self):
        matched = IntervalBindingTable((), [((), IntervalSet([(0, 5)]))])
        assert len(matched) == 1
        assert matched.rows == ((),)
        empty = IntervalBindingTable((), [])
        assert len(empty) == 0
        assert empty.rows == ()

    def test_rename_stays_lazy(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        renamed = table.rename({"x": "a"})
        assert isinstance(renamed, IntervalBindingTable)
        assert renamed.variables == ("a", "y")
        assert renamed._table is None
        assert renamed.rows == tuple(table.materialized().rename({"x": "a"}).rows)

    def test_records_and_columns_delegate(self):
        table = IntervalBindingTable(("x", "y"), families_fixture())
        eager = table.materialized()
        assert table.to_records() == eager.to_records()
        assert table.column("x") == eager.column("x")
        assert table.as_set() == eager.as_set()
        assert table.project(("y",)) == eager.project(("y",))


class TestEngineIntegration:
    """Which dataflow outputs stay interval-native, and their equivalence."""

    LAZY = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q9", "Q10", "Q11", "Q12")
    EAGER = ("Q6", "Q7", "Q8")

    @pytest.mark.parametrize("name", LAZY)
    def test_single_group_queries_return_lazy_tables(self, figure1, name):
        result = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES[name].text)
        assert isinstance(result.table, IntervalBindingTable)
        assert result.output_size == len(result.table)
        # output_size was computed without expanding the table.
        assert result.table._table is None

    @pytest.mark.parametrize("name", EAGER)
    def test_group_spanning_queries_stay_pointwise(self, figure1, name):
        result = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES[name].text)
        assert isinstance(result.table, BindingTable)

    @pytest.mark.parametrize("name", list(PAPER_QUERIES))
    def test_lazy_tables_equal_reference(self, figure1, name):
        table = DataflowEngine(figure1).match(PAPER_QUERIES[name].text)
        reference = ReferenceEngine(figure1).match(PAPER_QUERIES[name].text)
        assert table.rows == reference.rows

    def test_legacy_mode_is_always_eager(self, figure1):
        engine = DataflowEngine(figure1, use_coalesced=False)
        result = engine.match_with_stats(PAPER_QUERIES["Q1"].text)
        assert isinstance(result.table, BindingTable)
