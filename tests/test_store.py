"""Persistent compiled-graph store: artifacts, shards, attach, CLI, server.

Covers the PR-8 store subsystem end to end:

* compile → attach round trips reproduce the full index surface
  (objects, labels, endpoints, existence, properties, adjacency,
  candidate buckets) for single-file artifacts and sharded stores;
* the on-disk format rejects damage *structurally*: bad magic and
  foreign files raise :class:`~repro.errors.StoreFormatError`, version
  bumps raise :class:`~repro.errors.StoreVersionError` carrying
  ``found``/``expected``, truncation and flipped bytes raise
  :class:`~repro.errors.StoreCorruptError` naming the section — never a
  wrong answer or an unstructured crash;
* writes are atomic (no temp debris, no partially-written artifact ever
  visible under the final name);
* deltas applied after attach keep answers correct and rotate the
  graph's :class:`~repro.parallel.plan.StoreRef` out of circulation;
* the CLI ``compile`` / ``query --store`` surface and the server's
  ``from_files(store=...)`` restart path produce the same answers as
  the in-memory route.
"""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.cli import main as cli_main
from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import StoreCorruptError, StoreFormatError, StoreVersionError
from repro.model import contact_tracing_example
from repro.parallel.plan import store_ref
from repro.server.state import GraphHost
from repro.store import Artifact, VERSION, attach, compile_graph
from repro.store.format import MAGIC
from repro.streaming.delta import DeltaBatch, apply_delta
from repro.streaming.engine import StreamingEngine


def _compile(tmp_path, graph, name="graph.rix", **kwargs):
    path = str(tmp_path / name)
    report = compile_graph(graph, path, **kwargs)
    return path, report


class TestRoundTrip:
    """Attach reproduces the full index surface of the compiled graph."""

    def test_graph_surface_matches(self, tmp_path):
        graph = random_itpg(11, num_nodes=9, num_edges=14)
        path, report = _compile(tmp_path, graph)
        attachment = attach(path)
        try:
            got = attachment.graph
            assert list(got.nodes()) == list(graph.nodes())
            assert list(got.edges()) == list(graph.edges())
            assert list(got.objects()) == list(graph.objects())
            assert (got.domain.start, got.domain.end) == (
                graph.domain.start,
                graph.domain.end,
            )
            for obj in graph.objects():
                assert got.label(obj) == graph.label(obj)
                assert got.existence(obj).intervals == graph.existence(obj).intervals
                assert got.property_names(obj) == graph.property_names(obj)
                for name in graph.property_names(obj):
                    assert got.property_family(obj, name) == graph.property_family(
                        obj, name
                    )
            for edge in graph.edges():
                assert got.source(edge) == graph.source(edge)
                assert got.target(edge) == graph.target(edge)
            for node in graph.nodes():
                assert sorted(got.out_edges(node)) == sorted(graph.out_edges(node))
                assert sorted(got.in_edges(node)) == sorted(graph.in_edges(node))
        finally:
            attachment.close()
        assert report["objects"] == len(list(graph.objects()))

    def test_engine_answers_match(self, tmp_path):
        graph = contact_tracing_example()
        path, _ = _compile(tmp_path, graph)
        attachment = attach(path)
        try:
            for name in ("Q1", "Q2", "Q5"):
                text = PAPER_QUERIES[name].text
                expected = DataflowEngine(graph).match(text).as_set()
                assert DataflowEngine(attachment.graph).match(text).as_set() == expected
        finally:
            attachment.close()

    def test_attach_is_lazy(self, tmp_path):
        """Queries run off the map; the pickled graph is never loaded."""
        graph = contact_tracing_example()
        path, _ = _compile(tmp_path, graph)
        attachment = attach(path)
        try:
            DataflowEngine(attachment.graph).match(PAPER_QUERIES["Q1"].text)
            assert attachment.graph.materialized is False
        finally:
            attachment.close()

    def test_token_is_per_compile_and_stable_per_artifact(self, tmp_path):
        graph = contact_tracing_example()
        path_a, report_a = _compile(tmp_path, graph, name="a.rix")
        path_b, report_b = _compile(tmp_path, graph, name="b.rix")
        assert report_a["token"] != report_b["token"]
        first, second = attach(path_a), attach(path_a)
        try:
            assert first.token == second.token == report_a["token"]
            ref = store_ref(first.graph)
            assert ref is not None and ref.token == report_a["token"]
        finally:
            first.close()
            second.close()

    def test_verify_passes_on_intact_artifact(self, tmp_path):
        path, _ = _compile(tmp_path, contact_tracing_example())
        attachment = attach(path)
        try:
            attachment.verify()
        finally:
            attachment.close()


class TestAtomicWrite:
    def test_no_temp_debris(self, tmp_path):
        _compile(tmp_path, contact_tracing_example())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["graph.rix"]

    def test_sharded_writes_manifest_head_and_shards_only(self, tmp_path):
        path, report = _compile(
            tmp_path, contact_tracing_example(), name="store.json", shards=3
        )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "store.head.rix",
            "store.json",
            "store.shard0.rix",
            "store.shard1.rix",
            "store.shard2.rix",
        ]
        assert report["sharded"] and report["shard_count"] == 3


class TestRejection:
    """Damage is rejected with structured errors, never a wrong answer."""

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "not-an-artifact.rix"
        path.write_bytes(b"definitely not a repro-index artifact, long enough")
        with pytest.raises(StoreFormatError) as info:
            attach(str(path))
        assert info.value.path == str(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "stub.rix"
        path.write_bytes(MAGIC)
        with pytest.raises(StoreFormatError):
            attach(str(path))

    def test_version_bump(self, tmp_path):
        path, _ = _compile(tmp_path, contact_tracing_example())
        raw = bytearray(open(path, "rb").read())
        # The u32 format version sits right after the 8-byte magic.
        struct.pack_into("<I", raw, len(MAGIC), VERSION + 1)
        open(path, "wb").write(bytes(raw))
        with pytest.raises(StoreVersionError) as info:
            attach(path)
        assert info.value.found == VERSION + 1
        assert info.value.expected == VERSION
        assert "recompile" in str(info.value)

    def test_truncation_caught_at_attach(self, tmp_path):
        path, _ = _compile(tmp_path, contact_tracing_example())
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - size // 4)
        with pytest.raises(StoreCorruptError):
            attach(path)

    def test_header_tamper_fails_checksum(self, tmp_path):
        path, _ = _compile(tmp_path, contact_tracing_example())
        raw = bytearray(open(path, "rb").read())
        # Flip one byte inside the header JSON (fixed header is
        # magic + u32 + u64 + sha256 = 52 bytes).
        raw[60] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(StoreCorruptError) as info:
            attach(path)
        assert info.value.path == path

    def test_section_bitflip_fails_crc(self, tmp_path):
        path, _ = _compile(tmp_path, contact_tracing_example())
        probe = Artifact(path)
        offset, length, _crc = probe._table["exist.dat"]
        body = probe._body_start
        probe.close()
        raw = bytearray(open(path, "rb").read())
        raw[body + offset + length // 2] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        attachment = attach(path)  # head sections are intact
        try:
            with pytest.raises(StoreCorruptError) as info:
                attachment.verify()
            assert info.value.section == "exist.dat"
        finally:
            attachment.close()

    def test_head_or_shard_artifact_rejected_as_single(self, tmp_path):
        path, _ = _compile(
            tmp_path, contact_tracing_example(), name="store.json", shards=2
        )
        with pytest.raises(StoreFormatError) as info:
            attach(str(tmp_path / "store.head.rix"))
        assert "manifest" in str(info.value)

    def test_manifest_version_mismatch(self, tmp_path):
        path, _ = _compile(
            tmp_path, contact_tracing_example(), name="store.json", shards=2
        )
        manifest = json.loads(open(path).read())
        manifest["format"] = "repro-index-manifest/99"
        open(path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreVersionError):
            attach(path)

    def test_mixed_generation_shards_rejected(self, tmp_path):
        graph = contact_tracing_example()
        path, _ = _compile(tmp_path, graph, name="store.json", shards=2)
        other = tmp_path / "other"
        other.mkdir()
        other_path, _ = _compile(other, graph, name="store.json", shards=2)
        # Swap in a shard from the other compile: same graph, same
        # layout, different generation token.
        (tmp_path / "store.shard1.rix").write_bytes(
            (other / "store.shard1.rix").read_bytes()
        )
        attachment = attach(path)
        try:
            with pytest.raises(StoreCorruptError) as info:
                attachment.verify()
            assert "token" in str(info.value)
        finally:
            attachment.close()


class TestSharded:
    def test_sharded_answers_match_single(self, tmp_path):
        graph = random_itpg(23, num_nodes=10, num_edges=16)
        query = random_match_query(23 * 31 + 7)
        single_path, _ = _compile(tmp_path, graph, name="single.rix")
        manifest_path, _ = _compile(tmp_path, graph, name="store.json", shards=3)
        expected = DataflowEngine(graph).match(query).as_set()
        single, sharded = attach(single_path), attach(manifest_path)
        try:
            assert sharded.sharded is True and single.sharded is False
            assert DataflowEngine(single.graph).match(query).as_set() == expected
            assert DataflowEngine(sharded.graph).match(query).as_set() == expected
        finally:
            single.close()
            sharded.close()

    def test_more_shards_than_nodes(self, tmp_path):
        graph = random_itpg(5, num_nodes=3, num_edges=4)
        path, report = _compile(tmp_path, graph, name="store.json", shards=16)
        attachment = attach(path)
        try:
            assert list(attachment.graph.objects()) == list(graph.objects())
            attachment.verify()
        finally:
            attachment.close()


class TestDeltasAfterAttach:
    def test_delta_parity_and_store_ref_rotation(self, tmp_path):
        baseline = contact_tracing_example()
        path, _ = _compile(tmp_path, contact_tracing_example())
        attachment = attach(path)
        try:
            attached = attachment.graph
            assert store_ref(attached) is not None
            batch = (
                DeltaBatch()
                .add_node("zara", "Person", [(2, 9)])
                .add_edge("cZ", "ContactWith", "zara", "n1", [(3, 5)])
            )
            session = StreamingEngine(engine=DataflowEngine(attached))
            session.register(PAPER_QUERIES["Q1"].text, name="Q1")
            session.apply(batch)
            apply_delta(baseline, batch)
            expected = DataflowEngine(baseline).match(PAPER_QUERIES["Q1"].text).as_set()
            assert session.table("Q1").as_set() == expected
            assert DataflowEngine(attached).match(PAPER_QUERIES["Q1"].text).as_set() == expected
            # The artifact on disk no longer describes this graph: its
            # store ref must not survive the mutation.
            assert store_ref(attached) is None
        finally:
            attachment.close()


class TestCliStore:
    def test_compile_verify_and_query_store(self, tmp_path, capsys):
        artifact = str(tmp_path / "figure1.rix")
        assert cli_main(["compile", "-o", artifact, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "# verify: every section passed its checksum" in out

        assert cli_main(["query", "Q1"]) == 0
        baseline = capsys.readouterr().out
        assert cli_main(["query", "Q1", "--store", artifact]) == 0
        assert capsys.readouterr().out == baseline

    def test_compile_sharded(self, tmp_path, capsys):
        manifest = str(tmp_path / "figure1.json")
        assert cli_main(["compile", "-o", manifest, "--shards", "2", "--verify"]) == 0
        assert "2 shard(s)" in capsys.readouterr().out
        assert cli_main(["query", "Q1"]) == 0
        baseline = capsys.readouterr().out
        assert cli_main(["query", "Q1", "--store", manifest]) == 0
        assert capsys.readouterr().out == baseline

    def test_store_and_graph_are_mutually_exclusive(self, tmp_path, capsys):
        assert cli_main(["query", "Q1", "--store", "a.rix", "--graph", "b.json"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_store_requires_dataflow_engine(self, capsys):
        assert cli_main(["query", "Q1", "--engine", "reference", "--store", "a.rix"]) == 2
        assert "dataflow engine only" in capsys.readouterr().err

    def test_query_missing_store_reports_structured_error(self, tmp_path, capsys):
        missing = str(tmp_path / "gone.rix")
        assert cli_main(["query", "Q1", "--store", missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestServerStore:
    def test_from_files_attaches_store(self, tmp_path):
        graph = contact_tracing_example()
        path, _ = _compile(tmp_path, graph)
        host, recovery = GraphHost.from_files("g", None, store=path)
        assert recovery is None
        expected = DataflowEngine(graph).match(PAPER_QUERIES["Q1"].text).as_set()
        response = host.query("Q1")
        assert response["server"]["graph"] == "g"
        direct = DataflowEngine(host.graph).match(PAPER_QUERIES["Q1"].text).as_set()
        assert direct == expected
        host.close()

    def test_snapshot_still_wins_over_store(self, tmp_path):
        """Recovery semantics: durable state beats the compiled artifact."""
        from repro.resilience import write_snapshot

        graph = contact_tracing_example()
        batch = DeltaBatch().add_node("Zara", "Person", [(2, 9)])
        session = StreamingEngine(engine=DataflowEngine(graph))
        session.apply(batch)
        snapshot = str(tmp_path / "snap.pkl")
        write_snapshot(session, snapshot)

        stale = contact_tracing_example()
        path, _ = _compile(tmp_path, stale)
        host, recovery = GraphHost.from_files("g", None, store=path, snapshot=snapshot)
        assert recovery is not None
        assert host.graph.has_object("Zara")
        host.close()
