"""Unit tests for interval-timestamped temporal property graphs."""

import pytest

from repro.errors import GraphIntegrityError, UnknownObjectError
from repro.model import IntervalTPG
from repro.temporal import Interval, IntervalSet


@pytest.fixture()
def graph():
    g = IntervalTPG(Interval(0, 11))
    g.add_node("p", "Person", IntervalSet([(0, 5), (8, 11)]))
    g.add_node("q", "Person", IntervalSet([(0, 11)]))
    g.add_node("room", "Room", [(2, 9)])
    g.add_edge("pq", "meets", "p", "q", [(1, 3)])
    g.add_edge("visit", "visits", "q", "room", [(4, 6)])
    g.set_property("p", "risk", "low", 0, 5)
    g.set_property("p", "risk", "high", 8, 11)
    g.set_property("pq", "loc", "cafe", 1, 3)
    return g


class TestConstruction:
    def test_domain(self, graph):
        assert graph.domain == Interval(0, 11)
        assert list(graph.time_points()) == list(range(12))

    def test_existence_accepts_tuples_and_sets(self, graph):
        assert graph.existence("room") == IntervalSet([(2, 9)])
        assert graph.existence("p") == IntervalSet([(0, 5), (8, 11)])

    def test_add_existence_extends_and_coalesces(self, graph):
        graph.add_existence("room", 10, 11)
        assert graph.existence("room") == IntervalSet([(2, 11)])

    def test_duplicate_id_rejected(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.add_node("p", "Person")
        with pytest.raises(GraphIntegrityError):
            graph.add_edge("pq", "meets", "p", "q")

    def test_unknown_endpoints_rejected(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.add_edge("x", "meets", "p", "ghost")

    def test_existence_outside_domain_rejected(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.add_existence("p", 10, 42)
        with pytest.raises(GraphIntegrityError):
            IntervalTPG(Interval(0, 3)).add_node("n", "L", [(0, 9)])

    def test_property_outside_domain_rejected(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.set_property("p", "risk", "low", 0, 99)

    def test_property_on_unknown_object_rejected(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.set_property("ghost", "p", "v", 0, 1)


class TestAccessors:
    def test_label_and_kind(self, graph):
        assert graph.label("p") == "Person"
        assert graph.label("pq") == "meets"
        assert graph.is_node("room") and graph.is_edge("visit")

    def test_endpoints(self, graph):
        assert graph.endpoints("visit") == ("q", "room")
        assert graph.source("pq") == "p" and graph.target("pq") == "q"

    def test_pointwise_existence(self, graph):
        assert graph.exists("p", 0) and graph.exists("p", 11)
        assert not graph.exists("p", 6)
        assert not graph.exists("pq", 0)

    def test_property_family(self, graph):
        family = graph.property_family("p", "risk")
        assert family.value_at(3) == "low"
        assert family.value_at(9) == "high"
        assert family.value_at(6) is None

    def test_property_value(self, graph):
        assert graph.property_value("pq", "loc", 2) == "cafe"
        assert graph.property_value("pq", "loc", 5) is None
        assert graph.property_value("room", "missing", 5) is None

    def test_property_names(self, graph):
        assert graph.property_names("p") == frozenset({"risk"})
        assert graph.property_names("room") == frozenset()

    def test_properties_returns_copy(self, graph):
        props = graph.properties("p")
        props.clear()
        assert graph.property_names("p") == frozenset({"risk"})

    def test_adjacency(self, graph):
        assert graph.out_edges("p") == frozenset({"pq"})
        assert graph.in_edges("q") == frozenset({"pq"})
        assert graph.out_edges("q") == frozenset({"visit"})
        assert graph.in_edges("room") == frozenset({"visit"})

    def test_unknown_object_errors(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.existence("ghost")
        with pytest.raises(UnknownObjectError):
            graph.label("ghost")
        with pytest.raises(UnknownObjectError):
            graph.out_edges("ghost")


class TestVersionCounting:
    def test_num_nodes_edges(self, graph):
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 2

    def test_temporal_nodes_count_versions(self, graph):
        # p: two existence runs (risk differs but changes exactly at the run
        # boundary) -> 2 versions; q: 1; room: 1.
        assert graph.num_temporal_nodes() == 4

    def test_temporal_edges_count_versions(self, graph):
        assert graph.num_temporal_edges() == 2

    def test_property_change_splits_version(self):
        g = IntervalTPG(Interval(0, 9))
        g.add_node("n", "Person", [(0, 9)])
        g.set_property("n", "risk", "low", 0, 4)
        g.set_property("n", "risk", "high", 5, 9)
        assert g.num_temporal_nodes() == 2


class TestValidation:
    def test_valid_graph_passes(self, graph):
        graph.validate()

    def test_edge_outside_endpoint_existence_rejected(self):
        g = IntervalTPG(Interval(0, 9))
        g.add_node("a", "Person", [(0, 3)])
        g.add_node("b", "Person", [(0, 9)])
        g.add_edge("ab", "knows", "a", "b", [(2, 5)])
        with pytest.raises(GraphIntegrityError):
            g.validate()

    def test_property_outside_existence_rejected(self):
        g = IntervalTPG(Interval(0, 9))
        g.add_node("a", "Person", [(0, 3)])
        g.set_property("a", "name", "x", 2, 6)
        with pytest.raises(GraphIntegrityError):
            g.validate()

    def test_figure1_is_valid(self, figure1):
        figure1.validate()

    def test_repr(self, graph):
        assert "IntervalTPG" in repr(graph)
