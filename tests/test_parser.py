"""Tests for the practical-syntax parser (path expressions and MATCH clauses)."""

import pytest

from repro.errors import QuerySyntaxError, QueryTranslationError
from repro.lang import ast, parse_match, parse_path
from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    ExistsTest,
    LabelTest,
    NotTest,
    PropEq,
    Repeat,
    TestPath,
    TimeLt,
    Union,
)
from repro.lang.parser import EdgePattern, NodePattern, PathPattern, tokenize
from repro.lang.translate import compile_match, node_pattern_test


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("MATCH (x:Person) ON g")]
        assert kinds == ["IDENT", "(", "IDENT", ":", "IDENT", ")", "IDENT", "IDENT"]

    def test_string_and_number(self):
        tokens = tokenize("{risk = 'low' AND time < 10}")
        assert any(t.kind == "STRING" for t in tokens)
        assert any(t.kind == "NUMBER" for t in tokens)

    def test_arrow_in(self):
        assert tokenize("<-[")[0].kind == "<-"

    def test_le_ge(self):
        kinds = {t.kind for t in tokenize("a <= 3 >= 4")}
        assert "<=" in kinds and ">=" in kinds

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("MATCH (x) § ON g")


class TestPathParsing:
    def test_single_axis_with_implicit_existence(self):
        expr = parse_path("NEXT")
        assert expr == ast.concat(ast.N, ast.exists())

    def test_single_axis_bare(self):
        assert parse_path("NEXT", implicit_existence=False) == ast.N
        assert parse_path("FWD", implicit_existence=False) == ast.F
        assert parse_path("BWD", implicit_existence=False) == ast.B
        assert parse_path("PREV", implicit_existence=False) == ast.P

    def test_axis_keywords_case_insensitive(self):
        assert parse_path("next", implicit_existence=False) == ast.N

    def test_label_test(self):
        expr = parse_path(":meets", implicit_existence=False)
        assert expr == ast.test(ast.label("meets"))

    def test_label_test_with_existence(self):
        expr = parse_path(":meets")
        assert isinstance(expr, TestPath)
        assert isinstance(expr.condition, AndTest)
        assert LabelTest("meets") in expr.condition.parts
        assert ExistsTest() in expr.condition.parts

    def test_concatenation(self):
        expr = parse_path("FWD/:meets/FWD", implicit_existence=False)
        assert isinstance(expr, Concat)
        assert len(expr.parts) == 3

    def test_union_precedence(self):
        expr = parse_path("FWD/BWD + NEXT", implicit_existence=False)
        assert isinstance(expr, Union)
        assert isinstance(expr.parts[0], Concat)
        assert expr.parts[1] == ast.N

    def test_parentheses(self):
        expr = parse_path("(FWD + BWD)/NEXT", implicit_existence=False)
        assert isinstance(expr, Concat)
        assert isinstance(expr.parts[0], Union)

    def test_kleene_star(self):
        expr = parse_path("PREV*", implicit_existence=False)
        assert expr == ast.star(ast.P)

    def test_kleene_star_with_existence(self):
        expr = parse_path("PREV*")
        assert expr == ast.star(ast.concat(ast.P, ast.exists()))

    def test_bounded_repetition(self):
        expr = parse_path("NEXT[0,12]", implicit_existence=False)
        assert expr == ast.repeat(ast.N, 0, 12)

    def test_unbounded_repetition(self):
        expr = parse_path("NEXT[3,_]", implicit_existence=False)
        assert expr == ast.repeat(ast.N, 3, None)

    def test_repetition_on_group(self):
        expr = parse_path("(FWD/BWD)[1,2]", implicit_existence=False)
        assert isinstance(expr, Repeat)
        assert isinstance(expr.body, Concat)

    def test_property_condition(self):
        expr = parse_path("{risk = 'low'}", implicit_existence=False)
        assert expr == ast.test(ast.prop_eq("risk", "low"))

    def test_property_condition_with_and(self):
        expr = parse_path("{risk = 'low' AND time < '10'}", implicit_existence=False)
        condition = expr.condition
        assert isinstance(condition, AndTest)
        assert PropEq("risk", "low") in condition.parts
        assert TimeLt(10) in condition.parts

    def test_time_equality(self):
        expr = parse_path("{time = '3'}", implicit_existence=False)
        assert expr == ast.test(ast.time_eq(3))

    def test_time_comparisons(self):
        assert parse_path("{time <= 4}", implicit_existence=False).condition == TimeLt(5)
        assert parse_path("{time > 4}", implicit_existence=False).condition == NotTest(TimeLt(5))
        assert parse_path("{time >= 4}", implicit_existence=False).condition == NotTest(TimeLt(4))

    def test_property_not_equal(self):
        expr = parse_path("{risk != 'low'}", implicit_existence=False)
        assert expr.condition == NotTest(PropEq("risk", "low"))

    def test_or_and_not_in_conditions(self):
        expr = parse_path("{NOT (risk = 'low' OR risk = 'high')}", implicit_existence=False)
        assert isinstance(expr.condition, NotTest)

    def test_numeric_string_normalized(self):
        expr = parse_path("{num = '750'}", implicit_existence=False)
        assert expr.condition == PropEq("num", 750)

    def test_inequality_on_property_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_path("{risk < 'low'}")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_path("FWD FWD")

    def test_unclosed_paren_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_path("(FWD/BWD")

    def test_q12_expression_parses(self):
        text = (
            "(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]"
        )
        expr = parse_path(text)
        assert isinstance(expr, Concat)
        assert isinstance(expr.parts[0], Union)
        assert isinstance(expr.parts[-1], Repeat)


class TestMatchParsing:
    def test_minimal_match(self):
        query = parse_match("MATCH (x:Person) ON g")
        assert query.graph_name == "g"
        assert query.elements == (NodePattern("x", "Person", None),)
        assert query.connectors == ()

    def test_match_without_on(self):
        query = parse_match("MATCH (x)")
        assert query.graph_name is None

    def test_anonymous_element(self):
        query = parse_match("MATCH ({test = 'pos'}) ON g")
        element = query.elements[0]
        assert element.variable is None and element.label is None
        assert element.condition == PropEq("test", "pos")

    def test_label_only_element(self):
        query = parse_match("MATCH (:Room) ON g")
        assert query.elements[0] == NodePattern(None, "Room", None)

    def test_edge_pattern_directed(self):
        query = parse_match("MATCH (x)-[z:meets]->(y) ON g")
        connector = query.connectors[0]
        assert isinstance(connector, EdgePattern)
        assert connector.variable == "z"
        assert connector.label == "meets"
        assert connector.direction == "out"

    def test_edge_pattern_incoming(self):
        query = parse_match("MATCH (x)<-[:visits]-(y) ON g")
        assert query.connectors[0].direction == "in"

    def test_edge_pattern_undirected(self):
        query = parse_match("MATCH (x)-[:meets]-(y) ON g")
        assert query.connectors[0].direction == "both"

    def test_edge_pattern_with_condition(self):
        query = parse_match("MATCH (x)-[z:meets {loc = 'park'}]->(y) ON g")
        assert query.connectors[0].condition == PropEq("loc", "park")

    def test_path_pattern(self):
        query = parse_match("MATCH (x:Person)-/PREV/-(y:Person) ON g")
        connector = query.connectors[0]
        assert isinstance(connector, PathPattern)
        assert connector.path == ast.concat(ast.P, ast.exists())

    def test_path_pattern_with_star(self):
        query = parse_match("MATCH (x)-/PREV*/FWD/:visits/FWD/-(z:Room) ON g")
        connector = query.connectors[0]
        assert isinstance(connector, PathPattern)
        assert isinstance(connector.path, Concat)

    def test_multi_hop_pattern(self):
        query = parse_match(
            "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person)-[:visits]->(z:Room) ON g"
        )
        assert len(query.elements) == 3
        assert len(query.connectors) == 2

    def test_variables_in_order(self):
        query = parse_match("MATCH (x)-[z:meets]->(y) ON g")
        assert query.variables() == ["x", "z", "y"]

    def test_missing_match_keyword(self):
        with pytest.raises(QuerySyntaxError):
            parse_match("(x:Person) ON g")

    def test_bad_connector(self):
        with pytest.raises(QuerySyntaxError):
            parse_match("MATCH (x)->(y) ON g")


class TestCompileMatch:
    def test_node_pattern_test_includes_existence(self):
        pattern = NodePattern("x", "Person", ast.prop_eq("risk", "low"))
        condition = node_pattern_test(pattern)
        assert isinstance(condition, AndTest)
        assert ExistsTest() in condition.parts
        assert LabelTest("Person") in condition.parts

    def test_compile_binds_variables_in_order(self):
        compiled = compile_match("MATCH (x)-[z:meets]->(y:Person) ON g")
        assert compiled.variables == ("x", "z", "y")
        assert compiled.graph_name == "g"

    def test_compile_counts_segments(self):
        compiled = compile_match("MATCH (x:Person)-/PREV/-(y:Person) ON g")
        # first node, path connector, second node
        assert len(compiled.segments) == 3

    def test_edge_without_variable_is_one_segment(self):
        compiled = compile_match("MATCH (x)-[:meets]->(y) ON g")
        assert len(compiled.segments) == 3

    def test_edge_with_variable_is_three_segments(self):
        compiled = compile_match("MATCH (x)-[z:meets]->(y) ON g")
        assert len(compiled.segments) == 5

    def test_undirected_edge_with_variable_rejected(self):
        with pytest.raises(QueryTranslationError):
            compile_match("MATCH (x)-[z:meets]-(y) ON g")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(QueryTranslationError):
            compile_match("MATCH (x)-[:meets]->(x) ON g")

    def test_full_path_concatenates_segments(self):
        compiled = compile_match("MATCH (x:Person)-/PREV/-(y:Person) ON g")
        full = compiled.full_path()
        assert isinstance(full, Concat)

    def test_compile_accepts_parsed_query(self):
        parsed = parse_match("MATCH (x:Person) ON g")
        compiled = compile_match(parsed)
        assert compiled.variables == ("x",)


class TestPaperTranslationExamples:
    """Spot checks of the Section V-A correspondences."""

    def test_prev_example(self):
        # MATCH (x:Person {test='pos'})-/PREV/-(y) corresponds to
        # (Node ∧ Person ∧ test↦pos ∧ ∃) / P / ∃ / (Node ∧ ∃)
        compiled = compile_match(
            "MATCH (x:Person {test = 'pos'})-/PREV/-(y) ON graph"
        )
        first = compiled.segments[0].path
        assert isinstance(first, TestPath)
        parts = first.condition.parts
        assert LabelTest("Person") in parts and PropEq("test", "pos") in parts

    def test_q4_time_condition(self):
        compiled = compile_match(
            "MATCH (x:Person {risk = 'low' AND time < '10'}) ON contact_tracing"
        )
        condition = compiled.segments[0].path.condition
        assert TimeLt(10) in condition.parts
