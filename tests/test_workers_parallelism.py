"""Worker-thread partitioning must be invisible in every output representation.

The dataflow engine can split the seed frontier across a thread pool
(``workers > 1``) and, under the coalesced frontier, signature-equal rows
may land in different chunks.  The chunked run must re-merge them into a
canonically coalesced frontier — no duplicate binding signatures, every
interval family coalesced — and every public output (``match``,
``match_with_stats``, ``match_intervals``) must be identical to the
``workers=1`` run.  These are the invariants this module pins
(the ``executor._run_chain`` / ``executor._materialize`` seams named in
the PR-3 audit).
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    ContactTracingConfig,
    TrajectoryConfig,
    generate_contact_tracing_graph,
)
from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import DataflowEngine, PAPER_QUERIES, row_signature
from repro.dataflow.executor import _ChainStats, _split
from repro.errors import EvaluationError
from repro.lang.translate import compile_match
from repro.temporal.coalesce import is_coalesced


@pytest.fixture(scope="module")
def contact_graph():
    """Large enough that the per-worker chunking actually engages."""
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
        ),
        positivity_rate=0.2,
        seed=7,
    )
    return generate_contact_tracing_graph(config)


def canonical_families(engine, query):
    try:
        families = engine.match_intervals(query)
    except EvaluationError:
        return None
    return sorted(
        ((bindings, tuple(times.intervals)) for bindings, times in families),
        key=repr,
    )


class TestSplitHelper:
    def test_split_covers_and_bounds_chunks(self):
        items = list(range(11))
        chunks = _split(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= 4
        assert all(chunks)

    def test_split_single_worker_is_identity(self):
        items = list(range(5))
        assert _split(items, 1) == [items]


class TestChunkedFrontierInvariants:
    @pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q9", "Q11", "Q12"])
    def test_merged_frontier_has_unique_coalesced_signatures(
        self, contact_graph, query_name
    ):
        engine = DataflowEngine(contact_graph, workers=4)
        compiled = compile_match(PAPER_QUERIES[query_name].text)
        chain = engine._compile(compiled)
        frontier = engine._run_chain(chain, _ChainStats())
        seeds, _rest = engine._initial_frontier(chain)
        if query_name in ("Q1", "Q5"):
            # Full scans must actually engage the thread pool, otherwise
            # the re-merge below is vacuous (selective queries like Q9
            # legitimately seed fewer rows than 2 x workers and run
            # sequentially).
            assert len(seeds) >= 2 * engine.workers
        signatures = [row_signature(row, engine.index.object_id) for row in frontier]
        assert len(signatures) == len(set(signatures)), (
            f"{query_name}: chunked merge left duplicate binding signatures"
        )
        for row in frontier:
            for group in row.groups:
                assert is_coalesced(list(group.times.intervals))

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("use_coalesced", [True, False])
    def test_workers_do_not_change_any_output(
        self, contact_graph, workers, use_coalesced
    ):
        sequential = DataflowEngine(contact_graph, use_coalesced=use_coalesced)
        parallel = DataflowEngine(
            contact_graph, workers=workers, use_coalesced=use_coalesced
        )
        for name, query in PAPER_QUERIES.items():
            seq_result = sequential.match_with_stats(query.text)
            par_result = parallel.match_with_stats(query.text)
            assert seq_result.output_size == par_result.output_size, name
            assert seq_result.table.as_set() == par_result.table.as_set(), name
            assert canonical_families(sequential, query.text) == canonical_families(
                parallel, query.text
            ), name

    def test_workers_agree_on_random_graphs(self):
        for seed in range(12):
            graph = random_itpg(seed, num_nodes=14, num_edges=24, num_windows=10)
            query = random_match_query(seed * 31 + 7)
            sequential = DataflowEngine(graph)
            parallel = DataflowEngine(graph, workers=4)
            assert (
                sequential.match(query).as_set() == parallel.match(query).as_set()
            ), f"workers diverged on random seed {seed}"
            assert canonical_families(sequential, query) == canonical_families(
                parallel, query
            ), f"workers family output diverged on random seed {seed}"
