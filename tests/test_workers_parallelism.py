"""Worker partitioning must be invisible in every output representation.

The dataflow engine can split the seed frontier across a thread pool or
a worker-process pool (``workers > 1``) and, under the coalesced
frontier, signature-equal rows may land in different chunks.  The
chunked run must re-merge them into a canonically coalesced result — no
duplicate binding signatures, every interval family coalesced — and
every public output (``match``, ``match_with_stats``,
``match_intervals``) must be identical to the ``workers=1`` run.  These
are the invariants this module pins (the ``executor._run_chain`` /
``executor._materialize`` seams named in the PR-3 audit, extended in
PR 4 with the ``repro.parallel`` process backend: output identity
across start methods and engine configurations, the degree-weighted
partitioner, and worker-crash error propagation).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.datagen import (
    ContactTracingConfig,
    TrajectoryConfig,
    generate_contact_tracing_graph,
)
from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import DataflowEngine, PAPER_QUERIES, row_signature
from repro.dataflow.executor import _ChainStats, _split
from repro.errors import EvaluationError, ReproError, RetryBudgetExceeded
from repro.eval import ReferenceEngine
from repro.lang.translate import compile_match
from repro.parallel import plan_for, weighted_chunks
from repro.parallel import pool as pool_module
from repro.parallel.pool import shared_pool, shutdown_pools
from repro.resilience import RetryPolicy, failpoints
from repro.temporal.coalesce import is_coalesced


@pytest.fixture(scope="module")
def contact_graph():
    """Large enough that the per-worker chunking actually engages."""
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
        ),
        positivity_rate=0.2,
        seed=7,
    )
    return generate_contact_tracing_graph(config)


def canonical_families(engine, query):
    try:
        families = engine.match_intervals(query)
    except EvaluationError:
        return None
    return sorted(
        ((bindings, tuple(times.intervals)) for bindings, times in families),
        key=repr,
    )


class TestSplitHelper:
    def test_split_covers_and_bounds_chunks(self):
        items = list(range(11))
        chunks = _split(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= 4
        assert all(chunks)

    def test_split_single_worker_is_identity(self):
        items = list(range(5))
        assert _split(items, 1) == [items]


class TestChunkedFrontierInvariants:
    @pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q9", "Q11", "Q12"])
    def test_merged_frontier_has_unique_coalesced_signatures(
        self, contact_graph, query_name
    ):
        engine = DataflowEngine(contact_graph, workers=4)
        compiled = compile_match(PAPER_QUERIES[query_name].text)
        chain = engine._compile(compiled)
        frontier = engine._run_chain(chain, _ChainStats())
        seeds, _rest = engine._initial_frontier(chain)
        if query_name in ("Q1", "Q5"):
            # Full scans must actually engage the thread pool, otherwise
            # the re-merge below is vacuous (selective queries like Q9
            # legitimately seed fewer rows than 2 x workers and run
            # sequentially).
            assert len(seeds) >= 2 * engine.workers
        signatures = [row_signature(row, engine.index.object_id) for row in frontier]
        assert len(signatures) == len(set(signatures)), (
            f"{query_name}: chunked merge left duplicate binding signatures"
        )
        for row in frontier:
            for group in row.groups:
                assert is_coalesced(list(group.times.intervals))

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("use_coalesced", [True, False])
    def test_workers_do_not_change_any_output(
        self, contact_graph, workers, use_coalesced
    ):
        sequential = DataflowEngine(contact_graph, use_coalesced=use_coalesced)
        parallel = DataflowEngine(
            contact_graph, workers=workers, use_coalesced=use_coalesced
        )
        for name, query in PAPER_QUERIES.items():
            seq_result = sequential.match_with_stats(query.text)
            par_result = parallel.match_with_stats(query.text)
            assert seq_result.output_size == par_result.output_size, name
            assert seq_result.table.as_set() == par_result.table.as_set(), name
            assert canonical_families(sequential, query.text) == canonical_families(
                parallel, query.text
            ), name

    def test_workers_agree_on_random_graphs(self):
        for seed in range(12):
            graph = random_itpg(seed, num_nodes=14, num_edges=24, num_windows=10)
            query = random_match_query(seed * 31 + 7)
            sequential = DataflowEngine(graph)
            parallel = DataflowEngine(graph, workers=4)
            assert (
                sequential.match(query).as_set() == parallel.match(query).as_set()
            ), f"workers diverged on random seed {seed}"
            assert canonical_families(sequential, query) == canonical_families(
                parallel, query
            ), f"workers family output diverged on random seed {seed}"


class TestWeightedChunks:
    """The degree-weighted partitioner both backends share."""

    def test_covers_all_items_within_bounds(self):
        items = list(range(11))
        chunks = weighted_chunks(items, 4, weight=lambda x: 1 + x)
        assert sorted(x for chunk in chunks for x in chunk) == items
        assert len(chunks) <= 4
        assert all(chunks)

    def test_single_part_is_identity(self):
        items = list(range(5))
        assert weighted_chunks(items, 1, weight=lambda x: x + 1) == [items]

    def test_unit_weights_balance_counts(self):
        chunks = weighted_chunks(list(range(10)), 3)
        assert sorted(len(chunk) for chunk in chunks) == [3, 3, 4]

    def test_hub_heavy_weights_balance_load(self):
        # One hub of weight 100 among 15 unit items: a count-based split
        # into 4 chunks puts the hub plus 3 units in one chunk (load
        # 103 vs 4); LPT isolates the hub and spreads the rest.
        weights = {0: 100}
        items = list(range(16))
        chunks = weighted_chunks(items, 4, weight=lambda x: weights.get(x, 1))
        loads = sorted(
            sum(weights.get(x, 1) for x in chunk) for chunk in chunks
        )
        assert loads == [5, 5, 5, 100]

    def test_deterministic_and_order_preserving(self):
        items = list(range(20))
        first = weighted_chunks(items, 3, weight=lambda x: (x * 7) % 5 + 1)
        second = weighted_chunks(items, 3, weight=lambda x: (x * 7) % 5 + 1)
        assert first == second
        for chunk in first:
            assert chunk == sorted(chunk)


@pytest.fixture
def fresh_pools():
    """Isolate tests that poison the shared pool registry (fault injection)."""
    shutdown_pools()
    yield
    shutdown_pools()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class TestProcessBackend:
    """`repro.parallel`: process partitioning must be invisible too."""

    #: The dataflow configurations of the differential fuzz oracle (its
    #: reference engines provide the ground truth below).
    DATAFLOW_CONFIGS = {
        "coalesced": {},
        "legacy-rows": {"use_coalesced": False},
        "coalesced-noindex": {"use_index": False},
    }

    def test_process_backend_output_identity_all_queries(self, contact_graph):
        sequential = DataflowEngine(contact_graph)
        process = DataflowEngine(contact_graph, workers=2, parallel_backend="process")
        for name, query in PAPER_QUERIES.items():
            seq_result = sequential.match_with_stats(query.text)
            par_result = process.match_with_stats(query.text)
            assert seq_result.output_size == par_result.output_size, name
            assert seq_result.table.as_set() == par_result.table.as_set(), name
            assert canonical_families(sequential, query.text) == canonical_families(
                process, query.text
            ), name

    @pytest.mark.parametrize("config", sorted(DATAFLOW_CONFIGS))
    def test_process_backend_agrees_with_fuzz_oracle_engines(self, config):
        """Every dataflow config × process backend vs the oracle ground truth."""
        kwargs = self.DATAFLOW_CONFIGS[config]
        for seed in (0, 3, 7):
            graph = random_itpg(seed, num_nodes=14, num_edges=24, num_windows=10)
            query = random_match_query(seed * 31 + 7)
            reference = ReferenceEngine(graph).match(query).as_set()
            assert (
                ReferenceEngine(graph, use_intervals=True).match(query).as_set()
                == reference
            )
            sequential = DataflowEngine(graph, **kwargs)
            process = DataflowEngine(
                graph, workers=2, parallel_backend="process", **kwargs
            )
            assert process.match(query).as_set() == reference, (config, seed)
            assert canonical_families(sequential, query) == canonical_families(
                process, query
            ), (config, seed)

    @pytest.mark.parametrize(
        "start_method",
        [
            pytest.param(
                "fork",
                marks=pytest.mark.skipif(
                    not _fork_available(), reason="fork not available"
                ),
            ),
            "spawn",
        ],
    )
    def test_process_backend_start_methods(self, contact_graph, start_method):
        sequential = DataflowEngine(contact_graph)
        process = DataflowEngine(
            contact_graph,
            workers=2,
            parallel_backend="process",
            start_method=start_method,
        )
        for name in ("Q1", "Q5", "Q11"):
            query = PAPER_QUERIES[name].text
            assert (
                sequential.match(query).as_set() == process.match(query).as_set()
            ), (start_method, name)
            assert canonical_families(sequential, query) == canonical_families(
                process, query
            ), (start_method, name)

    def test_plan_payload_is_shared_and_cached(self, contact_graph):
        engine = DataflowEngine(contact_graph, workers=2, parallel_backend="process")
        other = DataflowEngine(contact_graph, workers=2, parallel_backend="process")
        plan = plan_for(engine.graph, True, True)
        assert plan_for(other.graph, True, True) is plan
        payload = plan.payload
        assert plan.payload is payload  # serialized once, then reused
        # Every configuration on the same graph shares the one payload.
        assert plan_for(engine.graph, True, False).payload is payload
        assert plan_for(engine.graph, False, True).payload is payload
        engine.match(PAPER_QUERIES["Q1"].text)
        pool = shared_pool(2)
        assert plan.token in pool._warm and pool._warm[plan.token]

    def test_small_frontier_falls_back_to_sequential(self, contact_graph):
        engine = DataflowEngine(
            contact_graph, workers=64, parallel_backend="process"
        )
        plan = engine.explain(PAPER_QUERIES["Q9"].text)
        assert plan["backend"] == "process"
        assert plan["effective_backend"] == "sequential"
        assert len(plan["chunks"]) == 1

    def test_explain_reports_weighted_chunk_plan(self, contact_graph):
        engine = DataflowEngine(contact_graph, workers=2, parallel_backend="process")
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["effective_backend"] == "process"
        assert plan["output_mode"] == "families"
        assert sum(chunk["seeds"] for chunk in plan["chunks"]) == plan["seed_rows"]
        weights = [chunk["weight"] for chunk in plan["chunks"]]
        assert len(weights) > 1
        # Balance with teeth: no chunk may hold the whole load, and the
        # heaviest chunk can exceed the lightest by at most one seed's
        # weight (the LPT guarantee when no single seed dominates).
        assert max(weights) < sum(weights)
        heaviest_seed = max(
            engine._seed_weight(row)
            for row in engine._initial_frontier(
                engine._compile(compile_match(PAPER_QUERIES["Q1"].text))
            )[0]
        )
        assert max(weights) - min(weights) <= heaviest_seed
        assert all(chunk["seeds"] > 0 for chunk in plan["chunks"])

    def test_workers_zero_means_cpu_count(self, contact_graph):
        engine = DataflowEngine(contact_graph, workers=0)
        assert engine.workers == (os.cpu_count() or 1)

    def test_unknown_backend_rejected(self, contact_graph):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            DataflowEngine(contact_graph, parallel_backend="rayon")

    def test_unknown_start_method_rejected(self, contact_graph):
        with pytest.raises(ValueError, match="unknown start method"):
            DataflowEngine(
                contact_graph, parallel_backend="process", start_method="warp"
            )


class TestDeltaPlanInvalidation:
    """Regression: an in-place delta must rotate the cached execution plan.

    ``plan_for`` memoizes the pickled graph payload and a stable token
    on the graph object, and warm worker processes key their resident
    graphs by that token.  Before the fix, ``apply_delta`` mutated the
    graph without touching either, so every later process-backend query
    was answered from the *pre-delta* graph held by the warm workers —
    batch-new endpoints were simply invisible (or crashed the worker
    with a ``KeyError`` on a new object id).  ``apply_delta`` now drops
    the memoized plans and rotates the token at commit time; these tests
    fail on the pre-fix code.
    """

    QUERY = PAPER_QUERIES["Q5"].text

    def _mutable_contact_graph(self):
        """A private copy of the contact graph (these tests mutate it)."""
        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(
                num_persons=30, num_locations=10, num_rooms=5, num_windows=16, seed=7
            ),
            positivity_rate=0.2,
            seed=7,
        )
        return generate_contact_tracing_graph(config)

    def _divergence_batch(self, graph):
        """A delta adding a new Q5 match: low-risk person meets a new node."""
        from repro.streaming import DeltaBatch

        source = interval = None
        for node in graph.nodes():
            if graph.label(node) != "Person":
                continue
            for entry in graph.property_family(node, "risk"):
                if entry.value == "low" and len(entry.interval) >= 2:
                    source, interval = node, entry.interval
                    break
            if source is not None:
                break
        assert source is not None, "contact graph lost its low-risk persons"
        span = [(interval.start, interval.end)]
        batch = DeltaBatch(sequence=1)
        batch.add_node("zz_new", "Person", span)
        batch.set_property("zz_new", "risk", "high", interval.start, interval.end)
        batch.add_edge("zz_edge", "meets", source, "zz_new", span)
        return batch

    def test_invalidate_plans_rotates_the_token(self):
        from repro.parallel.plan import graph_token, invalidate_plans

        graph = self._mutable_contact_graph()
        token = graph_token(graph)
        plan = plan_for(graph, True, True)
        assert plan.token == token
        assert invalidate_plans(graph) is True
        assert graph_token(graph) != token
        assert plan_for(graph, True, True) is not plan
        # A graph with nothing cached reports no-op.
        assert invalidate_plans(self._mutable_contact_graph()) is False

    def test_process_backend_sees_in_place_delta(self):
        from repro.model.io import from_json_dict, to_json_dict
        from repro.parallel.plan import graph_token
        from repro.streaming import apply_delta

        graph = self._mutable_contact_graph()
        engine = DataflowEngine(graph, workers=2, parallel_backend="process")
        stale = canonical_families(engine, self.QUERY)  # warms plan + workers
        token_before = graph_token(graph)
        batch = self._divergence_batch(graph)
        effects = apply_delta(graph, batch)
        engine.index.apply_delta(effects)
        assert graph_token(graph) != token_before
        # Ground truth: a cold engine over a fresh copy of the mutated graph.
        cold = DataflowEngine(from_json_dict(to_json_dict(graph)))
        fresh = canonical_families(cold, self.QUERY)
        assert fresh != stale, "the delta must change the Q5 answer"
        assert canonical_families(engine, self.QUERY) == fresh
        # The serial view over the maintained shared index agrees too.
        assert canonical_families(DataflowEngine(graph), self.QUERY) == fresh


@pytest.mark.skipif(not _fork_available(), reason="fault injection relies on fork")
class TestProcessBackendFaults:
    """Worker failures must surface, and the next query must recover."""

    def _engine(self, graph):
        return DataflowEngine(
            graph, workers=2, parallel_backend="process", start_method="fork"
        )

    def test_worker_exception_propagates(self, contact_graph, fresh_pools, monkeypatch):
        def boom(*args):
            raise RuntimeError("injected worker failure")

        # ``_execute_chunk`` resolves the runner through a module global,
        # so fork-started workers inherit the patched function.
        monkeypatch.setattr(pool_module, "_chunk_runner", boom)
        engine = self._engine(contact_graph)
        with pytest.raises(RuntimeError, match="injected worker failure"):
            engine.match(PAPER_QUERIES["Q1"].text)

    def test_worker_crash_raises_evaluation_error_and_recovers(
        self, contact_graph, fresh_pools, monkeypatch
    ):
        def crash(*args):
            os._exit(17)

        monkeypatch.setattr(pool_module, "_chunk_runner", crash)
        engine = self._engine(contact_graph)
        with pytest.raises(EvaluationError, match="worker crashed"):
            engine.match(PAPER_QUERIES["Q1"].text)
        # The broken pool was retired from the registry; with the fault
        # removed, the same engine works again on a fresh pool.
        monkeypatch.setattr(pool_module, "_chunk_runner", pool_module._run_chunk)
        shutdown_pools()
        sequential = DataflowEngine(contact_graph)
        assert (
            engine.match(PAPER_QUERIES["Q1"].text).as_set()
            == sequential.match(PAPER_QUERIES["Q1"].text).as_set()
        )

    def test_crash_error_is_a_repro_error(self, contact_graph, fresh_pools, monkeypatch):
        monkeypatch.setattr(
            pool_module, "_chunk_runner", lambda *args: os._exit(3)
        )
        engine = self._engine(contact_graph)
        with pytest.raises(ReproError):
            engine.match(PAPER_QUERIES["Q1"].text)


#: The start-method matrix the crash-recovery tests must survive.
START_METHODS = [
    pytest.param(
        "fork",
        marks=pytest.mark.skipif(not _fork_available(), reason="fork not available"),
    ),
    "spawn",
]


class TestFailpointCrashRecovery:
    """PR 6: a SIGKILLed worker must not change the answer.

    The ``worker.chunk`` / ``worker.install`` failpoints (armed through
    the cross-process registry, so spawn-started workers see them too)
    kill or fault real pool workers mid-query.  With a
    :class:`RetryPolicy` the engine must either recover in place within
    the retry budget or demote the backend — and in every case produce
    output identical to the serial run.
    """

    @pytest.fixture(autouse=True)
    def _clean_failpoints(self, fresh_pools):
        failpoints.disarm_all()
        yield
        failpoints.disarm_all()

    @staticmethod
    def _policy(**overrides):
        defaults = dict(retries=2, base_delay=0.01, max_delay=0.05, seed=11)
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def _resilient_engine(self, graph, start_method, **overrides):
        return DataflowEngine(
            graph,
            workers=2,
            parallel_backend="process",
            start_method=start_method,
            retry=self._policy(**overrides),
        )

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_sigkill_recovers_within_retry_budget(self, contact_graph, start_method):
        query = PAPER_QUERIES["Q1"].text
        serial = DataflowEngine(contact_graph).match(query).as_set()
        engine = self._resilient_engine(contact_graph, start_method)
        failpoints.arm("worker.chunk", "kill", times=1, exit_code=9)
        result = engine.match_with_stats(query)
        assert failpoints.hits("worker.chunk") >= 1, "failpoint never fired"
        assert result.table.as_set() == serial
        report = engine.last_degradation
        assert report is not None
        assert report.final_backend == "process"  # recovered in place
        assert not report.degraded
        assert any(
            record.error_type == "WorkerCrashError" for record in report.failures
        )
        assert result.degradation == report.to_dict()

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_persistent_kills_degrade_with_identical_output(
        self, contact_graph, start_method
    ):
        query = PAPER_QUERIES["Q5"].text
        serial = DataflowEngine(contact_graph).match(query).as_set()
        engine = self._resilient_engine(contact_graph, start_method, retries=1)
        failpoints.arm("worker.chunk", "kill", times=0)  # every worker, forever
        result = engine.match_with_stats(query)
        assert result.table.as_set() == serial
        report = engine.last_degradation
        assert report is not None and report.degraded
        # The thread/serial rungs never enter a worker process, so the
        # armed kill cannot touch them.
        assert report.final_backend in ("thread", "serial")
        assert len(report.failures) == 2  # initial attempt + 1 retry
        assert engine.explain(query)["last_degradation"]["degraded"]

    @pytest.mark.skipif(not _fork_available(), reason="fork keeps this test fast")
    def test_exhausted_budget_without_degradation_raises(self, contact_graph):
        engine = DataflowEngine(
            contact_graph,
            workers=2,
            parallel_backend="process",
            start_method="fork",
            retry=self._policy(retries=1, degrade=False),
        )
        failpoints.arm("worker.chunk", "kill", times=0)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            engine.match(PAPER_QUERIES["Q1"].text)
        attempts = excinfo.value.attempts
        assert len(attempts) == 2
        assert all(record["error_type"] == "WorkerCrashError" for record in attempts)

    @pytest.mark.skipif(not _fork_available(), reason="fork keeps this test fast")
    def test_plan_install_fault_is_retried(self, contact_graph):
        query = PAPER_QUERIES["Q11"].text
        serial = DataflowEngine(contact_graph).match(query).as_set()
        engine = self._resilient_engine(contact_graph, "fork")
        failpoints.arm("worker.install", "raise", times=1, message="install blew up")
        assert engine.match(query).as_set() == serial
        assert failpoints.hits("worker.install") >= 1

    @pytest.mark.skipif(not _fork_available(), reason="fork keeps this test fast")
    def test_without_retry_policy_crash_still_fails_fast(self, contact_graph):
        """``retry=None`` (the default) keeps the PR-4 fail-fast contract."""
        engine = DataflowEngine(
            contact_graph, workers=2, parallel_backend="process", start_method="fork"
        )
        failpoints.arm("worker.chunk", "kill", times=0)
        with pytest.raises(EvaluationError, match="worker crashed"):
            engine.match(PAPER_QUERIES["Q1"].text)
