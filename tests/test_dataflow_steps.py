"""Tests for dataflow chain compilation and interval-based static tests."""

import pytest

from repro.dataflow.steps import (
    AltStep,
    StructStep,
    TemporalStep,
    TestStep,
    chain_has_temporal_step,
    compile_chain,
    condition_times,
)
from repro.errors import UnsupportedFragmentError
from repro.lang import ast, parse_path
from repro.temporal import IntervalSet


class TestChainCompilation:
    def test_single_test(self):
        chain = compile_chain(ast.test(ast.label("Person")))
        assert chain == (TestStep(ast.label("Person")),)

    def test_structural_axes(self):
        assert compile_chain(ast.F) == (StructStep(forward=True),)
        assert compile_chain(ast.B) == (StructStep(forward=False),)

    def test_bare_temporal_axis(self):
        (step,) = compile_chain(ast.N)
        assert step == TemporalStep(forward=True, lower=1, upper=1, require_existence=False)

    def test_temporal_axis_with_existence_merges(self):
        chain = compile_chain(ast.concat(ast.P, ast.test(ast.exists())))
        assert chain == (
            TemporalStep(forward=False, lower=1, upper=1, require_existence=True),
        )

    def test_concat_flattens(self):
        expr = parse_path("FWD/:meets/FWD", implicit_existence=False)
        chain = compile_chain(expr)
        assert [type(s) for s in chain] == [StructStep, TestStep, StructStep]

    def test_temporal_star_from_practical_syntax(self):
        expr = parse_path("NEXT*")
        (step,) = compile_chain(expr)
        assert step == TemporalStep(forward=True, lower=0, upper=None, require_existence=True)

    def test_bounded_temporal_repetition(self):
        expr = parse_path("PREV[0,12]")
        (step,) = compile_chain(expr)
        assert step == TemporalStep(forward=False, lower=0, upper=12, require_existence=True)

    def test_union_becomes_alt_step(self):
        expr = parse_path("FWD/:meets/FWD + BWD/:meets/BWD", implicit_existence=False)
        (step,) = compile_chain(expr)
        assert isinstance(step, AltStep)
        assert len(step.alternatives) == 2

    def test_q12_chain_shape(self):
        expr = parse_path(
            "(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]"
        )
        chain = compile_chain(expr)
        assert isinstance(chain[0], AltStep)
        assert isinstance(chain[-1], TemporalStep)

    def test_structural_repetition_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            compile_chain(ast.star(ast.F))

    def test_mixed_repetition_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            compile_chain(ast.repeat(ast.concat(ast.F, ast.N), 0, 2))

    def test_path_condition_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            compile_chain(ast.test(ast.path_test(ast.F)))

    def test_path_condition_nested_in_boolean_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            compile_chain(ast.test(ast.and_(ast.is_node(), ast.path_test(ast.F))))

    def test_chain_has_temporal_step(self):
        structural = compile_chain(parse_path("FWD/:meets/FWD"))
        temporal = compile_chain(parse_path("FWD/:meets/FWD/NEXT*"))
        assert not chain_has_temporal_step(structural)
        assert chain_has_temporal_step(temporal)

    def test_chain_has_temporal_step_inside_alternative(self):
        expr = parse_path("(FWD + NEXT)/BWD", implicit_existence=False)
        assert chain_has_temporal_step(compile_chain(expr))


class TestConditionTimes:
    def test_label_and_kind(self, figure1):
        domain = IntervalSet((figure1.domain,))
        assert condition_times(figure1, "n1", ast.label("Person")) == domain
        assert condition_times(figure1, "n1", ast.label("Room")).is_empty()
        assert condition_times(figure1, "n1", ast.is_node()) == domain
        assert condition_times(figure1, "e1", ast.is_edge()) == domain

    def test_existence(self, figure1):
        assert condition_times(figure1, "n6", ast.exists()) == IntervalSet([(2, 11)])
        assert condition_times(figure1, "e1", ast.exists()) == IntervalSet([(3, 3), (5, 6)])

    def test_prop_eq(self, figure1):
        assert condition_times(figure1, "n2", ast.prop_eq("risk", "high")) == IntervalSet(
            [(5, 9)]
        )
        assert condition_times(figure1, "n2", ast.prop_eq("risk", "none")).is_empty()

    def test_time_lt(self, figure1):
        assert condition_times(figure1, "n1", ast.time_lt(4)) == IntervalSet([(1, 3)])
        assert condition_times(figure1, "n1", ast.time_lt(0)).is_empty()
        assert condition_times(figure1, "n1", ast.time_lt(99)) == IntervalSet(
            (figure1.domain,)
        )

    def test_boolean_combinations(self, figure1):
        condition = ast.and_(ast.prop_eq("risk", "low"), ast.time_lt(5))
        assert condition_times(figure1, "n2", condition) == IntervalSet([(1, 4)])
        condition = ast.or_(ast.prop_eq("risk", "low"), ast.prop_eq("risk", "high"))
        assert condition_times(figure1, "n2", condition) == IntervalSet([(1, 9)])
        condition = ast.not_(ast.exists())
        assert condition_times(figure1, "n6", condition) == IntervalSet([(1, 1)])

    def test_time_eq_sugar(self, figure1):
        assert condition_times(figure1, "n1", ast.time_eq(7)) == IntervalSet([(7, 7)])

    def test_path_condition_rejected(self, figure1):
        with pytest.raises(UnsupportedFragmentError):
            condition_times(figure1, "n1", ast.path_test(ast.F))

    def test_and_short_circuits_to_empty(self, figure1):
        condition = ast.and_(ast.label("Room"), ast.prop_eq("risk", "low"))
        assert condition_times(figure1, "n1", condition).is_empty()
