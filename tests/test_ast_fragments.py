"""Tests for the NavL[PC,NOI] AST constructors and fragment classification."""

import pytest

from repro.lang import (
    B,
    F,
    Fragment,
    N,
    P,
    and_,
    classify,
    concat,
    exists,
    has_occurrence_indicators,
    has_path_conditions,
    is_edge,
    is_node,
    label,
    not_,
    or_,
    occurrence_indicators_only_on_axes,
    optional,
    plus,
    prop_eq,
    repeat,
    star,
    test,
    time_eq,
    time_lt,
    union,
)
from repro.lang.ast import (
    Axis,
    AndTest,
    Concat,
    NotTest,
    OrTest,
    Repeat,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
    path_test,
)


class TestAxes:
    def test_singletons(self):
        assert F.kind == "F" and B.kind == "B" and N.kind == "N" and P.kind == "P"

    def test_structural_vs_temporal(self):
        assert F.is_structural and B.is_structural
        assert N.is_temporal and P.is_temporal
        assert not F.is_temporal and not N.is_structural

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            Axis("X")

    def test_axis_equality(self):
        assert Axis("F") == F
        assert F != N


class TestConstructors:
    def test_concat_flattens(self):
        expr = concat(F, concat(N, P), B)
        assert isinstance(expr, Concat)
        assert len(expr.parts) == 4

    def test_concat_single_part_passthrough(self):
        assert concat(F) is F

    def test_concat_accepts_bare_tests(self):
        expr = concat(exists(), F)
        assert isinstance(expr.parts[0], TestPath)

    def test_concat_empty_is_true_test(self):
        expr = concat()
        assert isinstance(expr, TestPath) and isinstance(expr.condition, TrueTest)

    def test_union_flattens(self):
        expr = union(F, union(B, N))
        assert isinstance(expr, Union)
        assert len(expr.parts) == 3

    def test_union_single_passthrough(self):
        assert union(F) is F

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            union()

    def test_operators_on_path_expressions(self):
        assert (F / N) == concat(F, N)
        assert (F + B) == union(F, B)

    def test_repeat_bounds(self):
        r = repeat(N, 2, 5)
        assert (r.lower, r.upper) == (2, 5)
        assert star(N) == repeat(N, 0, None)
        assert plus(N) == repeat(N, 1, None)
        assert optional(N) == repeat(N, 0, 1)

    def test_repeat_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            repeat(N, -1, 2)
        with pytest.raises(ValueError):
            repeat(N, 3, 2)

    def test_and_flattens_and_simplifies(self):
        t = and_(is_node(), and_(label("Person"), exists()))
        assert isinstance(t, AndTest) and len(t.parts) == 3
        assert and_(is_node()) == is_node()
        assert isinstance(and_(), TrueTest)

    def test_or_flattens(self):
        t = or_(is_node(), or_(is_edge(), exists()))
        assert isinstance(t, OrTest) and len(t.parts) == 3
        assert or_(is_node()) == is_node()
        with pytest.raises(ValueError):
            or_()

    def test_not_double_negation(self):
        t = not_(not_(exists()))
        assert t == exists()
        assert isinstance(not_(exists()), NotTest)

    def test_test_operators(self):
        t = is_node() & label("Person") | is_edge()
        assert isinstance(t, OrTest)
        assert isinstance(~exists(), NotTest)

    def test_time_eq_expansion(self):
        t = time_eq(5)
        assert isinstance(t, AndTest)
        assert TimeLt(6) in t.parts
        assert NotTest(TimeLt(5)) in t.parts

    def test_prop_eq_and_label(self):
        assert prop_eq("risk", "low").prop == "risk"
        assert label("Person").label == "Person"

    def test_hashable(self):
        expr1 = concat(F, test(label("meets") & exists()), F)
        expr2 = concat(F, test(label("meets") & exists()), F)
        assert expr1 == expr2
        assert hash(expr1) == hash(expr2)
        assert {expr1: 1}[expr2] == 1


class TestFragments:
    def test_no_noi_no_pc(self):
        expr = concat(F, test(label("meets")), F)
        assert not has_occurrence_indicators(expr)
        assert not has_path_conditions(expr)
        assert classify(expr) is Fragment.PC

    def test_noi_on_axis_only(self):
        expr = concat(F, repeat(N, 0, 12))
        assert has_occurrence_indicators(expr)
        assert occurrence_indicators_only_on_axes(expr)
        assert classify(expr) is Fragment.ANOI

    def test_noi_on_compound_body(self):
        expr = repeat(concat(N, test(exists())), 0, None)
        assert not occurrence_indicators_only_on_axes(expr)
        assert classify(expr) is Fragment.NOI

    def test_path_condition_detected(self):
        expr = test(path_test(concat(F, test(exists()))))
        assert has_path_conditions(expr)
        assert classify(expr) is Fragment.PC

    def test_pc_and_noi_full_language(self):
        expr = concat(test(path_test(F)), repeat(concat(N, test(exists())), 0, 3))
        assert classify(expr) is Fragment.FULL

    def test_pc_with_axis_noi(self):
        expr = concat(test(path_test(F)), repeat(N, 0, 3))
        assert classify(expr) is Fragment.PC_ANOI

    def test_path_condition_nested_in_boolean(self):
        expr = test(and_(is_node(), not_(path_test(F))))
        assert has_path_conditions(expr)

    def test_noi_inside_path_condition(self):
        expr = test(path_test(repeat(N, 0, 2)))
        assert has_occurrence_indicators(expr)

    def test_fragment_str(self):
        assert str(Fragment.FULL) == "NavL[PC,NOI]"
        assert str(Fragment.ANOI) == "NavL[ANOI]"

    def test_repeat_node_repr(self):
        assert "[0,_]" in repr(Repeat(N, 0, None))
