"""Cross-checks of the perf layer against the point-based ground truth.

Everything the compiled index and the interval-native relations change is
an implementation detail: on every graph and every expression, the
indexed dataflow engine, the interval bottom-up evaluator and the seed
engines must produce the same answers.
"""

import pytest

from repro.datagen import (
    ContactTracingConfig,
    TrajectoryConfig,
    generate_contact_tracing_graph,
)
from repro.datagen.random_graphs import random_itpg, random_path_expression
from repro.datagen.scale import SCALE_FACTORS
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.eval.bottom_up import BottomUpEvaluator
from repro.perf import IntervalBottomUpEvaluator
from repro.reductions import (
    gsubset_sum_reduction,
    solve_gsubset_sum,
    solve_subset_sum,
    subset_sum_reduction,
)


class TestDataflowIndexedVsLegacy:
    """use_index=True must be an invisible optimization."""

    @pytest.mark.parametrize("name", list(PAPER_QUERIES))
    def test_paper_queries_on_running_example(self, figure1, name):
        text = PAPER_QUERIES[name].text
        indexed = DataflowEngine(figure1, use_index=True).match(text)
        legacy = DataflowEngine(figure1, use_index=False).match(text)
        assert indexed.as_set() == legacy.as_set()

    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (x) ON g",
            "MATCH (x:Person)-[:knows]->(y) ON g",
            "MATCH (x {risk = 'high'})-/NEXT[1,3]/-(y) ON g",
            "MATCH (x)-/FWD/BWD/-(y) ON g",
            "MATCH (x:Person)-/PREV*/-(y:Person) ON g",
        ],
    )
    def test_random_graphs(self, small_random_graphs, query):
        for graph in small_random_graphs:
            indexed = DataflowEngine(graph, use_index=True).match(query)
            legacy = DataflowEngine(graph, use_index=False).match(query)
            reference = ReferenceEngine(graph).match(query)
            assert indexed.as_set() == legacy.as_set() == reference.as_set()

    def test_interval_output_agrees(self, figure1):
        query = PAPER_QUERIES["Q2"].text
        indexed = DataflowEngine(figure1, use_index=True).match_intervals(query)
        legacy = DataflowEngine(figure1, use_index=False).match_intervals(query)
        assert sorted(indexed, key=repr) == sorted(legacy, key=repr)

    def test_workers_with_index(self, figure1):
        query = PAPER_QUERIES["Q5"].text
        serial = DataflowEngine(figure1, workers=1).match(query)
        parallel = DataflowEngine(figure1, workers=4).match(query)
        assert serial.as_set() == parallel.as_set()


class TestTableOneSweepBothFrontiers:
    """Q1–Q12 on Table-I generator graphs, coalesced vs legacy row frontier.

    The Table-II mix above runs on the paper's running example; this
    sweep uses the contact-tracing generator behind the Table-I scale
    factors (at test-sized counts) so the frontier rewrite is
    cross-checked on the same graph family the benchmarks measure.
    """

    @pytest.fixture(scope="class")
    def table1_graphs(self):
        graphs = []
        for scale_name in ("S1", "S2"):
            base = SCALE_FACTORS[scale_name]
            config = ContactTracingConfig(
                trajectory=TrajectoryConfig(
                    num_persons=max(8, base.num_persons // 12),
                    num_locations=max(5, base.num_locations // 12),
                    num_rooms=max(2, base.num_rooms // 6),
                    num_windows=24,
                    seed=13,
                ),
                positivity_rate=0.2,
                seed=13,
            )
            graphs.append((scale_name, generate_contact_tracing_graph(config)))
        return graphs

    @pytest.mark.parametrize("name", list(PAPER_QUERIES))
    def test_paper_query_both_frontier_modes(self, table1_graphs, name):
        text = PAPER_QUERIES[name].text
        for scale_name, graph in table1_graphs:
            coalesced = DataflowEngine(graph, use_coalesced=True)
            legacy = DataflowEngine(graph, use_coalesced=False)
            reference = ReferenceEngine(graph, use_intervals=True)
            a = coalesced.match(text).as_set()
            b = legacy.match(text).as_set()
            c = reference.match(text).as_set()
            assert a == b == c, (
                f"{name} diverged on shrunk Table-I graph {scale_name} "
                f"(coalesced={len(a)}, legacy={len(b)}, reference={len(c)})"
            )

    @pytest.mark.parametrize("name", ["Q3", "Q5", "Q10", "Q11"])
    def test_frontier_modes_agree_with_workers(self, table1_graphs, name):
        text = PAPER_QUERIES[name].text
        _scale, graph = table1_graphs[0]
        serial = DataflowEngine(graph, use_coalesced=True).match(text)
        threaded = DataflowEngine(graph, use_coalesced=True, workers=4).match(text)
        legacy_threaded = DataflowEngine(
            graph, use_coalesced=False, workers=4
        ).match(text)
        assert serial.as_set() == threaded.as_set() == legacy_threaded.as_set()


class TestIntervalBottomUp:
    """The interval evaluator is exact on every fragment, including (?path)."""

    def test_running_example_random_paths(self, figure1):
        point = BottomUpEvaluator(figure1)
        interval = IntervalBottomUpEvaluator(figure1)
        for seed in range(20):
            path = random_path_expression(seed, allow_path_conditions=True)
            assert interval.evaluate_points(path) == point.evaluate(path), path

    def test_random_graphs_random_paths(self):
        for graph_seed in range(4):
            graph = random_itpg(graph_seed)
            point = BottomUpEvaluator(graph)
            interval = IntervalBottomUpEvaluator(graph)
            for seed in range(12):
                path = random_path_expression(
                    seed + 50 * graph_seed, allow_path_conditions=True
                )
                assert interval.evaluate_points(path) == point.evaluate(path), path

    def test_fast_mode_flag_on_bottom_up(self, figure1):
        fast = BottomUpEvaluator(figure1, use_intervals=True)
        slow = BottomUpEvaluator(figure1)
        for seed in range(10):
            path = random_path_expression(seed, allow_path_conditions=True)
            assert fast.evaluate(path) == slow.evaluate(path), path

    def test_fast_mode_flag_on_reference_engine(self, figure1):
        for name in ("Q1", "Q5", "Q6", "Q10"):
            text = PAPER_QUERIES[name].text
            fast = ReferenceEngine(figure1, use_intervals=True).match(text)
            slow = ReferenceEngine(figure1).match(text)
            assert fast.as_set() == slow.as_set()


class TestHardnessGadgets:
    """The interval algebra must stay exact on the adversarial reductions."""

    @pytest.mark.parametrize(
        "numbers,target",
        [
            ([3, 5, 7], 12),
            ([3, 5, 7], 11),
            ([2, 4, 6], 7),
            ([1, 2, 3, 4], 10),
            ([], 0),
        ],
    )
    def test_subset_sum(self, numbers, target):
        instance = subset_sum_reduction(numbers, target)
        evaluator = IntervalBottomUpEvaluator(instance.graph)
        relation = evaluator.evaluate(instance.path)
        expected = solve_subset_sum(numbers, target)
        got = (*instance.source, *instance.target) in relation
        assert got == expected
        # Full-relation agreement with the ground truth, not just the endpoint.
        assert relation.to_temporal_relation() == BottomUpEvaluator(
            instance.graph
        ).evaluate(instance.path)

    @pytest.mark.parametrize(
        "u,w,target",
        [([2, 3], [1], 5), ([2], [3], 4), ([1, 4], [5], 9)],
    )
    def test_generalized_subset_sum(self, u, w, target):
        instance = gsubset_sum_reduction(u, w, target)
        evaluator = IntervalBottomUpEvaluator(instance.graph)
        got = (*instance.source, *instance.target) in evaluator.evaluate(instance.path)
        assert got == solve_gsubset_sum(u, w, target)
