"""Focused tests for MATCH compilation details (segments, edge translation)."""

import pytest

from repro.lang import ast
from repro.lang.parser import EdgePattern, parse_match
from repro.lang.translate import (
    Segment,
    compile_match,
    edge_pattern_test,
    node_pattern_test,
    translate_path,
)
from repro.lang.ast import AndTest, Concat, EdgeTest, ExistsTest, LabelTest, TestPath, Union


class TestEdgePatternTranslation:
    def test_edge_test_components(self):
        pattern = EdgePattern(variable="z", label="meets", condition=ast.prop_eq("loc", "park"))
        condition = edge_pattern_test(pattern)
        assert isinstance(condition, AndTest)
        assert EdgeTest() in condition.parts
        assert LabelTest("meets") in condition.parts
        assert ExistsTest() in condition.parts

    def test_outgoing_edge_without_variable_is_single_concat(self):
        compiled = compile_match("MATCH (x)-[:meets]->(y) ON g")
        connector_segment = compiled.segments[1]
        assert connector_segment.variable is None
        assert isinstance(connector_segment.path, Concat)

    def test_incoming_edge_uses_backward_axes(self):
        compiled = compile_match("MATCH (x)<-[:meets]-(y) ON g")
        path = compiled.segments[1].path
        axes = [part for part in path.parts if part in (ast.F, ast.B)]
        assert axes == [ast.B, ast.B]

    def test_outgoing_edge_uses_forward_axes(self):
        compiled = compile_match("MATCH (x)-[:meets]->(y) ON g")
        path = compiled.segments[1].path
        axes = [part for part in path.parts if part in (ast.F, ast.B)]
        assert axes == [ast.F, ast.F]

    def test_undirected_edge_is_union_of_both_directions(self):
        compiled = compile_match("MATCH (x)-[:meets]-(y) ON g")
        path = compiled.segments[1].path
        assert isinstance(path, Union)
        assert len(path.parts) == 2

    def test_edge_variable_segment_is_the_edge_test(self):
        compiled = compile_match("MATCH (x)-[z:meets]->(y) ON g")
        edge_segment = compiled.segments[2]
        assert edge_segment.variable == "z"
        assert isinstance(edge_segment.path, TestPath)


class TestNodePatternTranslation:
    def test_bare_node_pattern(self):
        query = parse_match("MATCH (x) ON g")
        condition = node_pattern_test(query.elements[0])
        assert isinstance(condition, AndTest)
        assert ExistsTest() in condition.parts

    def test_anonymous_condition_only_pattern(self):
        query = parse_match("MATCH ({test = 'pos'}) ON g")
        condition = node_pattern_test(query.elements[0])
        assert ast.prop_eq("test", "pos") in condition.parts


class TestCompiledMatchStructure:
    def test_segments_are_value_objects(self):
        segment = Segment(ast.F, "x")
        assert segment == Segment(ast.F, "x")
        assert segment != Segment(ast.B, "x")

    def test_full_path_round_trips_through_reference_engine(self, figure1_engine):
        compiled = compile_match(
            "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person) ON contact_tracing"
        )
        endpoints = figure1_engine.evaluate_path(compiled.full_path())
        assert ("n6", 9, "n6", 8) in endpoints

    def test_graph_name_propagates(self):
        assert compile_match("MATCH (x) ON my_graph").graph_name == "my_graph"
        assert compile_match("MATCH (x)").graph_name is None

    def test_translate_path_is_parse_path(self):
        assert translate_path("NEXT[0,3]") == ast.repeat(
            ast.concat(ast.N, ast.exists()), 0, 3
        )
        assert translate_path("NEXT[0,3]", implicit_existence=False) == ast.repeat(ast.N, 0, 3)

    def test_variables_exclude_anonymous_elements(self):
        compiled = compile_match("MATCH (x)-[:meets]->()-[:visits]->(z:Room) ON g")
        assert compiled.variables == ("x", "z")

    def test_segment_count_for_long_chain(self):
        compiled = compile_match(
            "MATCH (a)-[:meets]->(b)-/NEXT*/-(c)-[e:visits]->(d) ON g"
        )
        # a, edge, b, path, c, pre/edge var/post, d
        assert compiled.variables == ("a", "b", "c", "e", "d")
        assert len(compiled.segments) == 1 + 1 + 1 + 1 + 1 + 3 + 1
