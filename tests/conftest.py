"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.datagen.random_graphs import random_itpg
from repro.eval.engine import ReferenceEngine
from repro.model.convert import itpg_to_tpg
from repro.model.examples import contact_tracing_example, tiny_example


@pytest.fixture(scope="session")
def figure1():
    """The Figure-1 contact-tracing ITPG (the paper's running example)."""
    return contact_tracing_example()


@pytest.fixture(scope="session")
def figure1_tpg(figure1):
    """Point-based expansion of the running example."""
    return itpg_to_tpg(figure1)


@pytest.fixture(scope="session")
def figure1_engine(figure1):
    """A reference engine over the running example (session-scoped: caches relations)."""
    return ReferenceEngine(figure1)


@pytest.fixture(scope="session")
def tiny():
    """A three-node ITPG with interrupted existence, for focused unit tests."""
    return tiny_example()


@pytest.fixture()
def small_random_graphs():
    """A handful of deterministic small random ITPGs for cross-checking engines."""
    return [random_itpg(seed) for seed in range(6)]
