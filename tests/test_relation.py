"""Tests for temporal relations (composition, repetition by squaring)."""

import pytest

from repro.eval.relation import TemporalRelation


def rel(*tuples):
    return TemporalRelation(tuples)


@pytest.fixture()
def identity():
    # Identity over a tiny universe of temporal objects: one object, times 0..4.
    return TemporalRelation({("o", t, "o", t) for t in range(5)})


@pytest.fixture()
def step():
    # "Move one time point forward" over the same universe.
    return TemporalRelation({("o", t, "o", t + 1) for t in range(4)})


class TestBasicOperations:
    def test_len_iter_contains(self, step):
        assert len(step) == 4
        assert ("o", 0, "o", 1) in step
        assert ("o", 4, "o", 5) not in step
        assert set(step) == step.tuples

    def test_union_intersect_difference(self, step, identity):
        both = step.union(identity)
        assert len(both) == 9
        assert step.intersect(identity).is_empty()
        assert both.difference(identity) == step

    def test_equality_and_hash(self):
        assert rel(("a", 1, "b", 1)) == rel(("a", 1, "b", 1))
        assert hash(rel(("a", 1, "b", 1))) == hash(rel(("a", 1, "b", 1)))

    def test_source_project(self):
        r = rel(("a", 1, "b", 2), ("a", 1, "c", 3), ("d", 4, "a", 1))
        assert r.source_project() == {("a", 1), ("d", 4)}

    def test_repr(self, step):
        assert "4 tuples" in repr(step)


class TestComposition:
    def test_compose_chains_tuples(self):
        left = rel(("a", 0, "b", 1))
        right = rel(("b", 1, "c", 2), ("b", 9, "x", 9))
        assert left.compose(right) == rel(("a", 0, "c", 2))

    def test_compose_no_match_is_empty(self):
        assert rel(("a", 0, "b", 1)).compose(rel(("c", 1, "d", 2))).is_empty()

    def test_compose_with_identity_is_noop(self, step, identity):
        assert step.compose(identity) == step
        assert identity.compose(step) == step

    def test_compose_is_associative(self, step, identity):
        a = step
        b = step.union(identity)
        c = step.compose(step)
        assert a.compose(b).compose(c) == a.compose(b.compose(c))


class TestRepetition:
    def test_power_zero_is_identity(self, step, identity):
        assert step.power(0, identity) == identity

    def test_power_one_is_self(self, step, identity):
        assert step.power(1, identity) == step

    def test_power_two(self, step, identity):
        expected = TemporalRelation({("o", t, "o", t + 2) for t in range(3)})
        assert step.power(2, identity) == expected

    def test_power_matches_iterated_composition(self, step, identity):
        manual = step
        for _ in range(3):
            manual = manual.compose(step)
        assert step.power(4, identity) == manual

    def test_bounded_repetition_enumerates_range(self, step, identity):
        # steps of length 1..3
        out = step.bounded_repetition(1, 3, identity)
        expected = set()
        for k in (1, 2, 3):
            expected |= {("o", t, "o", t + k) for t in range(5 - k)}
        assert out.tuples == frozenset(expected)

    def test_bounded_repetition_includes_zero(self, step, identity):
        out = step.bounded_repetition(0, 1, identity)
        assert identity.tuples <= out.tuples
        assert step.tuples <= out.tuples

    def test_bounded_repetition_equal_bounds(self, step, identity):
        assert step.bounded_repetition(2, 2, identity) == step.power(2, identity)

    def test_bounded_repetition_invalid_bounds(self, step, identity):
        with pytest.raises(ValueError):
            step.bounded_repetition(3, 1, identity)

    def test_unbounded_repetition_is_reflexive_transitive_closure(self, step, identity):
        closure = step.unbounded_repetition(0, identity)
        expected = {("o", t, "o", t2) for t in range(5) for t2 in range(t, 5)}
        assert closure.tuples == frozenset(expected)

    def test_unbounded_repetition_with_lower_bound(self, step, identity):
        closure = step.unbounded_repetition(2, identity)
        expected = {("o", t, "o", t2) for t in range(5) for t2 in range(t + 2, 5)}
        assert closure.tuples == frozenset(expected)

    def test_unbounded_matches_large_bounded(self, step, identity):
        assert step.unbounded_repetition(0, identity) == step.bounded_repetition(
            0, 25, identity
        )
