"""Tests for the dataflow frontier structures and the paper-query registry."""

import pytest

from repro.dataflow.frontier import Group, Row, TemporalLink, initial_row
from repro.dataflow.queries import PAPER_QUERIES, get_query, query_names
from repro.lang import parse_match
from repro.temporal import IntervalSet


class TestGroupAndRow:
    def test_initial_row(self):
        row = initial_row("n1", IntervalSet([(0, 9)]))
        assert row.last.current == "n1"
        assert row.last.bindings == ()
        assert row.links == ()
        assert row.is_alive()

    def test_bind_adds_binding(self):
        group = Group((), "n1", IntervalSet([(0, 3)]))
        bound = group.bind("x")
        assert bound.bindings == (("x", "n1"),)
        assert bound.current == "n1"

    def test_with_current_and_times(self):
        group = Group((("x", "n1"),), "n1", IntervalSet([(0, 3)]))
        moved = group.with_current("e1", IntervalSet([(1, 2)]))
        assert moved.current == "e1" and moved.bindings == group.bindings
        trimmed = group.with_times(IntervalSet.empty())
        assert trimmed.times.is_empty()

    def test_row_replace_and_append(self):
        row = initial_row("n1", IntervalSet([(0, 9)]))
        row = row.replace_last(row.last.bind("x"))
        link = TemporalLink("n1", forward=True, lower=0, upper=None, contiguous=True)
        row = row.append_group(Group((), "n1", IntervalSet([(2, 5)])), link)
        assert len(row.groups) == 2 and len(row.links) == 1
        assert row.variable_positions() == {"x": (0, "n1")}

    def test_dead_row(self):
        row = initial_row("n1", IntervalSet.empty())
        assert not row.is_alive()


class TestTemporalLink:
    def test_forward_bounds(self, figure1):
        link = TemporalLink("n6", forward=True, lower=1, upper=3, contiguous=False)
        assert link.admits(figure1, 5, 6)
        assert link.admits(figure1, 5, 8)
        assert not link.admits(figure1, 5, 5)
        assert not link.admits(figure1, 5, 9)

    def test_backward_bounds(self, figure1):
        link = TemporalLink("n6", forward=False, lower=0, upper=2, contiguous=False)
        assert link.admits(figure1, 8, 8)
        assert link.admits(figure1, 8, 6)
        assert not link.admits(figure1, 8, 5)
        assert not link.admits(figure1, 8, 9)

    def test_contiguity_requires_same_existence_run(self, figure1):
        # n6 exists during [2, 9] and [10, 11]... actually they coalesce to [2, 11];
        # use n2 (exists [1, 9]) and check a target outside the run.
        link = TemporalLink("n2", forward=True, lower=0, upper=None, contiguous=True)
        assert link.admits(figure1, 5, 9)
        assert not link.admits(figure1, 5, 10)

    def test_unbounded_upper(self, figure1):
        link = TemporalLink("n1", forward=True, lower=2, upper=None, contiguous=False)
        assert link.admits(figure1, 1, 11)
        assert not link.admits(figure1, 1, 2)

    def test_enumerate_times_respects_links(self, figure1):
        first = Group((("x", "n6"),), "n6", IntervalSet([(7, 9)]))
        second = Group((("y", "n6"),), "n6", IntervalSet([(8, 10)]))
        link = TemporalLink("n6", forward=True, lower=1, upper=2, contiguous=True)
        row = Row((first, second), (link,))
        assignments = set(row.enumerate_times(figure1))
        assert (7, 8) in assignments and (7, 9) in assignments
        assert (8, 9) in assignments and (9, 10) in assignments
        assert (9, 9) not in assignments  # delta 0 < lower
        assert (7, 10) not in assignments  # delta 3 > upper


class TestPaperQueryRegistry:
    def test_twelve_queries_in_order(self):
        assert query_names() == [f"Q{i}" for i in range(1, 13)]

    def test_all_queries_parse(self):
        for query in PAPER_QUERIES.values():
            parsed = parse_match(query.text)
            assert parsed.graph_name == "contact_tracing"

    def test_temporal_navigation_flags(self):
        assert not PAPER_QUERIES["Q5"].uses_temporal_navigation
        assert PAPER_QUERIES["Q6"].uses_temporal_navigation
        assert PAPER_QUERIES["Q9"].uses_positivity
        assert not PAPER_QUERIES["Q2"].uses_positivity

    def test_with_bound_rewrites_indicator(self):
        q11 = get_query("Q11", temporal_bound=24)
        assert "[0,24]" in q11.text and "[0,12]" not in q11.text
        assert q11.temporal_bound == 24

    def test_with_bound_on_unbounded_query_rejected(self):
        with pytest.raises(ValueError):
            get_query("Q9", temporal_bound=5)

    def test_get_query_passthrough(self):
        assert get_query("Q3") is PAPER_QUERIES["Q3"]

    def test_bound_rewrite_changes_results(self, figure1):
        from repro.dataflow import DataflowEngine

        engine = DataflowEngine(figure1)
        narrow = engine.match(get_query("Q11", temporal_bound=1).text)
        wide = engine.match(get_query("Q11", temporal_bound=12).text)
        assert narrow.as_set() <= wide.as_set()
        assert len(narrow) < len(wide)
