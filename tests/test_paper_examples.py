"""Golden tests: the binding tables published in Section IV of the paper.

Every expected table below is copied verbatim from the paper (queries Q1
through Q12 over the Figure-1 contact-tracing graph).  Both evaluation
engines must reproduce them exactly.
"""

import pytest

from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine


def rows(*entries):
    """Helper: build the expected row set from (obj, time) pairs per variable."""
    return frozenset(tuple(entry) for entry in entries)


@pytest.fixture(scope="module")
def engines():
    from repro.model.examples import contact_tracing_example

    graph = contact_tracing_example()
    return ReferenceEngine(graph), DataflowEngine(graph)


def evaluate_both(engines, name):
    reference, dataflow = engines
    text = PAPER_QUERIES[name].text
    ref_table = reference.match(text)
    df_table = dataflow.match(text)
    assert ref_table.as_set() == df_table.as_set(), f"engines disagree on {name}"
    return ref_table


class TestQ1ToQ4:
    def test_q1_people(self, engines):
        table = evaluate_both(engines, "Q1")
        assert table.variables == ("x",)
        # One row per (person, time point of existence): 9+9+7+10+8 = 43.
        assert len(table) == 43
        bound_objects = {obj for ((obj, _t),) in table.rows}
        assert bound_objects == {"n1", "n2", "n3", "n6", "n7"}

    def test_q1_time_ranges(self, engines):
        table = evaluate_both(engines, "Q1")
        times = {obj: set() for obj in ("n1", "n2", "n3", "n6", "n7")}
        for ((obj, t),) in table.rows:
            times[obj].add(t)
        assert times["n1"] == set(range(1, 10))
        assert times["n6"] == set(range(2, 12))

    def test_q2_low_risk(self, engines):
        table = evaluate_both(engines, "Q2")
        expected = (
            {(("n1", t),) for t in range(1, 10)}
            | {(("n2", t),) for t in range(1, 5)}
            | {(("n6", t),) for t in range(2, 12)}
        )
        assert table.as_set() == frozenset(expected)

    def test_q3_low_risk_at_time_1(self, engines):
        table = evaluate_both(engines, "Q3")
        assert table.as_set() == rows((("n1", 1),), (("n2", 1),))

    def test_q4_low_risk_before_10(self, engines):
        table = evaluate_both(engines, "Q4")
        expected = (
            {(("n1", t),) for t in range(1, 10)}
            | {(("n2", t),) for t in range(1, 5)}
            | {(("n6", t),) for t in range(2, 10)}
        )
        assert table.as_set() == frozenset(expected)


class TestQ5:
    def test_q5_meetings(self, engines):
        table = evaluate_both(engines, "Q5")
        assert table.variables == ("x", "z", "y")
        assert table.as_set() == rows(
            (("n1", 5), ("e1", 5), ("n2", 5)),
            (("n1", 6), ("e1", 6), ("n2", 6)),
            (("n2", 1), ("e2", 1), ("n3", 1)),
            (("n2", 2), ("e2", 2), ("n3", 2)),
        )

    def test_q5_structural_times_align(self, engines):
        table = evaluate_both(engines, "Q5")
        for (x, xt), (z, zt), (y, yt) in table.rows:
            assert xt == zt == yt


class TestQ6ToQ8:
    def test_q6_previous_time_point(self, engines):
        table = evaluate_both(engines, "Q6")
        assert table.variables == ("x", "y")
        assert table.as_set() == rows((("n6", 9), ("n6", 8)))

    def test_q7_room_before_positive_test(self, engines):
        table = evaluate_both(engines, "Q7")
        assert table.variables == ("x", "z")
        assert table.as_set() == rows((("n6", 9), ("n4", 8)))

    def test_q8_rooms_at_or_before_positive_test(self, engines):
        table = evaluate_both(engines, "Q8")
        assert table.as_set() == rows(
            (("n6", 9), ("n4", 8)),
            (("n6", 9), ("n4", 7)),
            (("n6", 9), ("n5", 6)),
            (("n6", 9), ("n5", 5)),
        )


class TestQ9ToQ12:
    def test_q9_met_someone_later_positive(self, engines):
        table = evaluate_both(engines, "Q9")
        assert table.variables == ("x",)
        assert table.as_set() == rows((("n3", 4),), (("n7", 5),), (("n7", 6),))

    def test_q10_meeting_after_positive_test(self, engines):
        # Nobody in Figure 1 meets a person who already tested positive,
        # so the instantiation of Q10 on the running example is empty.
        table = evaluate_both(engines, "Q10")
        assert len(table) == 0

    def test_q11_shared_room_before_positive_test(self, engines):
        table = evaluate_both(engines, "Q11")
        assert table.as_set() == rows((("n3", 7),), (("n7", 7),), (("n7", 8),))

    def test_q12_union_of_close_contacts(self, engines):
        table = evaluate_both(engines, "Q12")
        assert table.as_set() == rows(
            (("n3", 4),),
            (("n3", 7),),
            (("n7", 5),),
            (("n7", 6),),
            (("n7", 7),),
            (("n7", 8),),
        )

    def test_q12_contains_q9_and_q11(self, engines):
        q9 = evaluate_both(engines, "Q9").as_set()
        q11 = evaluate_both(engines, "Q11").as_set()
        q12 = evaluate_both(engines, "Q12").as_set()
        assert q9 | q11 == q12


class TestUnnumberedExamplesFromSectionIV:
    """MATCH clauses shown in the running text but not numbered."""

    def test_prev_then_visits_with_intermediate_variable(self, engines):
        reference, dataflow = engines
        text = (
            "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person)-[:visits]->(z:Room) "
            "ON contact_tracing"
        )
        expected = rows((("n6", 9), ("n6", 8), ("n4", 8)))
        assert reference.match(text).as_set() == expected
        assert dataflow.match(text).as_set() == expected

    def test_prev_then_visits_without_intermediate_variable(self, engines):
        reference, dataflow = engines
        text = (
            "MATCH (x:Person {test = 'pos'})-/PREV/-()-[:visits]->(z:Room) "
            "ON contact_tracing"
        )
        expected = rows((("n6", 9), ("n4", 8)))
        assert reference.match(text).as_set() == expected
        assert dataflow.match(text).as_set() == expected

    def test_q11_extension_with_meets_branch(self, engines):
        reference, dataflow = engines
        text = (
            "MATCH (x:Person {risk = 'high'})-"
            "/(FWD/:meets/FWD/NEXT[0,12]) + "
            "(FWD/:visits/FWD/:Room/BWD/:visits/BWD/NEXT[0,12])/-"
            "({test = 'pos'}) ON contact_tracing"
        )
        expected = rows(
            (("n3", 4),), (("n3", 7),), (("n7", 5),), (("n7", 6),), (("n7", 7),), (("n7", 8),)
        )
        assert reference.match(text).as_set() == expected
        assert dataflow.match(text).as_set() == expected

    def test_q7_equivalence_with_edge_pattern_form(self, engines):
        reference, _dataflow = engines
        verbose = reference.match(
            "MATCH (x:Person {test = 'pos'})-/PREV/FWD/:visits/FWD/-(z:Room) "
            "ON contact_tracing"
        )
        sugar = reference.match(
            "MATCH (x:Person {test = 'pos'})-/PREV/-()-[:visits]->(z:Room) "
            "ON contact_tracing"
        )
        assert verbose.as_set() == sugar.as_set()


class TestTableIStatisticsOfRunningExample:
    def test_temporal_object_counts(self, figure1):
        from repro.model import graph_statistics

        stats = graph_statistics(figure1)
        assert stats.num_nodes == 7 and stats.num_edges == 10
