"""Tests for the dataflow engine: correctness, stats, coalesced output, parallelism."""

import pytest

from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import EvaluationError, UnsupportedFragmentError
from repro.eval import ReferenceEngine
from repro.temporal import IntervalSet


class TestAgainstReferenceEngine:
    """The dataflow engine must agree with the reference engine everywhere it applies."""

    @pytest.mark.parametrize("name", list(PAPER_QUERIES))
    def test_paper_queries_on_running_example(self, figure1, name):
        reference = ReferenceEngine(figure1).match(PAPER_QUERIES[name].text)
        dataflow = DataflowEngine(figure1).match(PAPER_QUERIES[name].text)
        assert reference.as_set() == dataflow.as_set()

    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (x:Person)-[:knows]->(y:Person) ON g",
            "MATCH (x:Person)<-[e:knows]-(y:Person) ON g",
            "MATCH (x)-[:knows]-(y) ON g",
            "MATCH (x:Person)-/NEXT*/-(y:Person) ON g",
            "MATCH (x:Person)-/PREV[1,3]/-(y) ON g",
            "MATCH (x:Person {name = 'a'})-/FWD/:knows/FWD/NEXT*/-(y) ON g",
            "MATCH (x)-/FWD/FWD/BWD/BWD/-(y) ON g",
            "MATCH (x {time < '5'})-/NEXT/NEXT/-(y) ON g",
        ],
    )
    def test_assorted_queries_on_tiny_graph(self, tiny, query):
        reference = ReferenceEngine(tiny).match(query)
        dataflow = DataflowEngine(tiny).match(query)
        assert reference.as_set() == dataflow.as_set()

    def test_random_graphs_agree(self, small_random_graphs):
        queries = [
            "MATCH (x)-[:knows]->(y) ON g",
            "MATCH (x:Person)-/NEXT[0,2]/-(y) ON g",
            "MATCH (x)-/FWD/:visits/FWD/PREV*/-(y) ON g",
        ]
        for graph in small_random_graphs:
            reference = ReferenceEngine(graph)
            dataflow = DataflowEngine(graph)
            for query in queries:
                assert reference.match(query).as_set() == dataflow.match(query).as_set()


class TestStatsAndOutput:
    def test_match_with_stats_fields(self, figure1):
        result = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES["Q8"].text)
        assert result.output_size == len(result.table) == 4
        assert result.total_seconds >= result.interval_seconds >= 0.0
        assert result.frontier_rows >= 1

    def test_as_table_row_keys(self, figure1):
        result = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES["Q1"].text)
        row = result.as_table_row()
        assert set(row) == {"interval-based time (s)", "total time (s)", "output size"}

    def test_interval_only_queries_have_equal_times(self, figure1):
        # For Q1-Q5 the output can stay coalesced: Step 3 only expands the rows.
        result = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES["Q3"].text)
        assert result.output_size == 2

    def test_match_intervals_coalesced_output(self, figure1):
        engine = DataflowEngine(figure1)
        rows = engine.match_intervals("MATCH (x:Person {risk = 'high'}) ON g")
        by_object = {bindings[0][1]: times for bindings, times in rows}
        assert by_object[("n3")] == IntervalSet([(1, 7)])
        assert by_object[("n7")] == IntervalSet([(1, 8)])
        assert by_object[("n2")] == IntervalSet([(5, 9)])

    def test_match_intervals_rejects_temporal_queries(self, figure1):
        # Q6 binds x before and y after the temporal step: their binding
        # times are linked, not shared, so no coalesced output exists.
        engine = DataflowEngine(figure1)
        with pytest.raises(EvaluationError):
            engine.match_intervals(PAPER_QUERIES["Q6"].text)

    def test_match_intervals_covers_single_group_temporal_queries(self, figure1):
        # Q11 navigates through time but binds only x (before the
        # navigation), so its output is a coalesced family per binding —
        # the primary output path, from which match() derives the table.
        engine = DataflowEngine(figure1)
        families = engine.match_intervals(PAPER_QUERIES["Q11"].text)
        expanded = {
            (bindings[0][1], t)
            for bindings, times in families
            for t in times.points()
        }
        pointwise = {
            (obj, t) for ((obj, t),) in engine.match(PAPER_QUERIES["Q11"].text).rows
        }
        assert expanded == pointwise
        assert len(families) == len({bindings for bindings, _ in families})

    def test_legacy_frontier_mode_still_restricts_match_intervals(self, figure1):
        engine = DataflowEngine(figure1, use_coalesced=False)
        with pytest.raises(EvaluationError):
            engine.match_intervals(PAPER_QUERIES["Q11"].text)

    def test_rows_merged_stat(self, figure1):
        coalesced = DataflowEngine(figure1).match_with_stats(PAPER_QUERIES["Q11"].text)
        legacy = DataflowEngine(figure1, use_coalesced=False).match_with_stats(
            PAPER_QUERIES["Q11"].text
        )
        assert legacy.rows_merged == 0
        assert coalesced.frontier_rows <= legacy.frontier_rows
        assert coalesced.table.as_set() == legacy.table.as_set()

    def test_match_intervals_expansion_matches_pointwise_output(self, figure1):
        engine = DataflowEngine(figure1)
        query = PAPER_QUERIES["Q2"].text
        coalesced = engine.match_intervals(query)
        expanded = {
            (bindings[0][1], t) for bindings, times in coalesced for t in times.points()
        }
        pointwise = {(obj, t) for ((obj, t),) in engine.match(query).rows}
        assert expanded == pointwise


class TestUnsupportedFragment:
    def test_structural_star_rejected(self, figure1):
        engine = DataflowEngine(figure1)
        with pytest.raises(UnsupportedFragmentError):
            engine.match("MATCH (x)-/(FWD/:meets/FWD)*/-(y) ON g")

    def test_reference_engine_still_handles_it(self, figure1):
        # The reference engine covers the full language, so the fallback exists.
        table = ReferenceEngine(figure1).match(
            "MATCH (x:Person {name = 'Ann'})-/(FWD/:meets/FWD)[0,2]/-(y:Person) ON g"
        )
        assert len(table) > 0


class TestParallelism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_do_not_change_results(self, figure1, workers):
        engine = DataflowEngine(figure1, workers=workers)
        single = DataflowEngine(figure1, workers=1)
        for name in ("Q5", "Q9", "Q11"):
            assert engine.match(PAPER_QUERIES[name].text).as_set() == single.match(
                PAPER_QUERIES[name].text
            ).as_set()

    def test_workers_property(self, figure1):
        assert DataflowEngine(figure1, workers=3).workers == 3
        assert DataflowEngine(figure1, workers=0).workers == 1

    def test_accepts_tpg_input(self, figure1_tpg):
        engine = DataflowEngine(figure1_tpg)
        assert len(engine.match(PAPER_QUERIES["Q3"].text)) == 2


class TestGeneratedGraphAgreement:
    def test_small_generated_graph_matches_reference(self):
        from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph

        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(num_persons=12, num_locations=8, num_rooms=3, seed=3),
            positivity_rate=0.2,
            seed=5,
        )
        graph = generate_contact_tracing_graph(config)
        reference = ReferenceEngine(graph)
        dataflow = DataflowEngine(graph)
        for name in ("Q2", "Q5", "Q6", "Q8", "Q9", "Q11"):
            text = PAPER_QUERIES[name].text
            assert reference.match(text).as_set() == dataflow.match(text).as_set(), name
