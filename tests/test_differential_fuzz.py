"""Differential fuzzing: every engine must agree on randomized inputs.

The coalescing frontier rewrote the hottest correctness-critical loop of
the repository, so this suite cross-checks all evaluation engines on
randomized graphs and queries:

* **MATCH level** — :func:`repro.datagen.random_graphs.random_itpg`
  graphs and :func:`~repro.datagen.random_graphs.random_match_query`
  queries (restricted to the dataflow fragment) evaluated by the
  dataflow engine in coalesced, legacy-row and unindexed modes, and by
  the reference engine in point and interval bottom-up modes.
* **Path level** — random NavL[PC,NOI] expressions (including path
  conditions) evaluated by the point-based bottom-up algorithm, its
  ``use_intervals`` fast mode and the raw interval evaluator.

Every failure message contains the seeds needed to reproduce the case in
isolation (`run_match_case(seed)` / the named generator calls), so a
fuzz counterexample can be replayed without re-running the sweep.  The
sweep sizes (≥200 MATCH cases plus the path-level cases) keep the whole
module in tier-1 time budgets; CI additionally runs a dedicated
fixed-seed matrix (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.random_graphs import (
    random_itpg,
    random_match_query,
    random_path_expression,
)
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.eval.bottom_up import BottomUpEvaluator
from repro.errors import EvaluationError
from repro.perf import IntervalBottomUpEvaluator

#: MATCH-level sweep: ``BATCHES × BATCH_SIZE`` generated cases.
BATCH_SIZE = 25
BATCHES = 9  # 225 cases ≥ the 200 required by the suite's charter
#: CI shifts the whole seed window per matrix entry; 0 keeps local runs
#: deterministic and identical to the committed baseline.
SEED_OFFSET = int(os.environ.get("REPRO_FUZZ_SEED_OFFSET", "0"))


def run_match_case(seed: int) -> None:
    """One differential MATCH case; raises AssertionError on divergence.

    Reproduce a failure with::

        graph = random_itpg(<seed>)
        query = random_match_query(<seed> * 31 + 7)
    """
    graph = random_itpg(seed)
    query = random_match_query(seed * 31 + 7)
    engines = {
        "dataflow-coalesced": DataflowEngine(graph),
        "dataflow-legacy-rows": DataflowEngine(graph, use_coalesced=False),
        "dataflow-coalesced-noindex": DataflowEngine(graph, use_index=False),
        "reference-point": ReferenceEngine(graph),
        "reference-intervals": ReferenceEngine(graph, use_intervals=True),
    }
    results = {name: engine.match(query).as_set() for name, engine in engines.items()}
    reference = results["reference-point"]
    for name, rows in results.items():
        assert rows == reference, (
            f"{name} diverged from reference-point on fuzz seed {seed}: "
            f"sizes {({n: len(r) for n, r in results.items()})}; "
            f"reproduce with random_itpg({seed}) and "
            f"random_match_query({seed * 31 + 7}); "
            f"only-in-{name}={sorted(rows - reference, key=repr)[:5]}, "
            f"missing={sorted(reference - rows, key=repr)[:5]}"
        )

    # The coalesced interval output, where defined, must expand to the
    # point table (and where undefined, raising is the contract).
    coalesced = engines["dataflow-coalesced"]
    try:
        families = coalesced.match_intervals(query)
    except EvaluationError:
        return
    variables = coalesced.match(query).variables
    # Rebuild rows in variable order; all bindings share the matching time.
    expanded = {
        tuple((dict(bindings)[v], t) for v in variables)
        for bindings, times in families
        for t in times.points()
    }
    assert expanded == reference, (
        f"match_intervals expansion diverged on fuzz seed {seed}: "
        f"reproduce with random_itpg({seed}) and random_match_query({seed * 31 + 7})"
    )


class TestMatchLevelDifferential:
    """All five engine configurations agree on random MATCH queries."""

    @pytest.mark.parametrize("batch", range(BATCHES))
    def test_random_graphs_random_queries(self, batch):
        for offset in range(BATCH_SIZE):
            run_match_case(SEED_OFFSET + batch * BATCH_SIZE + offset)

    def test_paper_queries_on_random_contact_graphs(self):
        from repro.datagen import (
            ContactTracingConfig,
            TrajectoryConfig,
            generate_contact_tracing_graph,
        )

        for seed in (1, 2):
            config = ContactTracingConfig(
                trajectory=TrajectoryConfig(
                    num_persons=10, num_locations=6, num_rooms=3, seed=seed
                ),
                positivity_rate=0.25,
                seed=seed,
            )
            graph = generate_contact_tracing_graph(config)
            coalesced = DataflowEngine(graph)
            legacy = DataflowEngine(graph, use_coalesced=False)
            reference = ReferenceEngine(graph)
            for name, query in PAPER_QUERIES.items():
                a = coalesced.match(query.text).as_set()
                b = legacy.match(query.text).as_set()
                c = reference.match(query.text).as_set()
                assert a == b == c, (
                    f"{name} diverged on contact-tracing fuzz seed {seed} "
                    f"(coalesced={len(a)}, legacy={len(b)}, reference={len(c)})"
                )


class TestRegressionCounterexamples:
    """Minimized divergences found by fuzzing and review, pinned forever."""

    def test_multi_move_exists_merge_crosses_gaps(self):
        # Fuzz seed 112: P[0,_]/∃ tests existence only at the end, so
        # navigation may cross existence gaps (the seed engine wrongly
        # required every intermediate point to exist).
        run_match_case(112)

    def test_zero_move_exists_merge_still_tests_existence(self):
        # Review counterexample: in N · N[0,1]/∃ · N the trailing ∃ also
        # applies to the zero-move branch, so a non-existing anchor must
        # not survive (merging ∃ into a lower=0 step would admit it).
        from repro.lang import ast
        from repro.lang.parser import MatchQuery, NodePattern, PathPattern
        from repro.model.itpg import IntervalTPG
        from repro.temporal.interval import Interval
        from repro.temporal.intervalset import IntervalSet

        graph = IntervalTPG(Interval(0, 6))
        graph.add_node("a", "Person", IntervalSet([(2, 3), (5, 5)]))
        graph.validate()
        path = ast.concat(
            ast.N, ast.repeat(ast.N, 0, 1), ast.test(ast.exists()), ast.N
        )
        query = MatchQuery(
            elements=(NodePattern(variable="x"), NodePattern(variable="y")),
            connectors=(PathPattern(path=path, source_text="<review-repro>"),),
            graph_name="g",
            text="<review-repro>",
        )
        reference = ReferenceEngine(graph).match(query).as_set()
        for engine in (
            DataflowEngine(graph),
            DataflowEngine(graph, use_coalesced=False),
        ):
            assert engine.match(query).as_set() == reference


class TestPathLevelDifferential:
    """Bottom-up point mode, interval mode and the raw interval evaluator agree."""

    @pytest.mark.parametrize("graph_seed", range(5))
    def test_random_paths_all_bottom_up_modes(self, graph_seed):
        graph = random_itpg(graph_seed)
        point = BottomUpEvaluator(graph)
        fast = BottomUpEvaluator(graph, use_intervals=True)
        interval = IntervalBottomUpEvaluator(graph)
        for offset in range(12):
            seed = 1000 + graph_seed * 100 + offset
            path = random_path_expression(seed, allow_path_conditions=True)
            expected = point.evaluate(path)
            assert fast.evaluate(path) == expected, (
                f"use_intervals mode diverged: random_itpg({graph_seed}), "
                f"random_path_expression({seed}, allow_path_conditions=True)"
            )
            assert interval.evaluate_points(path) == expected, (
                f"interval evaluator diverged: random_itpg({graph_seed}), "
                f"random_path_expression({seed}, allow_path_conditions=True)"
            )


try:  # pragma: no cover - exercised only where hypothesis is installed
    from hypothesis import given, settings, strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAS_HYPOTHESIS = False


if HAS_HYPOTHESIS:

    class TestHypothesisDifferential:
        """Property-based wrapper: any seed pair must agree (shrinks to one case)."""

        @settings(max_examples=25, deadline=None, derandomize=True)
        @given(seed=st.integers(min_value=0, max_value=50_000))
        def test_any_seed_agrees(self, seed):
            run_match_case(seed)
