"""Differential fuzzing: every engine must agree on randomized inputs.

The coalescing frontier rewrote the hottest correctness-critical loop of
the repository, so this suite cross-checks all evaluation engines on
randomized graphs and queries:

* **MATCH level** — :func:`repro.datagen.random_graphs.random_itpg`
  graphs and :func:`~repro.datagen.random_graphs.random_match_query`
  queries (restricted to the dataflow fragment) evaluated by the
  dataflow engine in coalesced, legacy-row and unindexed modes, and by
  the reference engine in point and interval bottom-up modes.
* **Interval-vs-point output oracle** — for *every* engine
  configuration that defines ``match_intervals`` on the case, the
  coalesced families must (a) be canonical — one entry per distinct
  binding tuple, each with nonempty coalesced times — and (b) expand
  exactly to the point rows of the ground-truth ``match`` table.  This
  is the Table-II-style cross-validation of the interval-native output
  path: both engines now produce output *from* interval families, so
  the expansion equality is what guards the representation change.
* **Path level** — random NavL[PC,NOI] expressions (including path
  conditions) evaluated by the point-based bottom-up algorithm, its
  ``use_intervals`` fast mode and the raw interval evaluator.

Every failure message contains the seeds needed to reproduce the case in
isolation (`run_match_case(seed)` / the named generator calls), so a
fuzz counterexample can be replayed without re-running the sweep.  The
sweep sizes (≥200 MATCH cases plus the path-level cases) keep the whole
module in tier-1 time budgets; CI additionally runs a dedicated
fixed-seed matrix (see ``.github/workflows/ci.yml``) that re-runs all of
the above — including the interval-vs-point oracle — over three more
disjoint seed windows.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.random_graphs import (
    random_itpg,
    random_match_query,
    random_path_expression,
)
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.eval.bindings import expand_match_families
from repro.eval.bottom_up import BottomUpEvaluator
from repro.errors import EvaluationError
from repro.perf import IntervalBottomUpEvaluator

#: MATCH-level sweep: ``BATCHES × BATCH_SIZE`` generated cases.
BATCH_SIZE = 25
BATCHES = 9  # 225 cases ≥ the 200 required by the suite's charter
#: CI shifts the whole seed window per matrix entry; 0 keeps local runs
#: deterministic and identical to the committed baseline.
SEED_OFFSET = int(os.environ.get("REPRO_FUZZ_SEED_OFFSET", "0"))


def check_interval_point_oracle(
    name: str,
    engine,
    query,
    variables: tuple[str, ...],
    reference_rows: frozenset,
    context: str,
) -> bool:
    """Interval-vs-point output equality for one engine configuration.

    Engines whose fragment excludes coalesced output for this query
    raise :class:`EvaluationError` — that is part of the contract and
    ends the check with ``False`` (the dataflow engine decides
    statically from the chain shape, the reference engine exactly per
    output row, so their definedness may legitimately differ on queries
    whose temporal moves cancel out; callers assert the containment
    relations between configurations so a spurious blanket rejection
    cannot silently disable the oracle).  Where defined, the families
    must be canonical and expand exactly to the ground-truth point
    rows; returns ``True``.
    """
    try:
        families = engine.match_intervals(query)
    except EvaluationError:
        return False
    seen_bindings = set()
    for bindings, times in families:
        assert bindings not in seen_bindings, (
            f"{name} produced duplicate family bindings {bindings!r} ({context})"
        )
        seen_bindings.add(bindings)
        assert not times.is_empty(), (
            f"{name} produced an empty-times family for {bindings!r} ({context})"
        )
    expanded = expand_match_families(families, variables)
    assert expanded == reference_rows, (
        f"{name} match_intervals expansion diverged from the point table "
        f"({context}): expanded {len(expanded)} rows vs {len(reference_rows)}; "
        f"extra={sorted(expanded - reference_rows, key=repr)[:5]}, "
        f"missing={sorted(reference_rows - expanded, key=repr)[:5]}"
    )
    return True


def run_match_case(seed: int) -> None:
    """One differential MATCH case; raises AssertionError on divergence.

    Reproduce a failure with::

        graph = random_itpg(<seed>)
        query = random_match_query(<seed> * 31 + 7)
    """
    graph = random_itpg(seed)
    query = random_match_query(seed * 31 + 7)
    engines = {
        "dataflow-coalesced": DataflowEngine(graph),
        "dataflow-legacy-rows": DataflowEngine(graph, use_coalesced=False),
        "dataflow-coalesced-noindex": DataflowEngine(graph, use_index=False),
        "dataflow-columnar": DataflowEngine(graph, kernel="columnar"),
        "reference-point": ReferenceEngine(graph),
        "reference-intervals": ReferenceEngine(graph, use_intervals=True),
    }
    tables = {name: engine.match(query) for name, engine in engines.items()}
    results = {name: table.as_set() for name, table in tables.items()}
    reference = results["reference-point"]
    for name, rows in results.items():
        assert rows == reference, (
            f"{name} diverged from reference-point on fuzz seed {seed}: "
            f"sizes {({n: len(r) for n, r in results.items()})}; "
            f"reproduce with random_itpg({seed}) and "
            f"random_match_query({seed * 31 + 7}); "
            f"only-in-{name}={sorted(rows - reference, key=repr)[:5]}, "
            f"missing={sorted(reference - rows, key=repr)[:5]}"
        )

    # Interval-vs-point output oracle: every engine configuration that
    # defines coalesced output on this case must produce canonical
    # families expanding exactly to the ground-truth point table.
    variables = tables["reference-point"].variables
    context = (
        f"fuzz seed {seed}: reproduce with random_itpg({seed}) and "
        f"random_match_query({seed * 31 + 7})"
    )
    defined = {
        name: check_interval_point_oracle(
            name, engine, query, variables, reference, context
        )
        for name, engine in engines.items()
    }
    # Definedness containment: a blanket spurious rejection would
    # otherwise disable the oracle silently.  The reference engines'
    # exact per-row check accepts everything the dataflow engine's
    # static chain-shape check accepts; the legacy mode's
    # no-temporal-step check is the strictest; index on/off must agree
    # (same chain shape).
    assert defined["dataflow-coalesced"] == defined["dataflow-coalesced-noindex"], (
        f"index on/off disagree on match_intervals definedness ({context})"
    )
    assert defined["dataflow-columnar"] == defined["dataflow-coalesced"], (
        f"columnar kernel disagrees on match_intervals definedness ({context})"
    )
    if defined["dataflow-coalesced"]:
        assert defined["reference-point"] and defined["reference-intervals"], (
            f"reference engines rejected coalesced output the dataflow "
            f"engine defines ({context})"
        )
    if defined["dataflow-legacy-rows"]:
        assert defined["dataflow-coalesced"], (
            f"coalesced engine rejected coalesced output the legacy "
            f"mode defines ({context})"
        )


class TestMatchLevelDifferential:
    """All engine configurations (columnar included) agree on random MATCH queries."""

    @pytest.mark.parametrize("batch", range(BATCHES))
    def test_random_graphs_random_queries(self, batch):
        for offset in range(BATCH_SIZE):
            run_match_case(SEED_OFFSET + batch * BATCH_SIZE + offset)

    def test_paper_queries_on_random_contact_graphs(self):
        from repro.datagen import (
            ContactTracingConfig,
            TrajectoryConfig,
            generate_contact_tracing_graph,
        )

        for seed in (1, 2):
            config = ContactTracingConfig(
                trajectory=TrajectoryConfig(
                    num_persons=10, num_locations=6, num_rooms=3, seed=seed
                ),
                positivity_rate=0.25,
                seed=seed,
            )
            graph = generate_contact_tracing_graph(config)
            engines = {
                "coalesced": DataflowEngine(graph),
                "legacy": DataflowEngine(graph, use_coalesced=False),
                "columnar": DataflowEngine(graph, kernel="columnar"),
                "reference": ReferenceEngine(graph),
                "reference-intervals": ReferenceEngine(graph, use_intervals=True),
            }
            for name, query in PAPER_QUERIES.items():
                tables = {
                    ename: engine.match(query.text)
                    for ename, engine in engines.items()
                }
                reference_rows = tables["reference"].as_set()
                sizes = {ename: len(t) for ename, t in tables.items()}
                for ename, table in tables.items():
                    assert table.as_set() == reference_rows, (
                        f"{name} diverged on contact-tracing fuzz seed {seed} "
                        f"({sizes})"
                    )
                defined = {
                    ename: check_interval_point_oracle(
                        f"{ename}",
                        engine,
                        query.text,
                        tables["reference"].variables,
                        reference_rows,
                        f"{name} on contact-tracing fuzz seed {seed}",
                    )
                    for ename, engine in engines.items()
                }
                # Known single-temporal-group queries must keep their
                # coalesced output defined, so the oracle above cannot
                # be silently disabled by a spurious blanket rejection.
                if name not in ("Q6", "Q7", "Q8"):
                    assert defined["coalesced"], (
                        f"{name} lost coalesced-output definedness"
                    )
                    assert defined["reference"] and defined["reference-intervals"]


class TestRegressionCounterexamples:
    """Minimized divergences found by fuzzing and review, pinned forever."""

    def test_multi_move_exists_merge_crosses_gaps(self):
        # Fuzz seed 112: P[0,_]/∃ tests existence only at the end, so
        # navigation may cross existence gaps (the seed engine wrongly
        # required every intermediate point to exist).
        run_match_case(112)

    def test_zero_move_exists_merge_still_tests_existence(self):
        # Review counterexample: in N · N[0,1]/∃ · N the trailing ∃ also
        # applies to the zero-move branch, so a non-existing anchor must
        # not survive (merging ∃ into a lower=0 step would admit it).
        from repro.lang import ast
        from repro.lang.parser import MatchQuery, NodePattern, PathPattern
        from repro.model.itpg import IntervalTPG
        from repro.temporal.interval import Interval
        from repro.temporal.intervalset import IntervalSet

        graph = IntervalTPG(Interval(0, 6))
        graph.add_node("a", "Person", IntervalSet([(2, 3), (5, 5)]))
        graph.validate()
        path = ast.concat(
            ast.N, ast.repeat(ast.N, 0, 1), ast.test(ast.exists()), ast.N
        )
        query = MatchQuery(
            elements=(NodePattern(variable="x"), NodePattern(variable="y")),
            connectors=(PathPattern(path=path, source_text="<review-repro>"),),
            graph_name="g",
            text="<review-repro>",
        )
        reference = ReferenceEngine(graph).match(query).as_set()
        for engine in (
            DataflowEngine(graph),
            DataflowEngine(graph, use_coalesced=False),
        ):
            assert engine.match(query).as_set() == reference

    def test_legacy_match_intervals_is_canonical(self):
        # Hardened seam (PR 3): the legacy row frontier reaches the same
        # binding through one row per traversal path; its interval
        # output used to emit one (duplicated) family per row.  Now all
        # engines produce one coalesced family per binding tuple, which
        # is the invariant the interval-vs-point oracle asserts.
        from repro.model.itpg import IntervalTPG
        from repro.temporal.interval import Interval
        from repro.temporal.intervalset import IntervalSet

        graph = IntervalTPG(Interval(0, 4))
        graph.add_node("a", "Person", IntervalSet([(0, 4)]))
        graph.add_node("b", "Person", IntervalSet([(0, 4)]))
        # Two parallel edges: the legacy frontier reaches b twice.
        graph.add_edge("e1", "meets", "a", "b", IntervalSet([(0, 1)]))
        graph.add_edge("e2", "meets", "a", "b", IntervalSet([(3, 4)]))
        graph.validate()
        query = "MATCH (x:Person)-[:meets]->(y:Person) ON g"
        for engine in (
            DataflowEngine(graph),
            DataflowEngine(graph, use_coalesced=False),
        ):
            families = engine.match_intervals(query)
            bindings = [b for b, _times in families]
            assert len(bindings) == len(set(bindings))
            times = dict(zip(bindings, (t for _b, t in families)))
            key = (("x", "a"), ("y", "b"))
            assert times[key] == IntervalSet([(0, 1), (3, 4)])

    def test_reference_coalesces_cancelling_temporal_moves(self):
        # Definedness seam (PR 3): the reference engine decides
        # coalescibility exactly — N·P between two bindings nets to a
        # shared binding time, so its interval output is defined and
        # must expand to the match table; the dataflow engine rejects
        # the same query statically from its chain shape (two temporal
        # steps).  Both behaviours are contractual.
        from repro.lang import ast
        from repro.lang.parser import MatchQuery, NodePattern, PathPattern

        graph = random_itpg(3)
        path = ast.concat(ast.N, ast.P)
        query = MatchQuery(
            elements=(NodePattern(variable="x"), NodePattern(variable="y")),
            connectors=(PathPattern(path=path, source_text="<n-p>"),),
            graph_name="g",
            text="<n-p>",
        )
        reference = ReferenceEngine(graph)
        table = reference.match(query)
        for engine in (reference, ReferenceEngine(graph, use_intervals=True)):
            check_interval_point_oracle(
                "reference",
                engine,
                query,
                table.variables,
                table.as_set(),
                "cancelling N·P moves",
            )
            assert engine.match_intervals(query)  # defined and nonempty
        with pytest.raises(EvaluationError):
            DataflowEngine(graph).match_intervals(query)


class TestPathLevelDifferential:
    """Bottom-up point mode, interval mode and the raw interval evaluator agree."""

    @pytest.mark.parametrize("graph_seed", range(5))
    def test_random_paths_all_bottom_up_modes(self, graph_seed):
        graph = random_itpg(graph_seed)
        point = BottomUpEvaluator(graph)
        fast = BottomUpEvaluator(graph, use_intervals=True)
        interval = IntervalBottomUpEvaluator(graph)
        for offset in range(12):
            seed = 1000 + graph_seed * 100 + offset
            path = random_path_expression(seed, allow_path_conditions=True)
            expected = point.evaluate(path)
            assert fast.evaluate(path) == expected, (
                f"use_intervals mode diverged: random_itpg({graph_seed}), "
                f"random_path_expression({seed}, allow_path_conditions=True)"
            )
            assert interval.evaluate_points(path) == expected, (
                f"interval evaluator diverged: random_itpg({graph_seed}), "
                f"random_path_expression({seed}, allow_path_conditions=True)"
            )


try:  # pragma: no cover - exercised only where hypothesis is installed
    from hypothesis import given, settings, strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAS_HYPOTHESIS = False


if HAS_HYPOTHESIS:

    class TestHypothesisDifferential:
        """Property-based wrapper: any seed pair must agree (shrinks to one case)."""

        @settings(max_examples=25, deadline=None, derandomize=True)
        @given(seed=st.integers(min_value=0, max_value=50_000))
        def test_any_seed_agrees(self, seed):
            run_match_case(seed)
