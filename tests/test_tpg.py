"""Unit tests for the point-based temporal property graph model."""

import pytest

from repro.errors import GraphIntegrityError, UnknownObjectError
from repro.model import TemporalPropertyGraph
from repro.temporal import Interval, IntervalSet


@pytest.fixture()
def graph():
    g = TemporalPropertyGraph(Interval(0, 9))
    g.add_node("a", "Person")
    g.add_node("b", "Person")
    g.add_node("r", "Room")
    g.add_edge("ab", "knows", "a", "b")
    g.set_existence("a", range(0, 10))
    g.set_existence("b", [0, 1, 2, 5, 6])
    g.set_existence("r", [3, 4, 5])
    g.set_existence("ab", [1, 2, 5])
    g.set_property("a", "name", "alice", range(0, 10))
    g.set_property("b", "risk", "low", [0, 1, 2])
    g.set_property("b", "risk", "high", [5, 6])
    g.set_property("ab", "loc", "cafe", [1, 2])
    return g


class TestDomain:
    def test_domain(self, graph):
        assert graph.domain == Interval(0, 9)

    def test_time_points(self, graph):
        assert list(graph.time_points()) == list(range(10))

    def test_domain_from_tuple(self):
        g = TemporalPropertyGraph((2, 5))
        assert g.domain == Interval(2, 5)


class TestConstructionErrors:
    def test_duplicate_node_id(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.add_node("a", "Person")

    def test_duplicate_id_across_kinds(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.add_node("ab", "Person")
        with pytest.raises(GraphIntegrityError):
            graph.add_edge("a", "knows", "a", "b")

    def test_edge_with_unknown_endpoint(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.add_edge("xz", "knows", "a", "nope")

    def test_existence_outside_domain(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.set_existence("a", [42])

    def test_property_outside_domain(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.set_property("a", "name", "x", [99])

    def test_property_without_existence(self, graph):
        with pytest.raises(GraphIntegrityError):
            graph.set_property("r", "num", 1, [0])

    def test_unknown_object_errors(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.exists("ghost", 0)
        with pytest.raises(UnknownObjectError):
            graph.label("ghost")
        with pytest.raises(UnknownObjectError):
            graph.endpoints("ghost")
        with pytest.raises(UnknownObjectError):
            graph.property_value("ghost", "p", 0)


class TestAccessors:
    def test_nodes_and_edges(self, graph):
        assert set(graph.nodes()) == {"a", "b", "r"}
        assert set(graph.edges()) == {"ab"}
        assert set(graph.objects()) == {"a", "b", "r", "ab"}

    def test_is_node_is_edge(self, graph):
        assert graph.is_node("a") and not graph.is_edge("a")
        assert graph.is_edge("ab") and not graph.is_node("ab")

    def test_has_object(self, graph):
        assert graph.has_object("a") and graph.has_object("ab")
        assert not graph.has_object("ghost")

    def test_labels(self, graph):
        assert graph.label("a") == "Person"
        assert graph.label("r") == "Room"
        assert graph.label("ab") == "knows"

    def test_endpoints(self, graph):
        assert graph.endpoints("ab") == ("a", "b")
        assert graph.source("ab") == "a"
        assert graph.target("ab") == "b"

    def test_existence(self, graph):
        assert graph.exists("a", 9)
        assert graph.exists("b", 5)
        assert not graph.exists("b", 3)
        assert not graph.exists("ab", 0)

    def test_existence_points(self, graph):
        assert graph.existence_points("b") == frozenset({0, 1, 2, 5, 6})

    def test_existence_intervals_are_coalesced(self, graph):
        assert graph.existence_intervals("b") == IntervalSet([(0, 2), (5, 6)])

    def test_property_value(self, graph):
        assert graph.property_value("b", "risk", 1) == "low"
        assert graph.property_value("b", "risk", 6) == "high"
        assert graph.property_value("b", "risk", 3) is None
        assert graph.property_value("b", "unknown", 1) is None

    def test_property_names(self, graph):
        assert graph.property_names("b") == frozenset({"risk"})
        assert graph.property_names("r") == frozenset()

    def test_property_assignments(self, graph):
        assert graph.property_assignments("ab", "loc") == {1: "cafe", 2: "cafe"}

    def test_adjacency(self, graph):
        assert graph.out_edges("a") == frozenset({"ab"})
        assert graph.in_edges("b") == frozenset({"ab"})
        assert graph.out_edges("b") == frozenset()

    def test_adjacency_unknown_node(self, graph):
        with pytest.raises(UnknownObjectError):
            graph.out_edges("ghost")


class TestCounting:
    def test_counts(self, graph):
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 1
        assert graph.num_temporal_objects() == 10 * 4

    def test_existing_temporal_counts(self, graph):
        assert graph.num_existing_temporal_nodes() == 10 + 5 + 3
        assert graph.num_existing_temporal_edges() == 3

    def test_repr(self, graph):
        assert "nodes=3" in repr(graph)


class TestEquality:
    def test_equal_graphs(self):
        def build():
            g = TemporalPropertyGraph((0, 2))
            g.add_node("n", "L")
            g.set_existence("n", [0, 1])
            g.set_property("n", "p", "v", [1])
            return g

        assert build() == build()

    def test_different_property_breaks_equality(self):
        g1 = TemporalPropertyGraph((0, 2))
        g1.add_node("n", "L")
        g1.set_existence("n", [0])
        g2 = TemporalPropertyGraph((0, 2))
        g2.add_node("n", "L")
        g2.set_existence("n", [1])
        assert g1 != g2
