"""Unit tests for closed integer intervals and Allen's relations."""

import pytest

from repro.errors import InvalidIntervalError
from repro.temporal import Interval


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(2, 5)
        assert iv.start == 2
        assert iv.end == 5

    def test_singleton_interval(self):
        assert len(Interval(3, 3)) == 1

    def test_invalid_order_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1.5, 3)  # type: ignore[arg-type]

    def test_point_constructor(self):
        assert Interval.point(7) == Interval(7, 7)

    def test_from_points(self):
        assert Interval.from_points([4, 2, 9]) == Interval(2, 9)

    def test_from_points_empty_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval.from_points([])

    def test_equality_and_hash(self):
        assert Interval(1, 3) == Interval(1, 3)
        assert hash(Interval(1, 3)) == hash(Interval(1, 3))
        assert Interval(1, 3) != Interval(1, 4)

    def test_ordering(self):
        assert Interval(1, 3) < Interval(2, 2)
        assert sorted([Interval(5, 6), Interval(1, 9)])[0] == Interval(1, 9)

    def test_str(self):
        assert str(Interval(1, 4)) == "[1, 4]"


class TestMembershipAndIteration:
    def test_len_counts_points(self):
        assert len(Interval(3, 7)) == 5

    def test_contains(self):
        iv = Interval(2, 4)
        assert 2 in iv and 3 in iv and 4 in iv
        assert 1 not in iv and 5 not in iv

    def test_iteration(self):
        assert list(Interval(2, 5)) == [2, 3, 4, 5]

    def test_points_is_range(self):
        assert Interval(0, 3).points() == range(0, 4)


class TestAllenRelations:
    def test_during(self):
        assert Interval(2, 3).during(Interval(1, 5))
        assert Interval(1, 5).during(Interval(1, 5))
        assert not Interval(0, 3).during(Interval(1, 5))

    def test_contains_interval(self):
        assert Interval(1, 5).contains_interval(Interval(2, 3))

    def test_meets(self):
        assert Interval(1, 2).meets(Interval(3, 4))
        assert not Interval(1, 2).meets(Interval(4, 5))
        assert not Interval(1, 3).meets(Interval(3, 4))

    def test_before(self):
        assert Interval(1, 2).before(Interval(4, 5))
        assert not Interval(1, 2).before(Interval(3, 5))

    def test_overlaps(self):
        assert Interval(1, 4).overlaps(Interval(4, 6))
        assert Interval(1, 4).overlaps(Interval(0, 9))
        assert not Interval(1, 4).overlaps(Interval(5, 6))

    def test_adjacent_or_overlapping(self):
        assert Interval(1, 2).adjacent_or_overlapping(Interval(3, 4))
        assert Interval(3, 4).adjacent_or_overlapping(Interval(1, 2))
        assert not Interval(1, 2).adjacent_or_overlapping(Interval(4, 5))


class TestSetOperations:
    def test_intersect_overlap(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_disjoint_is_none(self):
        assert Interval(1, 2).intersect(Interval(4, 5)) is None

    def test_intersect_is_commutative(self):
        a, b = Interval(2, 8), Interval(5, 11)
        assert a.intersect(b) == b.intersect(a)

    def test_union_of_overlapping(self):
        assert Interval(1, 4).union(Interval(3, 8)) == Interval(1, 8)

    def test_union_of_adjacent(self):
        assert Interval(1, 2).union(Interval(3, 4)) == Interval(1, 4)

    def test_union_of_disjoint_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1, 2).union(Interval(5, 6))

    def test_hull_covers_gap(self):
        assert Interval(1, 2).hull(Interval(6, 7)) == Interval(1, 7)

    def test_difference_no_overlap(self):
        assert Interval(1, 3).difference(Interval(5, 6)) == [Interval(1, 3)]

    def test_difference_middle_cut(self):
        assert Interval(1, 9).difference(Interval(4, 5)) == [Interval(1, 3), Interval(6, 9)]

    def test_difference_full_cover(self):
        assert Interval(3, 4).difference(Interval(1, 9)) == []

    def test_difference_left_trim(self):
        assert Interval(1, 5).difference(Interval(0, 2)) == [Interval(3, 5)]

    def test_difference_right_trim(self):
        assert Interval(1, 5).difference(Interval(4, 9)) == [Interval(1, 3)]


class TestArithmetic:
    def test_shift_forward(self):
        assert Interval(1, 3).shift(4) == Interval(5, 7)

    def test_shift_backward(self):
        assert Interval(5, 7).shift(-2) == Interval(3, 5)

    def test_expand(self):
        assert Interval(4, 5).expand(2, 3) == Interval(2, 8)

    def test_expand_negative_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(4, 5).expand(-1, 0)

    def test_clamp_within(self):
        assert Interval(2, 9).clamp(Interval(0, 5)) == Interval(2, 5)

    def test_clamp_outside_is_none(self):
        assert Interval(8, 9).clamp(Interval(0, 5)) is None
