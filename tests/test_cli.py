"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "out.json"])
        assert args.persons == 200 and args.output == "out.json"

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "Q1"])
        assert args.engine == "dataflow" and args.graph is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.backend == "thread" and args.max_concurrency == 4

    def test_negative_deadline_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["query", "Q1", "--deadline", "-1"])
        assert exit_info.value.code == 2
        assert "must be positive" in capsys.readouterr().err

    def test_zero_deadline_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["query", "Q1", "--deadline", "0"])
        assert exit_info.value.code == 2
        assert "must be positive" in capsys.readouterr().err

    def test_negative_retries_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["query", "Q1", "--retries", "-2"])
        assert exit_info.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_negative_workers_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["query", "Q1", "--workers", "-1"])
        assert exit_info.value.code == 2

    def test_snapshot_every_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["query", "Q1", "--snapshot-every", "0"])
        assert exit_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_numeric_deadline_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "Q1", "--deadline", "soon"])
        assert "not a number" in capsys.readouterr().err


class TestFlagContradictions:
    """Contradictory flag combinations fail fast with actionable errors."""

    def test_serial_backend_rejects_multiple_workers(self, capsys):
        assert main(["query", "Q1", "--backend", "serial", "--workers", "4"]) == 2
        err = capsys.readouterr().err
        assert "serial" in err and "--workers 4" in err

    def test_serial_backend_with_one_worker_is_fine(self, capsys):
        assert main(["query", "Q1", "--backend", "serial"]) == 0
        assert "n1" in capsys.readouterr().out

    def test_snapshot_every_requires_snapshot(self, capsys):
        assert main(["query", "Q1", "--stream", "x.jsonl", "--snapshot-every", "3"]) == 2
        assert "--snapshot-every requires --snapshot" in capsys.readouterr().err

    def test_serve_serial_backend_rejects_multiple_workers(self, capsys):
        assert main(["serve", "--backend", "serial", "--workers", "4"]) == 2
        assert "contradicts" in capsys.readouterr().err

    def test_serve_snapshot_every_requires_snapshot(self, capsys):
        assert main(["serve", "--snapshot-every", "3"]) == 2
        assert "--snapshot-every requires --snapshot" in capsys.readouterr().err


class TestExampleAndStats:
    def test_example_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "fig1.json"
        assert main(["example", "-o", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["domain"] == [1, 11]
        assert capsys.readouterr().out.startswith("wrote")

    def test_stats_of_example(self, tmp_path, capsys):
        path = tmp_path / "fig1.json"
        main(["example", "-o", str(path)])
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# nodes" in out and "7" in out

    def test_stats_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/graph.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_generate_writes_valid_graph(self, tmp_path, capsys):
        path = tmp_path / "campus.json"
        code = main(
            [
                "generate",
                "--persons", "20",
                "--locations", "10",
                "--rooms", "3",
                "--windows", "16",
                "--positivity", "0.2",
                "-o", str(path),
            ]
        )
        assert code == 0
        from repro.model.io import load_json

        graph = load_json(path)
        graph.validate()
        assert "wrote" in capsys.readouterr().out


class TestQuery:
    def test_query_paper_name_on_builtin_example(self, capsys):
        assert main(["query", "Q9"]) == 0
        out = capsys.readouterr().out
        assert "n3" in out and "n7" in out

    def test_query_full_match_text(self, capsys):
        assert main(["query", "MATCH (x:Room) ON contact_tracing", "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "n4" in out and "n5" in out

    def test_query_with_stats_flag(self, capsys):
        assert main(["query", "Q3", "--stats"]) == 0
        assert "output size 2" in capsys.readouterr().out

    def test_query_reference_engine(self, capsys):
        assert main(["query", "Q6", "--engine", "reference", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "output size 1" in out and "n6" in out

    def test_query_on_generated_graph(self, tmp_path, capsys):
        path = tmp_path / "campus.json"
        main(
            ["generate", "--persons", "20", "--locations", "10", "--rooms", "3",
             "--windows", "16", "--positivity", "0.2", "-o", str(path)]
        )
        capsys.readouterr()
        assert main(["query", "Q2", "--graph", str(path), "--limit", "5"]) == 0
        assert "x_time" in capsys.readouterr().out

    def test_query_process_backend_matches_thread(self, tmp_path, capsys):
        path = tmp_path / "campus.json"
        main(
            ["generate", "--persons", "20", "--locations", "10", "--rooms", "3",
             "--windows", "16", "--positivity", "0.2", "-o", str(path)]
        )
        capsys.readouterr()
        assert main(["query", "Q1", "--graph", str(path), "--limit", "0"]) == 0
        thread_out = capsys.readouterr().out
        assert (
            main(
                ["query", "Q1", "--graph", str(path), "--limit", "0",
                 "--workers", "2", "--backend", "process"]
            )
            == 0
        )
        assert capsys.readouterr().out == thread_out

    def test_query_explain_prints_plan(self, capsys):
        assert main(["query", "Q1", "--explain", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "# plan: backend=thread" in out
        assert "chunk" in out and "weight" in out

    def test_query_workers_zero_resolves_to_cpu_count(self, capsys):
        assert main(["query", "Q1", "--workers", "0", "--stats"]) == 0
        assert "output size" in capsys.readouterr().out

    def test_query_backend_rejects_unknown_value(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "Q1", "--backend", "rayon"])
        assert "invalid choice" in capsys.readouterr().err

    def test_query_backend_requires_dataflow_engine(self, capsys):
        assert (
            main(["query", "Q6", "--engine", "reference", "--backend", "process"])
            == 2
        )
        assert "dataflow engine only" in capsys.readouterr().err

    def test_query_syntax_error_is_reported(self, capsys):
        assert main(["query", "MATCH (x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_query_unsupported_fragment_reports_error(self, capsys):
        assert main(["query", "MATCH (x)-/(FWD/FWD)*/-(y) ON g"]) == 2
        assert "error" in capsys.readouterr().err
