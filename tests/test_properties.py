"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.datagen.random_graphs import random_itpg, random_path_expression
from repro.dataflow import DataflowEngine
from repro.eval import ReferenceEngine
from repro.eval.bottom_up import BottomUpEvaluator
from repro.lang import ast
from repro.model.convert import itpg_to_tpg, tpg_to_itpg
from repro.temporal import Interval, IntervalSet, ValuedIntervalSet
from repro.temporal.coalesce import is_coalesced


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
intervals = st.builds(
    lambda a, length: Interval(a, a + length),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=15),
)

interval_sets = st.lists(intervals, max_size=6).map(IntervalSet)

point_sets = st.sets(st.integers(min_value=0, max_value=60), max_size=25)


# --------------------------------------------------------------------- #
# Interval algebra
# --------------------------------------------------------------------- #
class TestIntervalProperties:
    @given(intervals, intervals)
    def test_intersection_symmetric_and_contained(self, a, b):
        overlap = a.intersect(b)
        assert overlap == b.intersect(a)
        if overlap is not None:
            assert overlap.during(a) and overlap.during(b)

    @given(intervals, intervals)
    def test_overlap_consistency(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(intervals, intervals)
    def test_difference_partition(self, a, b):
        pieces = a.difference(b)
        covered = set()
        for piece in pieces:
            covered |= set(piece.points())
        assert covered == set(a.points()) - set(b.points())

    @given(intervals, st.integers(min_value=-20, max_value=20))
    def test_shift_preserves_length(self, a, delta):
        assert len(a.shift(delta)) == len(a)


class TestIntervalSetProperties:
    @given(point_sets)
    def test_from_points_round_trip(self, points):
        family = IntervalSet.from_points(points)
        assert set(family.points()) == points
        assert is_coalesced(list(family.intervals))

    @given(interval_sets, interval_sets)
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert set(union.points()) == set(a.points()) | set(b.points())
        assert is_coalesced(list(union.intervals))

    @given(interval_sets, interval_sets)
    def test_intersection_is_pointwise(self, a, b):
        assert set(a.intersect(b).points()) == set(a.points()) & set(b.points())

    @given(interval_sets, interval_sets)
    def test_difference_is_pointwise(self, a, b):
        assert set(a.difference(b).points()) == set(a.points()) - set(b.points())

    @given(interval_sets)
    def test_complement_partitions_domain(self, family):
        domain = Interval(0, 70)
        complement = family.complement(domain)
        assert set(complement.points()) | set(family.intersect_interval(domain).points()) == set(
            domain.points()
        )
        assert not complement.overlaps(family)

    @given(interval_sets, st.integers(min_value=0, max_value=70))
    def test_contains_point_matches_points(self, family, t):
        assert family.contains_point(t) == (t in set(family.points()))

    @given(point_sets, point_sets)
    def test_subset_relation(self, a, b):
        fa, fb = IntervalSet.from_points(a), IntervalSet.from_points(b)
        assert fa.is_subset_of(fb) == (a <= b)


class TestDilateDifferenceComplementPointModel:
    """PR-3 satellite sweep: brute-force point-model oracle on the
    operations behind temporal navigation (``dilate``) and negation
    (``difference`` / ``complement``), with the domain-edge and
    coalescing cases the bug hunts flagged as risky."""

    @given(interval_sets, st.integers(0, 5), st.integers(0, 5))
    def test_dilate_is_pointwise_window(self, family, before, after):
        dilated = family.dilate(before, after)
        want = {
            q
            for p in family.points()
            for q in range(p - before, p + after + 1)
        }
        assert set(dilated.points()) == want
        assert is_coalesced(list(dilated.intervals))

    @given(
        interval_sets,
        st.integers(0, 5),
        st.integers(0, 5),
        st.integers(0, 40),
        st.integers(0, 30),
    )
    def test_dilate_clips_at_domain_edges(self, family, before, after, start, length):
        domain = Interval(start, start + length)
        dilated = family.dilate(before, after, domain)
        want = {
            q
            for p in family.points()
            for q in range(p - before, p + after + 1)
            if domain.start <= q <= domain.end
        }
        assert set(dilated.points()) == want
        assert is_coalesced(list(dilated.intervals))

    @given(interval_sets)
    def test_dilate_zero_is_identity(self, family):
        assert family.dilate(0, 0) == family

    @given(interval_sets, st.integers(0, 5))
    def test_dilate_coalesces_bridged_gaps(self, family, radius):
        # Growing by the gap width must merge neighbouring intervals —
        # the FC invariant the frontier relies on downstream.
        dilated = family.dilate(radius, radius)
        intervals = dilated.intervals
        for left, right in zip(intervals, intervals[1:]):
            assert right.start - left.end > 1

    @given(interval_sets, interval_sets)
    def test_difference_is_pointwise_and_coalesced(self, a, b):
        result = a.difference(b)
        assert set(result.points()) == set(a.points()) - set(b.points())
        assert is_coalesced(list(result.intervals))

    @given(interval_sets, interval_sets)
    def test_difference_then_union_restores(self, a, b):
        # (a \ b) ∪ (a ∩ b) == a — exercises the clip-and-recoalesce
        # path on adjacent remainders.
        assert a.difference(b).union(a.intersect(b)) == a

    @given(interval_sets)
    def test_complement_is_involutive_on_domain(self, family):
        domain = Interval(0, 70)
        restricted = family.intersect_interval(domain)
        assert restricted.complement(domain).complement(domain) == restricted

    @given(st.integers(0, 70))
    def test_single_point_domain(self, t):
        domain = Interval(t, t)
        assert IntervalSet.empty().complement(domain) == IntervalSet.point(t)
        assert IntervalSet.point(t).complement(domain).is_empty()
        assert IntervalSet.point(t).dilate(3, 3, domain) == IntervalSet.point(t)


class TestValuedIntervalProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.sampled_from(["a", "b", "c"])),
            max_size=25,
        )
    )
    def test_from_points_round_trip(self, assignments):
        deduped = {}
        for t, value in assignments:
            deduped.setdefault(t, value)
        family = ValuedIntervalSet.from_points(deduped.items())
        for t, value in deduped.items():
            assert family.value_at(t) == value
        assert family.support().total_points() == len(deduped)


# --------------------------------------------------------------------- #
# Graph model invariants
# --------------------------------------------------------------------- #
class TestModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_itpg_tpg_round_trip(self, seed):
        graph = random_itpg(seed)
        back = tpg_to_itpg(itpg_to_tpg(graph))
        for obj in graph.objects():
            assert back.existence(obj) == graph.existence(obj)
            for name in graph.property_names(obj):
                assert back.property_family(obj, name) == graph.property_family(obj, name)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_graphs_satisfy_integrity(self, seed):
        graph = random_itpg(seed)
        graph.validate()
        tpg = itpg_to_tpg(graph)
        for edge in tpg.edges():
            src, tgt = tpg.endpoints(edge)
            for t in tpg.existence_points(edge):
                assert tpg.exists(src, t) and tpg.exists(tgt, t)


# --------------------------------------------------------------------- #
# Language / evaluation invariants
# --------------------------------------------------------------------- #
class TestEvaluationProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=0, max_value=5_000))
    def test_union_and_concat_laws(self, graph_seed, expr_seed):
        graph = random_itpg(graph_seed, num_nodes=4, num_edges=5, num_windows=5)
        evaluator = BottomUpEvaluator(graph)
        p = random_path_expression(expr_seed, max_depth=2)
        q = random_path_expression(expr_seed + 1, max_depth=2)
        union = evaluator.evaluate(ast.union(p, q)).tuples
        assert union == evaluator.evaluate(p).tuples | evaluator.evaluate(q).tuples
        # Concatenation with the always-true test is the identity.
        assert (
            evaluator.evaluate(ast.concat(p, ast.test(ast.and_()))).tuples
            == evaluator.evaluate(p).tuples
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_bounded_repetition_unrolls_to_unions(self, graph_seed, lower, extra):
        upper = lower + extra
        graph = random_itpg(graph_seed, num_nodes=3, num_edges=4, num_windows=4)
        evaluator = BottomUpEvaluator(graph)
        body = ast.concat(ast.N, ast.test(ast.exists()))
        repeated = evaluator.evaluate(ast.repeat(body, lower, upper)).tuples
        unrolled = set()
        for k in range(lower, upper + 1):
            if k == 0:
                expr = ast.repeat(body, 0, 0)
            else:
                expr = ast.concat(*([body] * k))
            unrolled |= evaluator.evaluate(expr).tuples
        assert repeated == unrolled

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_engines_agree_on_random_match_queries(self, seed):
        graph = random_itpg(seed, num_nodes=5, num_edges=6, num_windows=6)
        queries = [
            "MATCH (x)-[:knows]->(y) ON g",
            "MATCH (x:Person)-/NEXT[0,2]/-(y) ON g",
            "MATCH (x)-/FWD/PREV*/-(y) ON g",
        ]
        reference = ReferenceEngine(graph)
        dataflow = DataflowEngine(graph)
        for query in queries:
            assert reference.match(query).as_set() == dataflow.match(query).as_set()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_time_restriction_is_monotone(self, seed):
        graph = random_itpg(seed, num_nodes=4, num_edges=4, num_windows=6)
        evaluator = BottomUpEvaluator(graph)
        broad = evaluator.evaluate(ast.test(ast.time_lt(5))).tuples
        narrow = evaluator.evaluate(ast.test(ast.time_lt(3))).tuples
        assert narrow <= broad
