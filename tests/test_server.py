"""The always-on query service: protocol, plan cache, concurrency, durability.

What this module pins:

* the compiled-plan cache is keyed by ``(normalized text, graph token)``
  — lexical variants of one query share a plan, and applying a delta
  invalidates every plan compiled against the pre-delta graph (a stale
  plan would be a wrong-answer bug, not a perf bug);
* requests interleaved with delta application are serial-identical:
  every answer matches the serial reference for the epoch it is
  labelled with, never a torn in-between state;
* backpressure is admission control: at capacity the service rejects
  with ``Overloaded`` instead of queueing without bound;
* the ``repro serve`` subprocess answers a mixed paper-query burst with
  zero divergence from the one-shot engine, and shuts down cleanly;
* a restart with the same WAL (or snapshot) resumes at the state the
  previous process durably reached.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dataflow import DataflowEngine
from repro.errors import ConnectionClosed, NotPrimary, Overloaded, ReproError, ServerError
from repro.model import contact_tracing_example
from repro.model.io import save_json
from repro.resilience import failpoints
from repro.resilience.retry import RetryPolicy
from repro.server import (
    BackgroundServer,
    PlanCache,
    ServerClient,
    ServerState,
    normalize_query,
)
from repro.server.protocol import decode, encode, families_to_wire
from repro.streaming.delta import DeltaBatch


def subprocess_env() -> dict:
    """Environment for ``python -m repro`` children: src on the path."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def example_batch(sequence: int, suffix: str = "x") -> DeltaBatch:
    """A delta over the Figure-1 example that changes Q1 and Q5 answers."""
    batch = DeltaBatch(sequence=sequence)
    node = f"n_{suffix}{sequence}"
    edge = f"e_{suffix}{sequence}"
    batch.add_node(node, "Person", [(2, 8)])
    batch.set_property(node, "name", f"P{sequence}", 2, 8)
    batch.set_property(node, "risk", "high", 2, 8)
    batch.add_edge(edge, "meets", "n1", node, [(3, 6)])
    return batch


def serial_wire_answer(graph, text: str) -> list:
    """The canonical wire form of a one-shot serial evaluation."""
    return families_to_wire(
        DataflowEngine(graph).match_intervals(normalize_query(text))
    )


def wait_until(predicate, *, timeout: float = 20.0, interval: float = 0.02):
    """Poll ``predicate`` until it returns something truthy (and return it)."""
    deadline = time.time() + timeout
    last = None
    while time.time() < deadline:
        last = predicate()
        if last:
            return last
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s (last: {last!r})")


# --------------------------------------------------------------------- #
# Protocol primitives
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_normalize_collapses_whitespace_and_resolves_names(self):
        spelled = normalize_query("MATCH   (x:Person)\n  ON contact_tracing")
        assert spelled == "MATCH (x:Person) ON contact_tracing"
        assert normalize_query("Q1") == spelled

    def test_encode_decode_roundtrip(self):
        message = {"op": "query", "id": 7, "query": "Q1"}
        assert decode(encode(message).rstrip(b"\n")) == message

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            decode(b"[1, 2, 3]")


class TestPlanCache:
    def test_lru_eviction_and_counters(self):
        cache = PlanCache(capacity=2)
        cache.put(("a", "t"), "plan-a")
        cache.put(("b", "t"), "plan-b")
        assert cache.get(("a", "t")) == "plan-a"  # refreshes a
        cache.put(("c", "t"), "plan-c")  # evicts b (LRU)
        assert cache.get(("b", "t")) is None
        assert cache.get(("a", "t")) == "plan-a"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_invalidate_token_drops_only_that_token(self):
        cache = PlanCache()
        cache.put(("q1", "old"), 1)
        cache.put(("q2", "old"), 2)
        cache.put(("q1", "new"), 3)
        assert cache.invalidate_token("old") == 2
        assert len(cache) == 1
        assert cache.get(("q1", "new")) == 3

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# --------------------------------------------------------------------- #
# Resident state (no sockets)
# --------------------------------------------------------------------- #
class TestGraphHost:
    def test_plan_cache_hit_on_lexical_variants(self):
        state = ServerState()
        state.add_graph("default")
        host = state.host("default")
        first = host.query("Q1")
        again = host.query("MATCH  (x:Person)  ON   contact_tracing")
        assert first["server"]["plan"] == "miss"
        assert again["server"]["plan"] == "hit"
        assert again["result"]["families"] == first["result"]["families"]

    def test_delta_invalidates_plans_and_advances_epoch(self):
        state = ServerState()
        state.add_graph("default")
        host = state.host("default")
        host.query("Q1")
        host.query("Q5")
        before = host.query("Q5")["result"]["families"]
        applied = host.apply_delta(example_batch(1).to_json_dict())
        assert applied["result"]["plans_invalidated"] == 2
        assert applied["server"]["epoch"] == 1
        after = host.query("Q5")
        assert after["server"]["plan"] == "miss"
        assert after["server"]["epoch"] == 1
        assert after["result"]["families"] != before
        # The served answer equals a cold one-shot over the mutated graph.
        assert after["result"]["families"] == serial_wire_answer(host.graph, "Q5")

    def test_registered_table_tracks_deltas(self):
        state = ServerState()
        state.add_graph("default")
        host = state.host("default")
        host.register("Q5", name="q5")
        before = host.table("q5")["result"]["families"]
        host.apply_delta(example_batch(1).to_json_dict())
        after = host.table("q5")["result"]["families"]
        assert after != before
        assert after == serial_wire_answer(host.graph, "Q5")

    def test_unknown_graph_is_a_repro_error(self):
        state = ServerState()
        with pytest.raises(ReproError, match="not resident"):
            state.host("nope")

    def test_duplicate_graph_name_rejected(self):
        state = ServerState()
        state.add_graph("default")
        with pytest.raises(ServerError, match="already resident"):
            state.add_graph("default")


# --------------------------------------------------------------------- #
# The TCP service end to end
# --------------------------------------------------------------------- #
class TestService:
    def test_mixed_burst_matches_one_shot_engine(self):
        state = ServerState(workers=2)
        state.add_graph("default")
        reference = {
            name: serial_wire_answer(contact_tracing_example(), name)
            for name in ("Q1", "Q5", "Q10")
        }
        with BackgroundServer(state) as server:
            with ServerClient(server.host, server.port) as client:
                assert client.ping()["protocol"].startswith("repro-server/")
                for _ in range(3):
                    for name in ("Q1", "Q5", "Q10"):
                        response = client.query(name)
                        assert response["result"]["families"] == reference[name]
                stats = client.stats()["graphs"]["default"]["plan_cache"]
                # 3 plans compiled once each, then reused across the burst.
                assert stats["misses"] == 3
                assert stats["hits"] == 6

    def test_request_id_is_echoed(self):
        state = ServerState()
        state.add_graph("default")
        with BackgroundServer(state) as server:
            with ServerClient(server.host, server.port) as client:
                response = client.request("query", id=42, graph="default", query="Q1")
                assert response["id"] == 42

    def test_per_request_deadline_maps_to_structured_error(self):
        state = ServerState()
        state.add_graph("default")
        with BackgroundServer(state) as server:
            with ServerClient(server.host, server.port) as client:
                with pytest.raises(ServerError) as err:
                    client.query("Q10", deadline=1e-9)
                assert err.value.kind == "DeadlineExceeded"
                # The session is still healthy afterwards.
                assert client.query("Q1")["result"]["num_families"] > 0

    def test_malformed_requests_answer_instead_of_disconnecting(self):
        state = ServerState()
        state.add_graph("default")
        with BackgroundServer(state) as server:
            with ServerClient(server.host, server.port) as client:
                with pytest.raises(ServerError):
                    client.request("no_such_op")
                with pytest.raises(ServerError):
                    client.request("query", graph="default", query="   ")
                with pytest.raises(ServerError):
                    client.request("query", graph="default", query="Q1", deadline=-1)
                with pytest.raises(ServerError):
                    client.request("apply_delta", graph="default", batch="not-a-dict")
                # The connection survived all four rejections.
                assert client.query("Q1")["result"]["num_families"] > 0

    def test_overloaded_rejection_at_capacity(self):
        state = ServerState()
        state.add_graph("default")
        host = state.host("default")
        with BackgroundServer(state, max_concurrency=1, max_queue=0) as server:
            blocked = ServerClient(server.host, server.port)
            probe = ServerClient(server.host, server.port)
            try:
                # Hold the host lock so the admitted request occupies the
                # single execution slot without completing.
                with host.lock:
                    done = threading.Event()
                    outcome = {}

                    def slow_query():
                        try:
                            outcome["response"] = blocked.query("Q1")
                        except Exception as error:  # pragma: no cover
                            outcome["error"] = error
                        done.set()

                    thread = threading.Thread(target=slow_query, daemon=True)
                    thread.start()
                    deadline = time.time() + 10
                    while time.time() < deadline:
                        if server._server._semaphore.locked():
                            break
                        time.sleep(0.01)
                    with pytest.raises(Overloaded):
                        probe.query("Q1")
                done.wait(timeout=30)
                assert outcome.get("response") is not None
                rejected = probe.stats()["service"]["rejected"]
                assert rejected == 1
            finally:
                blocked.close()
                probe.close()

    def test_concurrent_queries_with_delta_writer_are_serial_identical(self):
        """Satellite 4: readers racing a delta writer see per-epoch answers."""
        state = ServerState(workers=2)
        state.add_graph("default")
        num_batches = 4
        # Reference answers per epoch, each computed on a fresh twin graph
        # (a fresh graph gets a fresh shared index — the raw apply_delta
        # deliberately leaves index maintenance to the streaming session).
        from repro.streaming.delta import apply_delta

        reference = {}
        for epoch in range(num_batches + 1):
            twin = contact_tracing_example()
            for seq in range(1, epoch + 1):
                apply_delta(twin, example_batch(seq))
            reference[epoch] = {q: serial_wire_answer(twin, q) for q in ("Q1", "Q5")}

        errors = []
        observations = []

        def reader(text: str, stop: threading.Event) -> None:
            try:
                with ServerClient(server.host, server.port) as client:
                    while not stop.is_set():
                        response = client.query(text)
                        observations.append(
                            (text, response["server"]["epoch"], response["result"]["families"])
                        )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        with BackgroundServer(state, max_concurrency=4) as server:
            stop = threading.Event()
            readers = [
                threading.Thread(target=reader, args=("Q1", stop), daemon=True),
                threading.Thread(target=reader, args=("Q5", stop), daemon=True),
            ]
            for thread in readers:
                thread.start()
            with ServerClient(server.host, server.port) as writer:
                for seq in range(1, num_batches + 1):
                    writer.apply_delta(example_batch(seq).to_json_dict())
                    time.sleep(0.05)  # let readers observe this epoch
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
        assert not errors
        assert observations
        seen_epochs = set()
        for text, epoch, families in observations:
            assert families == reference[epoch][text], (
                f"{text} at epoch {epoch} diverged from the serial reference"
            )
            seen_epochs.add(epoch)
        # The race actually spanned multiple epochs (not all pre/post).
        assert len(seen_epochs) > 1

    def test_shutdown_op_stops_the_server(self):
        state = ServerState()
        state.add_graph("default")
        server = BackgroundServer(state).start()
        with ServerClient(server.host, server.port) as client:
            assert client.shutdown() == {"stopping": True}
        server._thread.join(timeout=30)
        assert not server._thread.is_alive()


# --------------------------------------------------------------------- #
# Durability: restart resumes where the previous process stopped
# --------------------------------------------------------------------- #
class TestServerDurability:
    def test_wal_restart_replays_applied_batches(self, tmp_path):
        wal = str(tmp_path / "server.wal")
        first = ServerState()
        first.add_graph("default", wal=wal)
        host = first.host("default")
        host.apply_delta(example_batch(1).to_json_dict())
        host.apply_delta(example_batch(2).to_json_dict())
        answer = host.query("Q5")["result"]["families"]
        first.close()

        second = ServerState()
        recovery = second.add_graph("default", wal=wal)
        assert recovery is None  # WAL-only catch-up, not snapshot recovery
        resumed = second.host("default")
        assert resumed.query("Q5")["result"]["families"] == answer
        # The resumed session appends after the replayed tail, not over it.
        applied = resumed.apply_delta(example_batch(3).to_json_dict())
        assert applied["result"]["sequence"] == 3
        second.close()

    def test_snapshot_restart_recovers_session_and_queries(self, tmp_path):
        wal = str(tmp_path / "server.wal")
        snapshot = str(tmp_path / "server.snapshot")
        first = ServerState()
        first.add_graph("default", wal=wal, snapshot=snapshot)
        host = first.host("default")
        host.register("Q5", name="q5")
        host.apply_delta(example_batch(1).to_json_dict())
        answer = host.table("q5")["result"]["families"]
        first.close()

        second = ServerState()
        recovery = second.add_graph("default", wal=wal, snapshot=snapshot)
        assert recovery is not None
        resumed = second.host("default")
        assert "q5" in resumed.session.query_names()
        assert resumed.table("q5")["result"]["families"] == answer
        second.close()


# --------------------------------------------------------------------- #
# The `repro serve` subprocess (the real deployment shape)
# --------------------------------------------------------------------- #
class TestServeSubprocess:
    def test_smoke_burst_and_clean_shutdown(self, tmp_path):
        graph_path = str(tmp_path / "graph.json")
        save_json(contact_tracing_example(), graph_path)
        reference = {
            name: serial_wire_answer(contact_tracing_example(), name)
            for name in ("Q1", "Q5", "Q10")
        }
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--graph",
                graph_path,
                "--port",
                "0",
                "--register",
                "Q1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=subprocess_env(),
        )
        try:
            port = None
            deadline = time.time() + 60
            while time.time() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.match(r"listening on [\d.]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "server never printed its listening line"
            with ServerClient("127.0.0.1", port, timeout=60) as client:
                for _ in range(2):
                    for name in ("Q1", "Q5", "Q10"):
                        response = client.query(name)
                        assert response["result"]["families"] == reference[name]
                assert client.table("Q1")["result"]["families"] == reference["Q1"]
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_serve_flag_validation(self):
        env_cmd = [sys.executable, "-m", "repro", "serve"]
        serial = subprocess.run(
            env_cmd + ["--backend", "serial", "--workers", "4"],
            capture_output=True,
            text=True,
            env=subprocess_env(),
        )
        assert serial.returncode == 2
        assert "contradicts" in serial.stderr
        snap = subprocess.run(
            env_cmd + ["--snapshot-every", "3"],
            capture_output=True,
            text=True,
            env=subprocess_env(),
        )
        assert snap.returncode == 2
        assert "--snapshot" in snap.stderr
        standby = subprocess.run(
            env_cmd + ["--standby-of", "not-an-endpoint"],
            capture_output=True,
            text=True,
            env=subprocess_env(),
        )
        assert standby.returncode == 2
        assert "HOST:PORT" in standby.stderr
        window = subprocess.run(
            env_cmd
            + ["--standby-of", "127.0.0.1:1", "--failover-after", "0.5",
               "--heartbeat-interval", "1.0"],
            capture_output=True,
            text=True,
            env=subprocess_env(),
        )
        assert window.returncode == 2
        assert "--failover-after" in window.stderr


# --------------------------------------------------------------------- #
# Lifecycle: health states, graceful drain, idle reaper, structured
# connection loss
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_health_reports_ready_primary(self):
        state = ServerState()
        state.add_graph("default")
        with BackgroundServer(state) as server:
            with ServerClient(server.host, server.port) as client:
                health = client.health()
        assert health["status"] == "ready"
        assert health["role"] == "primary"
        assert health["epochs"] == {"default": 0}
        # A primary is its own write target.
        assert health["primary"] == health["address"]

    def test_idle_timeout_answers_close_frame_then_disconnects(self):
        """Satellite 2+4: the idle reaper explains itself, then hangs up."""
        import socket as socket_module

        state = ServerState()
        state.add_graph("default")
        with BackgroundServer(state, idle_timeout=0.3) as server:
            with socket_module.create_connection(
                (server.host, server.port), timeout=30
            ) as idle:
                reader = idle.makefile("rb")
                line = reader.readline()  # blocks until the reaper answers
                assert line, "server hung up without the close frame"
                frame = decode(line)
                assert frame["ok"] is False
                assert frame["error"]["type"] == "ProtocolError"
                assert "idle" in frame["error"]["message"]
                assert reader.readline() == b""  # then the socket closes
            with ServerClient(server.host, server.port) as probe:
                assert probe.stats()["service"]["idle_closed"] >= 1

    def test_dead_server_raises_structured_connection_closed(self):
        """Satellite 3: connection loss is ConnectionClosed, not JSON noise."""
        state = ServerState()
        state.add_graph("default")
        server = BackgroundServer(state).start()
        host, port = server.host, server.port
        server.stop()
        client = ServerClient(
            host, port, retry=RetryPolicy(retries=1, base_delay=0.01)
        )
        with pytest.raises(ConnectionClosed) as excinfo:
            client.query("Q1")
        # Catchable both as a library error and as a plain socket error.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ConnectionError)
        with pytest.raises(ConnectionClosed):
            client.apply_delta(example_batch(1).to_json_dict())

    def test_shutdown_while_in_flight_completes_and_answers(self):
        """Satellite 5: drain lets the admitted request answer first."""
        graph = contact_tracing_example()
        reference = serial_wire_answer(graph, "Q1")
        state = ServerState()
        state.add_graph("default")
        server = BackgroundServer(state, max_concurrency=2).start()
        slow = ServerClient(
            server.host, server.port, retry=RetryPolicy(retries=0)
        )
        control = ServerClient(server.host, server.port)
        outcome = {}
        done = threading.Event()

        def in_flight_query():
            try:
                outcome["response"] = slow.query("Q1")
            except Exception as error:  # pragma: no cover - the assertion below
                outcome["error"] = error
            done.set()

        try:
            # Every engine step stalls 0.15s, so the query is reliably
            # still executing when the drain begins.
            failpoints.arm("engine.step", "sleep", seconds=0.15, times=0)
            thread = threading.Thread(target=in_flight_query, daemon=True)
            thread.start()
            wait_until(lambda: server.server._inflight > 0)
            control.shutdown()
            done.wait(timeout=30)
            assert "error" not in outcome, outcome.get("error")
            assert outcome["response"]["result"]["families"] == reference
        finally:
            failpoints.disarm_all()
            slow.close()
            control.close()
            server.stop()
        wait_until(lambda: not server._thread.is_alive())
        assert control.request  # the drain answered before sockets closed

    def test_stats_surfaces_drain_and_replication_counters(self):
        state = ServerState()
        state.add_graph("default")
        server = BackgroundServer(state).start()
        try:
            with ServerClient(server.host, server.port) as client:
                stats = client.stats()
                service = stats["service"]
                assert service["status"] == "ready"
                assert service["role"] == "primary"
                assert service["drains"] == 0
                assert service["inflight"] >= 0
                assert stats["replication"] == {"shipped": 0, "graphs": {}}
        finally:
            server.stop()


# --------------------------------------------------------------------- #
# Replication: WAL shipping, standby reads, promotion, client failover
# --------------------------------------------------------------------- #
class TestReplication:
    @staticmethod
    def _primary(tmp_path, **options) -> BackgroundServer:
        state = ServerState()
        state.add_graph("default", wal=str(tmp_path / "primary.wal"))
        return BackgroundServer(
            state, heartbeat_interval=0.1, failover_after=1.0, **options
        ).start()

    @staticmethod
    def _standby(primary: BackgroundServer, **options) -> BackgroundServer:
        state = ServerState()
        state.add_graph("default")
        return BackgroundServer(
            state,
            standby_of=(primary.host, primary.port),
            heartbeat_interval=0.1,
            failover_after=1.0,
            **options,
        ).start()

    def test_standby_catches_up_and_follows_with_lag_labels(self, tmp_path):
        primary = self._primary(tmp_path)
        pc = ServerClient(primary.host, primary.port)
        pc.register("Q5", name="q5")
        # Batch 1 lands BEFORE the standby exists: the WAL catch-up path.
        pc.apply_delta(example_batch(1).to_json_dict())
        standby = self._standby(primary)
        sc = ServerClient(standby.host, standby.port)
        try:
            wait_until(lambda: sc.health()["status"] == "standby")
            # Batch 2 lands on a live subscription: the shipping path.
            pc.apply_delta(example_batch(2).to_json_dict())
            wait_until(lambda: sc.health()["epochs"]["default"] == 2)

            reference = contact_tracing_example()
            session_reference = ServerState()
            session_reference.add_graph("default")
            ref_host = session_reference.host("default")
            ref_host.apply_delta(example_batch(1).to_json_dict())
            ref_host.apply_delta(example_batch(2).to_json_dict())
            expected = ref_host.query("Q5")["result"]["families"]

            answer = sc.query("Q5")
            assert answer["result"]["families"] == expected
            assert answer["server"]["epoch"] == 2
            assert answer["server"]["role"] == "standby"
            assert answer["server"]["replication"]["lag"] == 0
            assert answer["server"]["replication"]["applied_seq"] == 2
            # The primary's stats see the acked standby.
            standbys = pc.stats()["replication"]["graphs"]["default"]["standbys"]
            assert len(standbys) == 1
            wait_until(lambda: pc.stats()["replication"]["graphs"]["default"][
                "standbys"][0]["acked_seq"] == 2)
        finally:
            pc.close()
            sc.close()
            standby.stop()
            primary.stop()

    def test_standby_refuses_writes_with_structured_not_primary(self, tmp_path):
        import socket as socket_module

        primary = self._primary(tmp_path)
        standby = self._standby(primary)
        try:
            sc = ServerClient(standby.host, standby.port)
            wait_until(lambda: sc.health()["status"] == "standby")
            sc.close()
            # Raw socket: no failover client in the way, so the raw
            # NotPrimary envelope (with its redirect data) is visible.
            with socket_module.create_connection(
                (standby.host, standby.port), timeout=30
            ) as raw:
                raw.sendall(
                    encode(
                        {
                            "op": "apply_delta",
                            "graph": "default",
                            "batch": example_batch(1).to_json_dict(),
                        }
                    )
                )
                response = decode(raw.makefile("rb").readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "NotPrimary"
            assert response["error"]["data"]["primary"] == (
                f"{primary.host}:{primary.port}"
            )
            # The failover client turns that rejection into a re-route:
            # the same write through the standby endpoint lands on the
            # primary and succeeds.
            with ServerClient(standby.host, standby.port) as routed:
                applied = routed.apply_delta(example_batch(1).to_json_dict())
            assert applied["server"]["role"] == "primary"
            assert applied["server"]["epoch"] == 1
        finally:
            standby.stop()
            primary.stop()

    def test_graceful_drain_promotes_standby_epoch_identical(self, tmp_path):
        primary = self._primary(tmp_path)
        pc = ServerClient(primary.host, primary.port)
        pc.register("Q5", name="q5")
        pc.apply_delta(example_batch(1).to_json_dict())
        standby = self._standby(primary)
        sc = ServerClient(standby.host, standby.port)
        try:
            wait_until(lambda: sc.health()["epochs"]["default"] == 1)
            pc.apply_delta(example_batch(2).to_json_dict())
            wait_until(lambda: sc.health()["epochs"]["default"] == 2)
            pc.shutdown()
            # The close frame promotes the standby immediately (no
            # failover window): role flips, writes open up.
            health = wait_until(
                lambda: (h := sc.health())["role"] == "primary" and h
            )
            assert health["status"] == "ready"
            assert health["fence"]["previous_primary"] == (
                f"{primary.host}:{primary.port}"
            )
            assert health["fence"]["fence_seq"] == {"default": 2}

            reference = ServerState()
            reference.add_graph("default")
            ref_host = reference.host("default")
            ref_host.apply_delta(example_batch(1).to_json_dict())
            ref_host.apply_delta(example_batch(2).to_json_dict())
            expected = ref_host.query("Q5")["result"]["families"]
            answer = sc.query("Q5")
            assert answer["result"]["families"] == expected
            assert answer["server"]["epoch"] == 2
            # The registered query replicated too and tracked both deltas.
            table = sc.table("q5")
            assert table["result"]["families"] == expected
            # Writes now succeed on the promoted standby.
            applied = sc.apply_delta(example_batch(3).to_json_dict())
            assert applied["server"]["epoch"] == 3
            assert applied["server"]["role"] == "primary"
        finally:
            pc.close()
            sc.close()
            standby.stop()
            primary.stop()

    def test_failover_client_retries_reads_across_endpoints(self, tmp_path):
        primary = self._primary(tmp_path)
        standby = self._standby(primary)
        client = ServerClient(
            [(primary.host, primary.port), (standby.host, standby.port)],
            retry=RetryPolicy(retries=8, base_delay=0.05, max_delay=0.5),
        )
        try:
            probe = ServerClient(standby.host, standby.port)
            wait_until(lambda: probe.health()["status"] == "standby")
            probe.close()
            reference = serial_wire_answer(contact_tracing_example(), "Q1")
            assert client.query("Q1")["result"]["families"] == reference
            assert client.connected_to == (primary.host, primary.port)
            primary.stop()  # the endpoint the client is attached to dies
            # The retry loop rotates to the standby transparently.
            answer = client.query("Q1")
            assert answer["result"]["families"] == reference
            assert client.connected_to == (standby.host, standby.port)
        finally:
            client.close()
            standby.stop()
            primary.stop()
