"""Tests for the formal-notation pretty printer."""

import pytest

from repro.lang import ast, parse_path, to_text


class TestPathRendering:
    def test_axes(self):
        assert to_text(ast.F) == "F"
        assert to_text(ast.P) == "P"

    def test_concat(self):
        assert to_text(ast.concat(ast.F, ast.N)) == "(F / N)"

    def test_union(self):
        assert to_text(ast.union(ast.F, ast.B)) == "(F + B)"

    def test_repeat_bounded(self):
        assert to_text(ast.repeat(ast.N, 0, 12)) == "N[0,12]"

    def test_repeat_unbounded(self):
        assert to_text(ast.star(ast.P)) == "P[0,_]"

    def test_nested_expression(self):
        expr = ast.concat(ast.union(ast.F, ast.B), ast.repeat(ast.N, 1, 2))
        assert to_text(expr) == "((F + B) / N[1,2])"


class TestTestRendering:
    def test_basic_tests(self):
        assert to_text(ast.is_node()) == "Node"
        assert to_text(ast.is_edge()) == "Edge"
        assert to_text(ast.exists()) == "EXISTS"
        assert to_text(ast.label("Person")) == "Person"
        assert to_text(ast.time_lt(9)) == "< 9"

    def test_prop_eq(self):
        assert to_text(ast.prop_eq("risk", "low")) == "risk -> 'low'"

    def test_boolean_combinations(self):
        rendered = to_text(ast.and_(ast.is_node(), ast.not_(ast.exists())))
        assert rendered == "(Node AND NOT EXISTS)"
        assert to_text(ast.or_(ast.is_node(), ast.is_edge())) == "(Node OR Edge)"

    def test_path_condition(self):
        rendered = to_text(ast.path_test(ast.concat(ast.F, ast.exists())))
        assert rendered == "?((F / EXISTS))"

    def test_test_path_renders_condition(self):
        assert to_text(ast.test(ast.exists())) == "EXISTS"

    def test_round_trippish_on_parsed_query(self):
        expr = parse_path("FWD/:meets/FWD/NEXT*")
        rendered = to_text(expr)
        assert "meets" in rendered and "(N / EXISTS)[0,_]" in rendered

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_text(42)  # type: ignore[arg-type]
