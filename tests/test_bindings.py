"""Tests for temporal binding tables."""

import pytest

from repro.eval import BindingTable
from repro.temporal import Interval


@pytest.fixture()
def table():
    return BindingTable.build(
        ["x", "y"],
        [
            (("n1", 5), ("n2", 5)),
            (("n1", 6), ("n2", 6)),
            (("n2", 1), ("n3", 1)),
            (("n1", 5), ("n2", 5)),  # duplicate: must be removed
        ],
    )


class TestConstruction:
    def test_dedup_and_sort(self, table):
        assert len(table) == 3
        assert table.rows[0] == (("n1", 5), ("n2", 5))

    def test_empty(self):
        empty = BindingTable.empty(["x"])
        assert empty.is_empty() and len(empty) == 0 and not empty

    def test_bool_and_iter(self, table):
        assert table
        assert list(iter(table)) == list(table.rows)

    def test_as_set(self, table):
        assert (("n2", 1), ("n3", 1)) in table.as_set()


class TestAccessors:
    def test_to_records(self, table):
        records = table.to_records()
        assert records[0] == {"x": "n1", "x_time": 5, "y": "n2", "y_time": 5}

    def test_column(self, table):
        assert table.column("x") == [("n1", 5), ("n1", 6), ("n2", 1)]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("zzz")


class TestRelationalOperations:
    def test_project(self, table):
        projected = table.project(["y"])
        assert projected.variables == ("y",)
        assert projected.as_set() == {(("n2", 5),), (("n2", 6),), (("n3", 1),)}

    def test_project_reorders(self, table):
        swapped = table.project(["y", "x"])
        assert swapped.rows[0] == (("n2", 5), ("n1", 5))

    def test_select(self, table):
        filtered = table.select(lambda record: record["x_time"] > 4)
        assert len(filtered) == 2

    def test_rename(self, table):
        renamed = table.rename({"x": "person"})
        assert renamed.variables == ("person", "y")
        assert renamed.to_records()[0]["person"] == "n1"

    def test_coalesced_output(self, table):
        coalesced = table.coalesced("x")
        # n1 is bound at 5 and 6 with the same y object but different y times,
        # so only rows sharing the other bindings coalesce.
        assert all(isinstance(interval, Interval) for _b, _o, interval in coalesced)

    def test_coalesced_single_variable(self):
        table = BindingTable.build(["x"], [(("a", 1),), (("a", 2),), (("a", 4),)])
        coalesced = table.coalesced("x")
        assert [(obj, (iv.start, iv.end)) for _b, obj, iv in coalesced] == [
            ("a", (1, 2)),
            ("a", (4, 4)),
        ]


class TestPresentation:
    def test_pretty_contains_headers_and_rows(self, table):
        text = table.pretty()
        assert "x_time" in text and "n1" in text

    def test_pretty_limit(self, table):
        text = table.pretty(limit=1)
        assert "more rows" in text

    def test_str(self, table):
        assert str(table) == table.pretty()
