"""Tests for the columnar evaluation kernel (``kernel="columnar"``).

Three layers:

* **Dispatch contract** — ``explain()`` reports ``kernel`` /
  ``effective_kernel`` / ``kernel_fallback``, unknown kernels are
  rejected at construction, and the NumPy-absent configuration degrades
  to the interpreted path with identical output (the CI tests job runs
  without NumPy, so this is the configuration most suites exercise).
* **Fallback identity** — queries the kernel does not cover (point-mode
  output, mid-chain temporal navigation) record a reason and produce
  byte-identical answers through the interpreted path.
* **Array primitives + store fast path** — the sweep building blocks
  against hand-computed expectations, and attached-artifact parity
  (exercising :meth:`AttachedCore.columnar_sections` decoding).
"""

from __future__ import annotations

import pytest

from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import PAPER_QUERIES, DataflowEngine
from repro.errors import EvaluationError
from repro.model import contact_tracing_example
from repro.perf import columnar

requires_numpy = pytest.mark.skipif(
    not columnar.available(), reason="columnar kernel requires numpy"
)


def _example_engines(**kwargs):
    graph = contact_tracing_example()
    return (
        DataflowEngine(graph, kernel="columnar", **kwargs),
        DataflowEngine(graph, **kwargs),
    )


class TestKernelSelection:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel 'simd'"):
            DataflowEngine(contact_tracing_example(), kernel="simd")

    def test_kernel_property_and_default(self):
        graph = contact_tracing_example()
        assert DataflowEngine(graph).kernel == "interpreted"
        assert DataflowEngine(graph, kernel="columnar").kernel == "columnar"
        assert DataflowEngine.KERNELS == ("interpreted", "columnar")

    def test_interpreted_explain_reports_no_fallback(self):
        engine = DataflowEngine(contact_tracing_example())
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["kernel"] == "interpreted"
        assert plan["effective_kernel"] == "interpreted"
        assert plan["kernel_fallback"] is None


class TestExplainReporting:
    @requires_numpy
    def test_covered_query_reports_columnar(self):
        engine, _ = _example_engines()
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["kernel"] == "columnar"
        assert plan["effective_kernel"] == "columnar"
        assert plan["kernel_fallback"] is None

    @requires_numpy
    def test_point_mode_query_reports_fallback(self):
        # Q6 binds variables across temporal groups, so its output is
        # point-mode rows — outside the kernel's family representation.
        engine, _ = _example_engines()
        plan = engine.explain(PAPER_QUERIES["Q6"].text)
        assert plan["effective_kernel"] == "interpreted"
        assert plan["kernel_fallback"] == (
            "output spans temporal groups (point mode)"
        )

    @requires_numpy
    def test_legacy_frontier_disables_kernel(self):
        engine = DataflowEngine(
            contact_tracing_example(), kernel="columnar", use_coalesced=False
        )
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["effective_kernel"] == "interpreted"
        assert "coalescing frontier" in plan["kernel_fallback"]

    @requires_numpy
    def test_no_index_disables_kernel(self):
        engine = DataflowEngine(
            contact_tracing_example(), kernel="columnar", use_index=False
        )
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["effective_kernel"] == "interpreted"
        assert "graph index" in plan["kernel_fallback"]

    def test_numpy_absent_reports_and_matches_interpreted(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        assert not columnar.available()
        engine, oracle = _example_engines()
        plan = engine.explain(PAPER_QUERIES["Q1"].text)
        assert plan["kernel"] == "columnar"
        assert plan["effective_kernel"] == "interpreted"
        assert plan["kernel_fallback"] == "numpy is not installed"
        for name, query in PAPER_QUERIES.items():
            assert engine.match(query.text).as_set() == (
                oracle.match(query.text).as_set()
            ), f"{name} diverged with numpy absent"


class TestFallbackIdentity:
    """Unsupported shapes run interpreted with byte-identical output."""

    @pytest.mark.parametrize("name", ["Q6", "Q7", "Q8"])
    def test_point_mode_queries_identical(self, name):
        engine, oracle = _example_engines()
        query = PAPER_QUERIES[name].text
        assert engine.match(query).as_set() == oracle.match(query).as_set()
        # Both reject coalesced output for point-mode queries alike.
        with pytest.raises(EvaluationError):
            engine.match_intervals(query)
        with pytest.raises(EvaluationError):
            oracle.match_intervals(query)

    @requires_numpy
    def test_mid_chain_temporal_step_falls_back(self):
        # N·P: a temporal step before the end of the chain is not a
        # kernel shape; the plan reports why and the answer is identical.
        from repro.lang import ast
        from repro.lang.parser import MatchQuery, NodePattern, PathPattern

        graph = random_itpg(3)
        path = ast.concat(ast.P, ast.N)
        # Anonymous target: every binding stays in temporal group 0, so
        # the output is family-mode and the chain-shape check is what
        # rejects the mid-chain temporal step.
        query = MatchQuery(
            elements=(NodePattern(variable="x"), NodePattern(variable=None)),
            connectors=(PathPattern(path=path, source_text="<p-n>"),),
            graph_name="g",
            text="<p-n>",
        )
        engine = DataflowEngine(graph, kernel="columnar")
        plan = engine.explain(query)
        assert plan["effective_kernel"] == "interpreted"
        assert plan["kernel_fallback"] == (
            "temporal navigation before the end of the chain"
        )
        oracle = DataflowEngine(graph)
        assert engine.match(query).as_set() == oracle.match(query).as_set()

    @requires_numpy
    @pytest.mark.parametrize("seed", range(1, 9))
    def test_random_fuzz_cases_identical(self, seed):
        graph = random_itpg(seed)
        query = random_match_query(seed * 31 + 7)
        engine = DataflowEngine(graph, kernel="columnar")
        oracle = DataflowEngine(graph)
        assert engine.match(query).as_set() == oracle.match(query).as_set()


@requires_numpy
class TestPaperQueryParity:
    def test_all_paper_queries_identical(self):
        engine, oracle = _example_engines()
        for name, query in PAPER_QUERIES.items():
            assert engine.match(query.text).as_set() == (
                oracle.match(query.text).as_set()
            ), f"{name} diverged on the built-in example"

    def test_interval_families_identical(self):
        engine, oracle = _example_engines()
        for name, query in PAPER_QUERIES.items():
            try:
                expected = oracle.match_intervals(query.text)
            except EvaluationError:
                with pytest.raises(EvaluationError):
                    engine.match_intervals(query.text)
                continue
            got = engine.match_intervals(query.text)
            assert sorted(got, key=repr) == sorted(expected, key=repr), (
                f"{name} interval families diverged"
            )

    def test_streaming_delta_invalidates_columnar_context(self):
        # A delta bumps the index epoch; the cached context must be
        # rebuilt, not silently reused with stale arrays.
        from repro.model.io import from_json_dict, to_json_dict
        from repro.streaming import DeltaBatch

        payload = to_json_dict(contact_tracing_example())
        engine = DataflowEngine(
            from_json_dict(payload), kernel="columnar", incremental=True
        )
        oracle = DataflowEngine(from_json_dict(payload), incremental=True)
        query = PAPER_QUERIES["Q1"].text
        assert engine.match(query).as_set() == oracle.match(query).as_set()
        batch = DeltaBatch()
        batch.add_node("zz1", "Person", [(1, 5)])
        for target in (engine, oracle):
            target.apply_delta(DeltaBatch.from_json_dict(batch.to_json_dict()))
        assert engine.match(query).as_set() == oracle.match(query).as_set()


@requires_numpy
class TestPrimitives:
    def test_ranges_concatenates_aranges(self):
        import numpy as np

        starts = np.array([5, 10, 3], dtype=np.int64)
        counts = np.array([3, 0, 2], dtype=np.int64)
        assert columnar._ranges(starts, counts).tolist() == [5, 6, 7, 3, 4]
        empty = columnar._ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert empty.size == 0

    def test_coalesce_merges_adjacent_and_overlapping(self):
        import numpy as np

        stride = 100
        owner = np.array([0, 0, 0, 1], dtype=np.int64)
        start = np.array([5, 1, 9, 1], dtype=np.int64)
        end = np.array([7, 4, 9, 2], dtype=np.int64)
        o, s, e = columnar._coalesce(stride, 0, owner, start, end)
        # [1,4] and [5,7] are adjacent (gap 1) so they merge; [9,9] stays.
        assert o.tolist() == [0, 0, 1]
        assert s.tolist() == [1, 9, 1]
        assert e.tolist() == [7, 9, 2]

    def test_coalesce_guard_gap_keeps_owners_apart(self):
        import numpy as np

        # Owner 0 ends at the domain edge, owner 1 starts at the domain
        # start: on a gapless axis these would wrongly merge.
        domain_start, domain_end = 0, 9
        stride = domain_end - domain_start + 2
        owner = np.array([0, 1], dtype=np.int64)
        start = np.array([8, 0], dtype=np.int64)
        end = np.array([9, 1], dtype=np.int64)
        o, s, e = columnar._coalesce(stride, domain_start, owner, start, end)
        assert o.tolist() == [0, 1]
        assert s.tolist() == [8, 0] and e.tolist() == [9, 1]

    def test_intersect_global_reports_source_indices(self):
        import numpy as np

        a_gs = np.array([0, 10], dtype=np.int64)
        a_ge = np.array([5, 20], dtype=np.int64)
        b_gs = np.array([3, 12, 30], dtype=np.int64)
        b_ge = np.array([4, 40, 50], dtype=np.int64)
        gs, ge, a_idx = columnar._intersect_global(a_gs, a_ge, b_gs, b_ge)
        assert gs.tolist() == [3, 12]
        assert ge.tolist() == [4, 20]
        assert a_idx.tolist() == [0, 1]

    def test_group_rows_first_occurrence_order(self):
        import numpy as np

        keys = [np.array([2, 1, 2, 1, 3], dtype=np.int64)]
        group_of, reps = columnar._group_rows(keys, 5)
        assert group_of.tolist() == [0, 1, 0, 1, 2]
        assert reps.tolist() == [0, 1, 4]

    def test_group_rows_no_keys(self):
        group_of, reps = columnar._group_rows([], 3)
        assert group_of.tolist() == [0, 0, 0]
        assert reps.tolist() == [0]


@requires_numpy
class TestStoreFastPath:
    def test_attached_store_matches_in_memory(self, tmp_path):
        from repro.store import attach, compile_graph

        graph = contact_tracing_example()
        path = str(tmp_path / "graph.rix")
        compile_graph(graph, path)
        attachment = attach(path)
        try:
            assert attachment.core.columnar_sections() is not None
            engine = DataflowEngine(attachment.graph, kernel="columnar")
            oracle = DataflowEngine(graph)
            for name, query in PAPER_QUERIES.items():
                assert engine.match(query.text).as_set() == (
                    oracle.match(query.text).as_set()
                ), f"{name} diverged on the attached store"
        finally:
            # Decoding must copy: close() raises BufferError if any
            # numpy view still pins the mmap.
            attachment.close()

    def test_sharded_store_skips_fast_path_but_agrees(self, tmp_path):
        from repro.store import attach, compile_graph

        graph = random_itpg(4, num_nodes=8, num_edges=12)
        query = random_match_query(4 * 31 + 7)
        path = str(tmp_path / "store.json")
        compile_graph(graph, path, shards=3)
        attachment = attach(path)
        try:
            engine = DataflowEngine(attachment.graph, kernel="columnar")
            oracle = DataflowEngine(graph)
            assert engine.match(query).as_set() == oracle.match(query).as_set()
        finally:
            attachment.close()


class TestCliKernelFlag:
    def test_query_accepts_columnar(self, capsys):
        from repro.cli import main

        assert main(["query", "Q9", "--kernel", "columnar"]) == 0
        assert "n3" in capsys.readouterr().out

    def test_explain_prints_kernel_line(self, capsys):
        from repro.cli import main

        assert main(["query", "Q1", "--kernel", "columnar", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "kernel=columnar" in out

    def test_kernel_requires_dataflow_engine(self, capsys):
        from repro.cli import main

        code = main(
            ["query", "Q6", "--engine", "reference", "--kernel", "columnar"]
        )
        assert code == 2
        assert "dataflow engine only" in capsys.readouterr().err

    def test_unknown_kernel_rejected_by_argparse(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "Q1", "--kernel", "simd"])
        assert "invalid choice" in capsys.readouterr().err
