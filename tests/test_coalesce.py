"""Unit tests for the shared coalescing primitives."""

from repro.temporal import Interval, IntervalSet, ValuedInterval
from repro.temporal.coalesce import (
    coalesce_intervals,
    coalesce_point_rows,
    coalesce_points,
    coalesce_rows,
    coalesce_valued_intervals,
    expand_rows,
    is_coalesced,
    is_coalesced_valued,
)


class TestIntervalCoalescing:
    def test_coalesce_intervals(self):
        out = coalesce_intervals([Interval(1, 2), Interval(3, 5), Interval(8, 9)])
        assert out == IntervalSet([(1, 5), (8, 9)])

    def test_coalesce_points(self):
        assert coalesce_points([5, 1, 2, 3, 9]) == IntervalSet([(1, 3), (5, 5), (9, 9)])

    def test_coalesce_valued(self):
        out = coalesce_valued_intervals([("a", Interval(1, 2)), ("a", Interval(3, 4))])
        assert out.entries == (ValuedInterval("a", Interval(1, 4)),)


class TestRowCoalescing:
    def test_rows_with_same_key_merge(self):
        rows = [("x", Interval(1, 2)), ("x", Interval(3, 4)), ("y", Interval(1, 1))]
        assert coalesce_rows(rows) == [("x", Interval(1, 4)), ("y", Interval(1, 1))]

    def test_rows_with_gaps_stay_split(self):
        rows = [("x", Interval(1, 2)), ("x", Interval(5, 6))]
        assert coalesce_rows(rows) == [("x", Interval(1, 2)), ("x", Interval(5, 6))]

    def test_point_rows(self):
        rows = [("a", 1), ("a", 2), ("a", 4), ("b", 9)]
        assert coalesce_point_rows(rows) == [
            ("a", Interval(1, 2)),
            ("a", Interval(4, 4)),
            ("b", Interval(9, 9)),
        ]

    def test_expand_rows_inverts_point_coalescing(self):
        rows = [("a", 1), ("a", 2), ("b", 7)]
        assert sorted(expand_rows(coalesce_point_rows(rows))) == sorted(rows)

    def test_coalesce_rows_output_is_sorted(self):
        rows = [("b", Interval(4, 5)), ("a", Interval(1, 1))]
        out = coalesce_rows(rows)
        assert out[0][0] == "a"

    def test_empty_inputs(self):
        assert coalesce_rows([]) == []
        assert coalesce_point_rows([]) == []
        assert expand_rows([]) == []


class TestInvariantCheckers:
    def test_is_coalesced_true(self):
        assert is_coalesced([Interval(1, 2), Interval(4, 6)])

    def test_is_coalesced_adjacent_false(self):
        assert not is_coalesced([Interval(1, 2), Interval(3, 4)])

    def test_is_coalesced_overlap_false(self):
        assert not is_coalesced([Interval(1, 4), Interval(3, 6)])

    def test_is_coalesced_valued_gap(self):
        entries = [ValuedInterval("a", Interval(1, 2)), ValuedInterval("a", Interval(4, 5))]
        assert is_coalesced_valued(entries)

    def test_is_coalesced_valued_adjacent_different_values(self):
        entries = [ValuedInterval("a", Interval(1, 2)), ValuedInterval("b", Interval(3, 5))]
        assert is_coalesced_valued(entries)

    def test_is_coalesced_valued_adjacent_same_value_false(self):
        entries = [ValuedInterval("a", Interval(1, 2)), ValuedInterval("a", Interval(3, 5))]
        assert not is_coalesced_valued(entries)

    def test_intervalset_always_satisfies_invariant(self):
        family = IntervalSet([(1, 2), (2, 6), (8, 8), (9, 10)])
        assert is_coalesced(list(family.intervals))
