"""The diagonal-interval relation algebra must mirror TemporalRelation exactly."""

import random

import pytest

from repro.eval.relation import TemporalRelation
from repro.perf.interval_relation import IntervalRelation
from repro.temporal import Interval, IntervalSet

OBJECTS = ["a", "b", "c", "d"]
DOMAIN = Interval(0, 11)


def random_temporal_relation(seed: int, size: int = 40) -> TemporalRelation:
    """Random point tuples biased towards small offsets (diagonal-friendly)."""
    rng = random.Random(seed)
    tuples = []
    for _ in range(size):
        o = rng.choice(OBJECTS)
        o2 = rng.choice(OBJECTS)
        t = rng.randint(DOMAIN.start, DOMAIN.end)
        t2 = min(DOMAIN.end, max(DOMAIN.start, t + rng.randint(-3, 3)))
        tuples.append((o, t, o2, t2))
    return TemporalRelation(tuples)


def identity_pair():
    point = TemporalRelation(
        (o, t, o, t) for o in OBJECTS for t in DOMAIN.points()
    )
    interval = IntervalRelation.identity(OBJECTS, DOMAIN)
    return point, interval


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_point_round_trip(self, seed):
        relation = random_temporal_relation(seed)
        lifted = IntervalRelation.from_temporal_relation(relation)
        assert lifted.to_temporal_relation() == relation
        assert lifted.num_tuples() == len(relation)

    def test_membership_matches_expansion(self):
        relation = random_temporal_relation(3)
        lifted = IntervalRelation.from_temporal_relation(relation)
        for o in OBJECTS:
            for o2 in OBJECTS:
                for t in DOMAIN.points():
                    for t2 in DOMAIN.points():
                        assert ((o, t, o2, t2) in lifted) == (
                            (o, t, o2, t2) in relation
                        )

    def test_compact_representation(self):
        # A full-domain diagonal is one stored interval, not |domain| tuples.
        family = IntervalSet((DOMAIN,))
        lifted = IntervalRelation.from_diagonals([("a", "b", 0, family)])
        assert lifted.num_diagonals() == 1
        assert lifted.num_tuples() == len(DOMAIN)


class TestAlgebraAgreement:
    """Each interval-native operation expands to the point-based result."""

    @pytest.mark.parametrize("seed", range(6))
    def test_union(self, seed):
        a = random_temporal_relation(seed)
        b = random_temporal_relation(seed + 100)
        got = (
            IntervalRelation.from_temporal_relation(a)
            .union(IntervalRelation.from_temporal_relation(b))
            .to_temporal_relation()
        )
        assert got == a.union(b)

    @pytest.mark.parametrize("seed", range(6))
    def test_intersect(self, seed):
        a = random_temporal_relation(seed)
        b = random_temporal_relation(seed + 1)  # adjacent seeds share tuples
        got = (
            IntervalRelation.from_temporal_relation(a)
            .intersect(IntervalRelation.from_temporal_relation(b))
            .to_temporal_relation()
        )
        assert got == a.intersect(b)

    @pytest.mark.parametrize("seed", range(6))
    def test_compose(self, seed):
        a = random_temporal_relation(seed)
        b = random_temporal_relation(seed + 100)
        got = (
            IntervalRelation.from_temporal_relation(a)
            .compose(IntervalRelation.from_temporal_relation(b))
            .to_temporal_relation()
        )
        assert got == a.compose(b)

    @pytest.mark.parametrize("exponent", [0, 1, 2, 3, 5])
    def test_power(self, exponent):
        relation = random_temporal_relation(7, size=20)
        point_identity, interval_identity = identity_pair()
        got = (
            IntervalRelation.from_temporal_relation(relation)
            .power(exponent, interval_identity)
            .to_temporal_relation()
        )
        assert got == relation.power(exponent, point_identity)

    @pytest.mark.parametrize("bounds", [(0, 0), (0, 1), (1, 3), (2, 2), (0, 5)])
    def test_bounded_repetition(self, bounds):
        lower, upper = bounds
        relation = random_temporal_relation(9, size=20)
        point_identity, interval_identity = identity_pair()
        got = (
            IntervalRelation.from_temporal_relation(relation)
            .bounded_repetition(lower, upper, interval_identity)
            .to_temporal_relation()
        )
        assert got == relation.bounded_repetition(lower, upper, point_identity)

    @pytest.mark.parametrize("lower", [0, 1, 2])
    def test_unbounded_repetition(self, lower):
        relation = random_temporal_relation(11, size=15)
        point_identity, interval_identity = identity_pair()
        got = (
            IntervalRelation.from_temporal_relation(relation)
            .unbounded_repetition(lower, interval_identity)
            .to_temporal_relation()
        )
        assert got == relation.unbounded_repetition(lower, point_identity)

    def test_bounded_repetition_rejects_inverted_bounds(self):
        relation = IntervalRelation.empty()
        with pytest.raises(ValueError):
            relation.bounded_repetition(3, 1, relation)


class TestProjectionsAndEdges:
    def test_source_project(self):
        relation = random_temporal_relation(5)
        lifted = IntervalRelation.from_temporal_relation(relation)
        projected = {
            (obj, t)
            for obj, times in lifted.source_project().items()
            for t in times.points()
        }
        assert projected == relation.source_project()

    def test_empty_operands(self):
        relation = IntervalRelation.from_temporal_relation(random_temporal_relation(2))
        empty = IntervalRelation.empty()
        assert empty.is_empty()
        assert relation.union(empty) == relation
        assert empty.union(relation) == relation
        assert relation.compose(empty).is_empty()
        assert empty.compose(relation).is_empty()
        assert relation.intersect(empty).is_empty()

    def test_empty_families_dropped_on_construction(self):
        relation = IntervalRelation({("a", "b"): {0: IntervalSet.empty()}})
        assert relation.is_empty()
        assert relation.num_diagonals() == 0
