"""Semantics tests for the bottom-up reference evaluator (Theorem C.1).

These tests pin down the formal semantics of Section V-B on the small
``tiny_example`` graph:

* nodes: ``a`` (exists 0–9), ``b`` (exists 0–3 and 6–9), ``c`` (0–9),
* edges: ``ab`` (a→b, exists 1–3 and 7–8), ``bc`` (b→c, exists 2–3 and 6–9).
"""

import pytest

from repro.eval.bottom_up import BottomUpEvaluator, evaluate_path
from repro.lang import ast


@pytest.fixture(scope="module")
def evaluator(request):
    from repro.model.examples import tiny_example

    return BottomUpEvaluator(tiny_example())


class TestAxes:
    def test_forward_axis_ignores_existence(self, evaluator):
        relation = evaluator.evaluate(ast.F)
        # F relates source to edge and edge to target at *every* time point.
        assert ("a", 0, "ab", 0) in relation
        assert ("ab", 5, "b", 5) in relation
        assert ("b", 9, "bc", 9) in relation

    def test_forward_axis_never_crosses_time(self, evaluator):
        assert all(t1 == t2 for (_o1, t1, _o2, t2) in evaluator.evaluate(ast.F))

    def test_backward_axis_is_reverse(self, evaluator):
        forward = evaluator.evaluate(ast.F).tuples
        backward = evaluator.evaluate(ast.B).tuples
        assert {(o2, t2, o1, t1) for (o1, t1, o2, t2) in forward} == backward

    def test_next_axis(self, evaluator):
        relation = evaluator.evaluate(ast.N)
        assert ("a", 0, "a", 1) in relation
        assert ("ab", 3, "ab", 4) in relation  # existence is not required
        assert ("a", 9, "a", 10) not in relation  # outside the domain

    def test_prev_axis_is_inverse_of_next(self, evaluator):
        nxt = evaluator.evaluate(ast.N).tuples
        prv = evaluator.evaluate(ast.P).tuples
        assert {(o2, t2, o1, t1) for (o1, t1, o2, t2) in nxt} == prv


class TestTests:
    def test_node_and_edge_tests(self, evaluator):
        nodes = evaluator.evaluate(ast.test(ast.is_node()))
        edges = evaluator.evaluate(ast.test(ast.is_edge()))
        assert ("a", 0, "a", 0) in nodes and ("ab", 0, "ab", 0) not in nodes
        assert ("ab", 0, "ab", 0) in edges and ("a", 0, "a", 0) not in edges

    def test_label_test(self, evaluator):
        knows = evaluator.evaluate(ast.test(ast.label("knows")))
        assert ("ab", 5, "ab", 5) in knows  # label holds regardless of existence
        assert ("a", 5, "a", 5) not in knows

    def test_exists_test(self, evaluator):
        exists = evaluator.evaluate(ast.test(ast.exists()))
        assert ("b", 3, "b", 3) in exists
        assert ("b", 4, "b", 4) not in exists
        assert ("ab", 2, "ab", 2) in exists
        assert ("ab", 5, "ab", 5) not in exists

    def test_prop_test(self, evaluator):
        named = evaluator.evaluate(ast.test(ast.prop_eq("name", "b")))
        assert ("b", 0, "b", 0) in named and ("b", 9, "b", 9) in named
        assert ("b", 4, "b", 4) not in named  # no value while it does not exist
        assert ("a", 0, "a", 0) not in named

    def test_time_lt_test(self, evaluator):
        early = evaluator.evaluate(ast.test(ast.time_lt(2)))
        assert ("a", 1, "a", 1) in early and ("a", 2, "a", 2) not in early

    def test_time_eq_sugar(self, evaluator):
        at3 = evaluator.evaluate(ast.test(ast.time_eq(3)))
        assert {(t1, t2) for (_o, t1, _o2, t2) in at3} == {(3, 3)}

    def test_boolean_combinations(self, evaluator):
        both = evaluator.evaluate(ast.test(ast.and_(ast.is_node(), ast.exists())))
        assert ("b", 5, "b", 5) not in both and ("b", 6, "b", 6) in both
        either = evaluator.evaluate(ast.test(ast.or_(ast.label("knows"), ast.label("Person"))))
        assert ("a", 0, "a", 0) in either and ("ab", 0, "ab", 0) in either
        negated = evaluator.evaluate(ast.test(ast.not_(ast.exists())))
        assert ("b", 4, "b", 4) in negated and ("b", 3, "b", 3) not in negated

    def test_path_condition(self, evaluator):
        # Objects from which an existing edge can be reached going forward.
        condition = ast.test(ast.path_test(ast.concat(ast.F, ast.test(ast.exists()))))
        relation = evaluator.evaluate(condition)
        assert ("a", 1, "a", 1) in relation  # ab exists at 1
        assert ("a", 5, "a", 5) not in relation  # no existing outgoing edge at 5
        assert ("ab", 1, "ab", 1) in relation  # edge reaches node b which exists at 1

    def test_satisfies_helper(self, evaluator):
        assert evaluator.satisfies("a", 0, ast.is_node())
        assert not evaluator.satisfies("a", 0, ast.is_edge())


class TestCombinators:
    def test_concat_edge_traversal(self, evaluator):
        # (Node ∧ ∃) / F / (Edge ∧ knows ∧ ∃) / F / (Node ∧ ∃): classic edge hop.
        hop = ast.concat(
            ast.test(ast.and_(ast.is_node(), ast.exists())),
            ast.F,
            ast.test(ast.and_(ast.is_edge(), ast.label("knows"), ast.exists())),
            ast.F,
            ast.test(ast.and_(ast.is_node(), ast.exists())),
        )
        relation = evaluator.evaluate(hop)
        assert ("a", 1, "b", 1) in relation
        assert ("a", 2, "b", 2) in relation
        assert ("b", 2, "c", 2) in relation
        assert ("a", 5, "b", 5) not in relation  # edge does not exist at 5
        assert ("b", 6, "c", 6) in relation

    def test_union(self, evaluator):
        expr = ast.union(ast.test(ast.label("Person")), ast.test(ast.label("knows")))
        relation = evaluator.evaluate(expr)
        assert ("a", 0, "a", 0) in relation and ("ab", 0, "ab", 0) in relation

    def test_union_is_set_union(self, evaluator):
        left = evaluator.evaluate(ast.N)
        right = evaluator.evaluate(ast.P)
        union = evaluator.evaluate(ast.union(ast.N, ast.P))
        assert union.tuples == left.tuples | right.tuples

    def test_bounded_repetition_of_next(self, evaluator):
        expr = ast.repeat(ast.N, 2, 3)
        relation = evaluator.evaluate(expr)
        assert ("a", 0, "a", 2) in relation and ("a", 0, "a", 3) in relation
        assert ("a", 0, "a", 1) not in relation and ("a", 0, "a", 4) not in relation

    def test_zero_repetition_is_identity(self, evaluator):
        expr = ast.repeat(ast.F, 0, 0)
        relation = evaluator.evaluate(expr)
        assert ("a", 4, "a", 4) in relation
        assert ("b", 4, "b", 4) in relation  # identity regardless of existence

    def test_kleene_star_with_existence(self, evaluator):
        # (N/∃)[0,_] from b at time 1: can only move while b keeps existing.
        expr = ast.star(ast.concat(ast.N, ast.test(ast.exists())))
        relation = evaluator.evaluate(expr)
        assert ("b", 1, "b", 3) in relation
        assert ("b", 1, "b", 4) not in relation  # b vanishes at 4
        assert ("b", 1, "b", 7) not in relation  # cannot jump the gap
        assert ("b", 6, "b", 9) in relation

    def test_kleene_star_without_existence_jumps_gaps(self, evaluator):
        expr = ast.star(ast.N)
        relation = evaluator.evaluate(expr)
        assert ("b", 1, "b", 7) in relation

    def test_room_availability_idiom(self, evaluator):
        # (¬∃) / (N/¬∃)[0,_] / ∃ : from a non-existence point to the next existence point.
        expr = ast.concat(
            ast.test(ast.not_(ast.exists())),
            ast.star(ast.concat(ast.N, ast.test(ast.not_(ast.exists())))),
            ast.N,
            ast.test(ast.exists()),
        )
        relation = evaluator.evaluate(expr)
        assert ("b", 4, "b", 6) in relation
        assert ("b", 5, "b", 6) in relation
        assert ("b", 4, "b", 5) not in relation

    def test_evaluate_path_wrapper(self, evaluator):
        from repro.model.examples import tiny_example

        tuples = evaluate_path(tiny_example(), ast.test(ast.label("Person")))
        assert ("c", 0, "c", 0) in tuples

    def test_memoization_returns_same_object(self, evaluator):
        expr = ast.concat(ast.F, ast.test(ast.exists()))
        assert evaluator.evaluate(expr) is evaluator.evaluate(expr)
