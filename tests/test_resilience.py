"""Unit tests for the resilience runtime primitives.

The end-to-end fault behaviour (killed workers, deadline expiry across
backends, crash-recovery equivalence) lives in ``test_chaos.py`` and
``test_workers_parallelism.py``; this module pins the building blocks in
isolation: the failpoint registry, ``Deadline``, ``RetryPolicy``, the
checksummed delta WAL, snapshots + ``recover``, the structured stream
reader, pool lifecycle helpers, and the CLI surface (flag validation and
the ``recover`` verb).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.errors import (
    DeadlineExceeded,
    EvaluationError,
    InjectedFault,
    ReproError,
    RetryBudgetExceeded,
    StreamFormatError,
    WALCorruptError,
    WALError,
    WorkerCrashError,
)
from repro.dataflow import DataflowEngine
from repro.model.io import from_json_dict, save_json, to_json_dict
from repro.model.itpg import IntervalTPG
from repro.parallel import shutdown_all
from repro.parallel.pool import WorkerPool, shutdown_pools
from repro.resilience import (
    Deadline,
    DeltaWAL,
    RetryPolicy,
    failpoints,
    is_retryable,
    load_snapshot,
    recover,
    scan_wal,
    write_snapshot,
)
from repro.streaming import (
    DeltaBatch,
    StreamingEngine,
    parse_stream_line,
    read_delta_stream,
)
from repro.temporal.interval import Interval


def small_graph() -> IntervalTPG:
    graph = IntervalTPG((0, 9))
    graph.add_node("a", "Person", [(0, 4)])
    graph.add_node("b", "Person", [(2, 9)])
    graph.add_node("r", "Room", [(0, 9)])
    graph.add_edge("e0", "meets", "a", "b", [(2, 4)])
    graph.add_edge("v0", "visits", "a", "r", [(1, 3)])
    return graph


QUERY = "MATCH (x:Person) ON g"


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.disarm_all()
    yield
    failpoints.disarm_all()


# --------------------------------------------------------------------- #
# Failpoint registry
# --------------------------------------------------------------------- #
class TestFailpoints:
    def test_unarmed_site_is_a_noop(self):
        assert failpoints.fire("nothing.armed") is None
        assert failpoints.hits("nothing.armed") == 0

    def test_raise_kind_fires_and_counts(self):
        failpoints.arm("unit.raise", "raise", times=2, message="boom")
        with pytest.raises(InjectedFault, match="boom"):
            failpoints.fire("unit.raise")
        with pytest.raises(InjectedFault):
            failpoints.fire("unit.raise")
        # Budget spent: the third call is a no-op but still counted.
        assert failpoints.fire("unit.raise") is None
        assert failpoints.hits("unit.raise") == 3

    def test_times_zero_fires_forever(self):
        failpoints.arm("unit.forever", "raise", times=0)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                failpoints.fire("unit.forever")

    def test_cooperative_kind_returns_spec(self):
        failpoints.arm("unit.coop", "torn", times=1)
        spec = failpoints.fire("unit.coop")
        assert spec is not None and spec.kind == "torn"
        assert failpoints.fire("unit.coop") is None

    def test_disarm_single_site(self):
        failpoints.arm("unit.a", "raise", times=0)
        failpoints.arm("unit.b", "raise", times=0)
        failpoints.disarm("unit.a")
        assert failpoints.fire("unit.a") is None
        with pytest.raises(InjectedFault):
            failpoints.fire("unit.b")

    def test_disarm_all_retires_registry(self):
        failpoints.arm("unit.any", "raise", times=0)
        assert failpoints.registry_dir() is not None
        failpoints.disarm_all()
        assert failpoints.registry_dir() is None
        assert failpoints.fire("unit.any") is None

    def test_registry_is_published_via_environment(self):
        failpoints.arm("unit.env", "raise")
        base = failpoints.registry_dir()
        assert base == os.environ[failpoints.ENV_VAR]
        assert os.path.exists(os.path.join(base, "unit.env.json"))


# --------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------- #
class TestDeadline:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1.5)

    def test_fresh_deadline_is_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        deadline.check()  # must not raise

    def test_check_raises_structured_error_with_progress(self):
        deadline = Deadline(0.001)
        deadline.progress["steps_completed"] = 3
        while not deadline.expired():
            pass
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check()
        error = excinfo.value
        assert error.deadline_seconds == 0.001
        assert error.elapsed >= 0.001
        assert error.partial == {"steps_completed": 3}
        assert deadline.remaining() == 0.0

    def test_exceeded_merges_extra_context(self):
        deadline = Deadline(5.0)
        deadline.progress["rows"] = 7
        error = deadline.exceeded(backend="process")
        assert error.partial == {"rows": 7, "backend": "process"}

    def test_tick_is_amortized(self):
        deadline = Deadline(0.0001)
        while not deadline.expired():
            pass
        # The first CHECK_EVERY - 1 ticks never consult the clock.
        for _ in range(Deadline.CHECK_EVERY - 1):
            deadline.tick()
        with pytest.raises(DeadlineExceeded):
            deadline.tick()

    def test_deadline_exceeded_is_a_timeout_but_not_retryable(self):
        error = Deadline(5.0).exceeded()
        assert isinstance(error, TimeoutError)
        assert isinstance(error, ReproError)
        assert not is_retryable(error)


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_seeded_delays_are_deterministic(self):
        first = list(RetryPolicy(retries=4, seed=42).delays())
        second = list(RetryPolicy(retries=4, seed=42).delays())
        assert first == second
        assert len(first) == 4

    def test_delays_without_jitter_are_capped_exponential(self):
        policy = RetryPolicy(
            retries=5, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            retries=50, base_delay=0.1, max_delay=0.1, jitter=0.5, seed=7
        )
        for delay in policy.delays():
            assert 0.05 <= delay <= 0.15

    def test_retryable_matrix(self):
        assert is_retryable(WorkerCrashError("worker crashed"))
        assert is_retryable(InjectedFault("injected"))
        assert is_retryable(OSError("pipe"))
        assert not is_retryable(EvaluationError("semantic"))
        assert not is_retryable(ValueError("bug"))

    def test_budget_error_carries_attempt_records(self):
        error = RetryBudgetExceeded(
            "spent", attempts=({"backend": "process", "attempt": 1},)
        )
        assert error.attempts == ({"backend": "process", "attempt": 1},)
        assert isinstance(error, EvaluationError)


# --------------------------------------------------------------------- #
# Delta WAL
# --------------------------------------------------------------------- #
class TestDeltaWAL:
    def _batches(self, n=3):
        return [
            DeltaBatch(sequence=i).add_existence("a", 5, 6) for i in range(1, n + 1)
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with DeltaWAL(path) as wal:
            for batch in self._batches(3):
                wal.append(batch)
            assert wal.last_seq == 3
            assert wal.records == 3
        scan = scan_wal(path)
        assert not scan.torn_tail
        assert [record.seq for record in scan.records] == [1, 2, 3]
        assert scan.records[0].batch.sequence == 1
        assert scan.last_seq == 3

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.wal")
        assert scan.records == () and not scan.torn_tail

    def test_append_to_closed_wal_raises(self, tmp_path):
        wal = DeltaWAL(tmp_path / "w.wal")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(DeltaBatch())

    def _tear_tail(self, path):
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])

    def test_torn_tail_is_tolerated_and_repaired_on_open(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with DeltaWAL(path) as wal:
            for batch in self._batches(3):
                wal.append(batch)
        self._tear_tail(path)
        scan = scan_wal(path)
        assert scan.torn_tail
        assert scan.last_seq == 2
        # Re-opening repairs: the half-line is truncated, appends resume.
        with DeltaWAL(path) as wal:
            assert wal.last_seq == 2
            assert wal.append(DeltaBatch(sequence=9)) == 3
        healed = scan_wal(path)
        assert not healed.torn_tail
        assert [record.seq for record in healed.records] == [1, 2, 3]

    def test_corruption_before_tail_is_rejected(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with DeltaWAL(path) as wal:
            for batch in self._batches(3):
                wal.append(batch)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][: len(lines[1]) // 2].rstrip(b"\n") + b"\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(WALCorruptError, match="before the tail") as excinfo:
            scan_wal(path)
        assert excinfo.value.line == 2

    def test_checksum_mismatch_mid_file_is_rejected(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with DeltaWAL(path) as wal:
            for batch in self._batches(2):
                wal.append(batch)
        lines = path.read_text().splitlines()
        envelope = json.loads(lines[0])
        envelope["crc"] = (envelope["crc"] + 1) % (2**32)
        lines[0] = json.dumps(envelope)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALCorruptError):
            scan_wal(path)

    def test_out_of_order_sequence_is_corruption(self, tmp_path):
        path = tmp_path / "deltas.wal"
        with DeltaWAL(path) as wal:
            for batch in self._batches(2):
                wal.append(batch)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[1], lines[0]]) + "\n")
        with pytest.raises(WALCorruptError, match="not greater"):
            scan_wal(path)

    def test_torn_append_failpoint_leaves_recoverable_prefix(self, tmp_path):
        path = tmp_path / "deltas.wal"
        wal = DeltaWAL(path)
        wal.append(DeltaBatch(sequence=1))
        failpoints.arm("wal.append", "torn", times=1)
        with pytest.raises(InjectedFault):
            wal.append(DeltaBatch(sequence=2))
        wal.close()
        scan = scan_wal(path)
        assert scan.torn_tail
        assert scan.last_seq == 1


# --------------------------------------------------------------------- #
# Snapshots + recover
# --------------------------------------------------------------------- #
class TestDurableWrites:
    """fsync discipline: records, fresh files, and renamed snapshots.

    An atomic rename (or an appended record) that never reaches the disk
    is not durable — a power cut resurrects the old state or loses the
    file entirely.  These tests pin the fsync calls with a counting
    monkeypatch instead of pulling the plug.
    """

    def _count_fsyncs(self, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real(fd))[1])
        return calls

    def test_wal_append_fsyncs_by_default(self, tmp_path, monkeypatch):
        wal = DeltaWAL(str(tmp_path / "d.wal"))
        calls = self._count_fsyncs(monkeypatch)
        wal.append(DeltaBatch(sequence=1).add_existence("a", 5, 6))
        wal.append(DeltaBatch(sequence=2).add_existence("a", 7, 8))
        wal.close()
        assert len(calls) >= 2  # one per appended record

    def test_wal_fsync_opt_out_defers_to_sync(self, tmp_path, monkeypatch):
        wal = DeltaWAL(str(tmp_path / "d.wal"), fsync=False)
        calls = self._count_fsyncs(monkeypatch)
        wal.append(DeltaBatch(sequence=1).add_existence("a", 5, 6))
        assert calls == []  # batch style: appends only flush
        wal.sync()
        assert len(calls) == 1
        wal.close()

    def test_fresh_wal_persists_its_directory_entry(self, tmp_path, monkeypatch):
        from repro.resilience import wal as wal_module

        synced = []
        monkeypatch.setattr(
            wal_module, "fsync_dir", lambda path: synced.append(str(path))
        )
        DeltaWAL(str(tmp_path / "fresh.wal")).close()
        assert synced == [str(tmp_path / "fresh.wal")]
        # Re-opening an existing WAL does not need the directory sync.
        synced.clear()
        DeltaWAL(str(tmp_path / "fresh.wal")).close()
        assert synced == []

    def test_snapshot_fsyncs_file_then_directory(self, tmp_path, monkeypatch):
        from repro.resilience import snapshot as snapshot_module

        events = []
        real_fsync = os.fsync
        real_replace = os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync-file"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        monkeypatch.setattr(
            snapshot_module, "fsync_dir", lambda path: events.append("fsync-dir")
        )
        session = StreamingEngine(small_graph())
        session.register(QUERY, name="people")
        write_snapshot(session, tmp_path / "state.snap")
        assert events == ["fsync-file", "replace", "fsync-dir"]

    def test_fsync_dir_syncs_the_parent_directory(self, tmp_path, monkeypatch):
        from repro.resilience.wal import fsync_dir

        target = tmp_path / "some.file"
        target.write_text("x")
        fds = self._count_fsyncs(monkeypatch)
        fsync_dir(target)
        assert len(fds) == 1

    def test_attach_wal_fsync_passthrough(self, tmp_path, monkeypatch):
        session = StreamingEngine(small_graph())
        session.attach_wal(str(tmp_path / "d.wal"), fsync=False)
        calls = self._count_fsyncs(monkeypatch)
        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        assert calls == []  # opted out: the batch was only flushed
        session.wal.sync()
        assert len(calls) == 1
        session.wal.close()


class TestSnapshotRecovery:
    def _session(self):
        session = StreamingEngine(small_graph())
        session.register(QUERY, name="people")
        return session

    def test_snapshot_roundtrip(self, tmp_path):
        path = tmp_path / "state.snap"
        meta = write_snapshot(self._session(), path)
        assert meta["queries"] == [{"name": "people", "text": QUERY}]
        document = load_snapshot(path)
        assert document["wal_seq"] == 0
        assert from_json_dict(document["graph"]).domain == Interval(0, 9)

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not-a-snapshot.json"
        path.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(WALError, match="not a streaming snapshot"):
            load_snapshot(path)

    def test_snapshot_requires_query_text(self, tmp_path):
        from dataclasses import replace

        from repro.datagen.random_graphs import random_match_query

        session = StreamingEngine(small_graph())
        session.register(replace(random_match_query(38), text=None), name="opaque")
        with pytest.raises(WALError, match="MATCH text is unknown"):
            write_snapshot(session, tmp_path / "state.snap")

    def test_recover_replays_only_the_wal_tail(self, tmp_path):
        wal_path = tmp_path / "deltas.wal"
        snap_path = tmp_path / "state.snap"
        session = self._session()
        session.attach_wal(str(wal_path))
        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        write_snapshot(session, snap_path)  # captures WAL position 1
        session.apply(
            DeltaBatch(sequence=2)
            .extend_domain(14)
            .add_node("c", "Person", [(10, 12)])
        )
        session.wal.close()
        recovered, report = recover(snap_path, wal_path)
        assert report.skipped == 1 and report.replayed == 1
        assert not report.torn_tail
        assert report.queries == ("people",)
        assert recovered.wal_seq == 2
        assert recovered.graph.domain == Interval(0, 14)
        assert recovered.table("people").as_set() == session.table("people").as_set()
        assert "1 WAL record(s) replayed" in report.summary()

    def test_recover_without_wal_is_snapshot_only(self, tmp_path):
        snap_path = tmp_path / "state.snap"
        write_snapshot(self._session(), snap_path)
        recovered, report = recover(snap_path)
        assert report.replayed == 0 and report.wal_path is None
        assert recovered.table("people").as_set()

    def test_recovered_session_resumes_durably(self, tmp_path):
        """Recovery → reattach WAL → new appends land after the old tail."""
        wal_path = tmp_path / "deltas.wal"
        snap_path = tmp_path / "state.snap"
        session = self._session()
        session.attach_wal(str(wal_path))
        session.apply(DeltaBatch(sequence=1).add_existence("a", 5, 7))
        write_snapshot(session, snap_path)
        session.wal.close()
        recovered, _report = recover(snap_path, wal_path)
        recovered.attach_wal(str(wal_path))
        recovered.apply(DeltaBatch(sequence=2).add_existence("b", 0, 1))
        recovered.wal.close()
        assert [record.seq for record in scan_wal(wal_path).records] == [1, 2]

    def test_report_to_dict_is_json_serializable(self, tmp_path):
        snap_path = tmp_path / "state.snap"
        write_snapshot(self._session(), snap_path)
        _, report = recover(snap_path)
        assert json.loads(json.dumps(report.to_dict()))["queries"] == ["people"]


# --------------------------------------------------------------------- #
# Structured stream reading
# --------------------------------------------------------------------- #
class TestStreamReader:
    def test_invalid_json_carries_position(self):
        with pytest.raises(StreamFormatError) as excinfo:
            parse_stream_line("{not json", path="d.jsonl", number=4)
        error = excinfo.value
        assert error.path == "d.jsonl" and error.line == 4
        assert "d.jsonl:4: invalid JSON" in str(error)

    def test_non_object_payload_rejected(self):
        with pytest.raises(StreamFormatError, match="expected a JSON object"):
            parse_stream_line("[1, 2]", path="d.jsonl", number=1)

    def test_non_integer_sequence_rejected(self):
        with pytest.raises(StreamFormatError, match="sequence must be an"):
            parse_stream_line('{"sequence": "seven"}', path="d.jsonl", number=2)

    def test_malformed_batch_carries_sequence(self):
        line = json.dumps({"sequence": 7, "nodes": [{"bogus": True}]})
        with pytest.raises(StreamFormatError) as excinfo:
            parse_stream_line(line, path="d.jsonl", number=3)
        assert excinfo.value.sequence == 7

    def test_reader_skips_blanks_and_comments(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        path.write_text(
            "# header comment\n\n"
            + json.dumps(DeltaBatch(sequence=1).to_json_dict())
            + "\n"
        )
        records = list(read_delta_stream(path))
        assert len(records) == 1
        number, batch = records[0]
        assert number == 3 and batch.sequence == 1

    def test_malformed_line_leaves_engine_state_untouched(self, tmp_path):
        session = StreamingEngine(small_graph())
        session.register(QUERY, name="people")
        before = session.table("people").as_set()
        with pytest.raises(StreamFormatError):
            parse_stream_line("{broken", path="d.jsonl", number=1)
        assert session.table("people").as_set() == before
        assert session.last_sequence is None


# --------------------------------------------------------------------- #
# Pool lifecycle
# --------------------------------------------------------------------- #
class TestPoolLifecycle:
    def test_worker_pool_is_a_context_manager(self):
        with WorkerPool(workers=1) as pool:
            assert pool.workers == 1
        # Closed pools must not leak into the shared registry.
        shutdown_pools()

    def test_shutdown_all_is_exported_alias(self):
        assert shutdown_all is shutdown_pools
        shutdown_all()  # idempotent on an empty registry


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCliResilience:
    def _graph(self, tmp_path):
        path = tmp_path / "graph.json"
        save_json(small_graph(), path)
        return str(path)

    def test_wal_requires_stream(self, tmp_path, capsys):
        code = cli_main(
            ["query", QUERY, "--graph", self._graph(tmp_path), "--wal", "w.wal"]
        )
        assert code == 2
        assert "--wal and --snapshot require --stream" in capsys.readouterr().err

    def test_snapshot_every_requires_snapshot(self, tmp_path, capsys):
        code = cli_main(
            ["query", QUERY, "--graph", self._graph(tmp_path), "--snapshot-every", "3"]
        )
        assert code == 2
        assert "--snapshot-every requires --snapshot" in capsys.readouterr().err

    def test_snapshot_every_must_be_positive(self, tmp_path, capsys):
        # Validated by argparse itself now, before any file is touched.
        with pytest.raises(SystemExit) as exit_info:
            cli_main(
                [
                    "query", QUERY, "--graph", self._graph(tmp_path),
                    "--stream", "d.jsonl", "--snapshot", "s.snap",
                    "--snapshot-every", "0",
                ]
            )
        assert exit_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_deadline_requires_dataflow_engine(self, tmp_path, capsys):
        code = cli_main(
            [
                "query", QUERY, "--graph", self._graph(tmp_path),
                "--engine", "reference", "--deadline", "5",
            ]
        )
        assert code == 2
        assert "apply to the dataflow engine only" in capsys.readouterr().err

    def test_deadline_flag_cancels_query(self, tmp_path, capsys):
        failpoints.arm("engine.step", "sleep", seconds=0.2, times=0)
        code = cli_main(
            [
                "query", QUERY, "--graph", self._graph(tmp_path),
                "--deadline", "0.05",
            ]
        )
        assert code == 2
        assert "deadline" in capsys.readouterr().err

    def test_stream_wal_snapshot_then_recover_verb(self, tmp_path, capsys):
        graph = self._graph(tmp_path)
        deltas = tmp_path / "deltas.jsonl"
        deltas.write_text(
            "\n".join(
                json.dumps(batch.to_json_dict())
                for batch in (
                    DeltaBatch(sequence=1).add_existence("a", 5, 7),
                    DeltaBatch(sequence=2)
                    .extend_domain(14)
                    .add_node("c", "Person", [(10, 12)]),
                )
            )
            + "\n"
        )
        wal = tmp_path / "deltas.wal"
        snap = tmp_path / "state.snap"
        code = cli_main(
            [
                "query", QUERY, "--graph", graph,
                "--stream", str(deltas),
                "--wal", str(wal), "--snapshot", str(snap),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wal {wal}" in out and "snapshots" in out
        assert wal.exists() and snap.exists()

        recovered_graph = tmp_path / "recovered.json"
        code = cli_main(
            [
                "recover", "--snapshot", str(snap), "--wal", str(wal),
                "--match", QUERY, "--limit", "2",
                "--output", str(recovered_graph),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered from" in out
        assert "output size" in out
        assert recovered_graph.exists()
        assert from_json_dict(
            json.loads(recovered_graph.read_text())
        ).domain == Interval(0, 14)

    def test_recover_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        code = cli_main(["recover", "--snapshot", str(tmp_path / "absent.snap")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Engine integration: explain() exposes the resilience configuration
# --------------------------------------------------------------------- #
class TestEngineExplain:
    def test_explain_reports_deadline_and_retry(self):
        engine = DataflowEngine(
            small_graph(),
            deadline_seconds=30.0,
            retry=RetryPolicy(retries=3, degrade=False),
        )
        plan = engine.explain(QUERY)
        assert plan["deadline_seconds"] == 30.0
        assert plan["retry"]["retries"] == 3
        assert plan["retry"]["degrade"] is False
        assert plan["last_degradation"] is None

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            DataflowEngine(small_graph(), deadline_seconds=-1.0)
