"""Unit tests for the unified CI bench-gate driver (benchmarks/ci_gate.py).

The skip/engage rule of the core-sensitive speedup gates used to live
only in ``bench_fig3_parallelism.check_against`` plus a workflow
comment; it now lives in ``ci_gate.speedup_gate_decision`` and is pinned
here once, together with the manifest parsing (including the
pre-3.11 mini-TOML fallback) and command construction.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import ci_gate
from ci_gate import (
    Gate,
    build_command,
    load_manifest,
    parse_manifest_text,
    speedup_gate_decision,
)

SAMPLE_MANIFEST = """
# comment line
[gate.alpha]
harness = "bench_alpha.py"   # trailing comment
out = "smoke_alpha.json"
baseline = "BENCH_A.json"
tolerance = 0.1
core_sensitive = true
min_cores = 2

[gate.beta]
harness = "bench_beta.py"
out = "smoke_beta.json"
args = ["--rounds", "2"]
"""


def make_baseline(tmp_path: Path, scale: str = "S1", cpu_count: int | None = 4) -> Path:
    path = tmp_path / "BENCH_X.json"
    section: dict = {"focus_median_speedup": {"process": {"4": 1.5}}}
    if cpu_count is not None:
        section["cpu_count"] = cpu_count
    path.write_text(json.dumps({"results": {scale: section}}))
    return path


# --------------------------------------------------------------------- #
# Manifest parsing
# --------------------------------------------------------------------- #
class TestManifest:
    def test_parse_sample(self):
        gates = parse_manifest_text(SAMPLE_MANIFEST)
        assert [g.name for g in gates] == ["alpha", "beta"]
        alpha, beta = gates
        assert alpha.baseline == "BENCH_A.json"
        assert alpha.tolerance == pytest.approx(0.1)
        assert alpha.core_sensitive and alpha.min_cores == 2
        assert beta.baseline is None and not beta.core_sensitive
        assert beta.args == ("--rounds", "2")

    def test_mini_parser_agrees_with_tomllib(self):
        if ci_gate.tomllib is None:
            pytest.skip("running on < 3.11: tomllib side unavailable")
        saved = ci_gate.tomllib
        try:
            ci_gate.tomllib = None
            mini = parse_manifest_text(SAMPLE_MANIFEST)
        finally:
            ci_gate.tomllib = saved
        assert mini == parse_manifest_text(SAMPLE_MANIFEST)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown manifest keys"):
            parse_manifest_text(
                '[gate.x]\nharness = "a.py"\nout = "o.json"\ntypo = 1\n'
            )

    def test_empty_manifest_rejected(self):
        with pytest.raises(ValueError, match="no \\[gate"):
            parse_manifest_text("# nothing here\n")

    def test_repo_manifest_is_consistent(self):
        """The committed gates.toml names real harnesses and baselines."""
        gates = load_manifest()
        names = [gate.name for gate in gates]
        assert "streaming" in names, "the PR 5 bench must register in the manifest"
        repo = BENCH_DIR.parent
        for gate in gates:
            assert gate.harness_path.exists(), f"missing harness {gate.harness}"
            if gate.baseline:
                assert (repo / gate.baseline).exists(), (
                    f"gate {gate.name} references missing baseline {gate.baseline}"
                )
                assert gate.tolerance is not None, (
                    f"gate {gate.name} has a baseline but no tolerance"
                )


# --------------------------------------------------------------------- #
# Core-count skip/engage rule
# --------------------------------------------------------------------- #
class TestSpeedupGateDecision:
    def test_too_few_cores_skips(self, tmp_path):
        baseline = make_baseline(tmp_path)
        decision = speedup_gate_decision(baseline, "S1", cores=1, min_cores=2)
        assert not decision.engage
        assert "no parallel speedup is physically possible" in decision.reason

    def test_missing_baseline_skips(self, tmp_path):
        decision = speedup_gate_decision(tmp_path / "absent.json", "S1", cores=4)
        assert not decision.engage
        assert "not found" in decision.reason

    def test_invalid_json_skips(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        decision = speedup_gate_decision(path, "S1", cores=4)
        assert not decision.engage
        assert "not valid JSON" in decision.reason

    def test_missing_scale_section_skips(self, tmp_path):
        baseline = make_baseline(tmp_path, scale="S4")
        decision = speedup_gate_decision(baseline, "S1", cores=4)
        assert not decision.engage
        assert "no S1 section" in decision.reason

    def test_core_count_mismatch_skips_with_regeneration_command(self, tmp_path):
        baseline = make_baseline(tmp_path, cpu_count=1)
        decision = speedup_gate_decision(
            baseline, "S1", cores=4, harness="bench_fig3_parallelism.py"
        )
        assert not decision.engage
        assert "recorded on 1 core(s)" in decision.reason
        assert (
            f"python bench_fig3_parallelism.py --scale S1 --out {baseline}"
            in decision.reason
        )

    def test_unrecorded_core_count_skips(self, tmp_path):
        baseline = make_baseline(tmp_path, cpu_count=None)
        decision = speedup_gate_decision(baseline, "S1", cores=4)
        assert not decision.engage

    def test_matching_cores_engages_with_reference(self, tmp_path):
        baseline = make_baseline(tmp_path, cpu_count=4)
        decision = speedup_gate_decision(baseline, "S1", cores=4)
        assert decision.engage
        assert decision.reference["focus_median_speedup"]["process"]["4"] == 1.5

    def test_bench_fig3_uses_the_shared_rule(self):
        """The harness delegates instead of re-implementing the rule."""
        import bench_fig3_parallelism

        assert (
            bench_fig3_parallelism.speedup_gate_decision
            is speedup_gate_decision
        )


# --------------------------------------------------------------------- #
# Command construction
# --------------------------------------------------------------------- #
class TestBuildCommand:
    GATE = Gate(
        name="x",
        harness="bench_x.py",
        out="smoke_x.json",
        baseline="BENCH_X.json",
        tolerance=0.25,
        args=("--rounds", "2"),
    )

    def test_smoke_mode_checks_baseline(self, tmp_path):
        command = build_command(self.GATE, "smoke", tmp_path)
        assert command[0] == sys.executable
        assert command[1].endswith("bench_x.py")
        assert "--smoke" in command
        assert "--rounds" in command and "2" in command
        assert str(tmp_path / "smoke_x.json") in command
        check = command.index("--check-against")
        assert command[check + 1].endswith("BENCH_X.json")
        tolerance = command.index("--tolerance")
        assert command[tolerance + 1] == "0.25"

    def test_smoke_mode_without_baseline_has_no_check(self, tmp_path):
        gate = Gate(name="y", harness="bench_y.py", out="smoke_y.json")
        command = build_command(gate, "smoke", tmp_path)
        assert "--check-against" not in command
        assert "--tolerance" not in command

    def test_full_mode_regenerates_baseline_candidate(self, tmp_path):
        command = build_command(self.GATE, "full", tmp_path)
        assert "--smoke" not in command
        assert "--check-against" not in command
        out = command.index("--out")
        assert command[out + 1] == str(tmp_path / "BENCH_X.json")

    def test_full_mode_falls_back_to_out_name(self, tmp_path):
        gate = Gate(name="y", harness="bench_y.py", out="smoke_y.json")
        command = build_command(gate, "full", tmp_path)
        out = command.index("--out")
        assert command[out + 1] == str(tmp_path / "smoke_y.json")


class TestDriver:
    def test_unknown_only_gate_errors(self, tmp_path, capsys):
        gates = [Gate(name="a", harness="bench_a.py", out="o.json")]
        assert ci_gate.run_gates(gates, "smoke", tmp_path, only="nope") == 2
        assert "no gate named" in capsys.readouterr().err

    def test_driver_reports_all_failures(self, tmp_path, capsys, monkeypatch):
        gates = parse_manifest_text(SAMPLE_MANIFEST)
        calls = []

        class FakeResult:
            def __init__(self, code):
                self.returncode = code

        def fake_run(command, **kwargs):
            calls.append(command)
            return FakeResult(1 if "bench_alpha.py" in command[1] else 0)

        monkeypatch.setattr(ci_gate.subprocess, "run", fake_run)
        assert ci_gate.run_gates(gates, "smoke", tmp_path) == 1
        err = capsys.readouterr().err
        assert "gate alpha failed" in err
        assert "FAILED gates: alpha" in err
        # The failing gate did not stop the remaining ones.
        assert len(calls) == 2
