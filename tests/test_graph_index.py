"""GraphIndex must answer every query exactly like the uncompiled graph."""

import pytest

from repro.datagen.random_graphs import random_itpg
from repro.dataflow.steps import condition_times
from repro.errors import UnsupportedFragmentError
from repro.lang import ast
from repro.model.convert import itpg_to_tpg
from repro.perf import GraphIndex, graph_index_for
from repro.temporal import IntervalSet

CONDITIONS = [
    ast.is_node(),
    ast.is_edge(),
    ast.exists(),
    ast.label("Person"),
    ast.label("meets"),
    ast.prop_eq("risk", "high"),
    ast.prop_eq("test", "pos"),
    ast.time_lt(3),
    ast.time_eq(1),
    ast.and_(ast.is_node(), ast.label("Person"), ast.exists()),
    ast.and_(ast.label("Person"), ast.prop_eq("risk", "low"), ast.exists()),
    ast.or_(ast.label("Person"), ast.label("Room")),
    ast.not_(ast.exists()),
    ast.and_(ast.not_(ast.prop_eq("risk", "low")), ast.exists()),
    ast.TrueTest(),
]


@pytest.fixture(scope="module")
def graphs(request):
    from repro.model.examples import contact_tracing_example, tiny_example

    return [contact_tracing_example(), tiny_example()] + [
        random_itpg(seed) for seed in range(4)
    ]


class TestCompiledStructures:
    def test_adjacency_matches_graph(self, graphs):
        for graph in graphs:
            index = GraphIndex(graph)
            for node in graph.nodes():
                assert frozenset(index.out_adjacency[node]) == graph.out_edges(node)
                assert frozenset(index.in_adjacency[node]) == graph.in_edges(node)
            for edge in graph.edges():
                assert index.edge_source[edge] == graph.source(edge)
                assert index.edge_target[edge] == graph.target(edge)

    def test_label_buckets_partition_objects(self, graphs):
        for graph in graphs:
            index = GraphIndex(graph)
            for node in graph.nodes():
                assert node in index.node_label_buckets[graph.label(node)]
            for edge in graph.edges():
                assert edge in index.edge_label_buckets[graph.label(edge)]
            bucketed = {
                obj
                for members in index.node_label_buckets.values()
                for obj in members
            } | {
                obj
                for members in index.edge_label_buckets.values()
                for obj in members
            }
            assert bucketed == set(graph.objects())

    def test_prop_buckets_cover_assignments(self, graphs):
        for graph in graphs:
            index = GraphIndex(graph)
            for obj in graph.objects():
                for name in graph.property_names(obj):
                    for entry in graph.property_family(obj, name):
                        assert obj in index.prop_value_buckets[(name, entry.value)]

    def test_existence_is_shared(self, graphs):
        for graph in graphs:
            index = GraphIndex(graph)
            for obj in graph.objects():
                assert index.existence[obj] == graph.existence(obj)


class TestConditionEvaluation:
    @pytest.mark.parametrize("condition", CONDITIONS, ids=repr)
    def test_times_for_matches_condition_times(self, graphs, condition):
        for graph in graphs:
            index = GraphIndex(graph)
            for obj in graph.objects():
                assert index.times_for(obj, condition) == condition_times(
                    graph, obj, condition
                ), (obj, condition)

    @pytest.mark.parametrize("condition", CONDITIONS, ids=repr)
    def test_condition_table_is_exact(self, graphs, condition):
        """Bucket narrowing must never drop a satisfying object."""
        for graph in graphs:
            index = GraphIndex(graph)
            expected = {}
            for obj in graph.objects():
                times = condition_times(graph, obj, condition)
                if not times.is_empty():
                    expected[obj] = times
            assert index.condition_table(condition) == expected

    def test_condition_table_memoized(self, graphs):
        index = GraphIndex(graphs[0])
        condition = ast.and_(ast.label("Person"), ast.exists())
        assert index.condition_table(condition) is index.condition_table(condition)

    def test_path_condition_needs_resolver(self, graphs):
        index = GraphIndex(graphs[0])
        condition = ast.path_test(ast.F)
        with pytest.raises(UnsupportedFragmentError):
            index.times_for("p1", condition)

    def test_path_condition_with_resolver(self, graphs):
        graph = graphs[0]
        index = GraphIndex(graph)
        obj = next(iter(graph.nodes()))
        times = IntervalSet.single(0, 2)
        condition = ast.path_test(ast.F)
        resolved = index.times_for(obj, condition, lambda _pt: {obj: times})
        assert resolved == times


class TestSharedCache:
    def test_same_graph_same_index(self):
        graph = random_itpg(0)
        assert graph_index_for(graph) is graph_index_for(graph)

    def test_distinct_graphs_distinct_indexes(self):
        assert graph_index_for(random_itpg(1)) is not graph_index_for(random_itpg(2))

    def test_point_based_graph_is_converted(self):
        itpg = random_itpg(3)
        tpg = itpg_to_tpg(itpg)
        index = graph_index_for(tpg)
        assert index is graph_index_for(tpg)
        assert set(index.objects) == set(tpg.objects())
        for obj in tpg.objects():
            assert index.existence[obj] == tpg.existence_intervals(obj)

    def test_engines_on_one_point_graph_share_the_index(self):
        from repro.dataflow import DataflowEngine

        tpg = itpg_to_tpg(random_itpg(4))
        first = DataflowEngine(tpg)
        second = DataflowEngine(tpg)
        assert first.index is second.index
        assert first.graph is second.graph  # the one-time conversion is reused

    def test_index_dies_with_its_graph(self):
        import gc
        import weakref

        graph = random_itpg(5)
        ref = weakref.ref(graph)
        graph_index_for(graph)
        del graph
        gc.collect()
        assert ref() is None
