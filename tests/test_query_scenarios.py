"""Scenario tests: additional hand-verified queries over the running example.

These complement the golden Q1–Q12 tables with further MATCH clauses
whose answers can be read directly off Figure 1, exercising combinations
(incoming edges, edge-property filters, time windows, chained hops,
label tests inside path expressions) that the numbered queries do not
cover.  Every scenario is checked on both engines.
"""

import pytest

from repro.dataflow import DataflowEngine
from repro.eval import ReferenceEngine


@pytest.fixture(scope="module")
def engines():
    from repro.model.examples import contact_tracing_example

    graph = contact_tracing_example()
    return ReferenceEngine(graph), DataflowEngine(graph)


def both(engines, query):
    reference, dataflow = engines
    ref = reference.match(query)
    df = dataflow.match(query)
    assert ref.as_set() == df.as_set()
    return ref


class TestStructuralScenarios:
    def test_who_cohabits_with_whom(self, engines):
        table = both(engines, "MATCH (x:Person)-[:cohabits]->(y:Person) ON g")
        pairs = {(x, y) for (x, _xt), (y, _yt) in table.rows}
        assert pairs == {("n2", "n3")}
        times = {xt for (_x, xt), _y in table.rows}
        assert times == set(range(3, 8))

    def test_meetings_in_the_park(self, engines):
        table = both(
            engines, "MATCH (x:Person)-[z:meets {loc = 'park'}]->(y:Person) ON g"
        )
        edges = {z for _x, (z, _zt), _y in table.rows}
        assert edges == {"e1", "e2", "e11"}

    def test_meetings_in_the_cafe_at_specific_time(self, engines):
        table = both(
            engines,
            "MATCH (x:Person {time = '5'})-[z:meets {loc = 'cafe'}]->(y:Person) ON g",
        )
        assert {(x, z, y) for (x, _), (z, _), (y, _) in table.rows} == {("n7", "e10", "n6")}

    def test_rooms_in_the_cs_building(self, engines):
        table = both(engines, "MATCH (r:Room {bldg = 'CS'}) ON g")
        assert {obj for ((obj, _t),) in table.rows} == {"n4"}
        assert len(table) == 6  # n4 exists during [3, 8]

    def test_visitors_of_the_math_building(self, engines):
        table = both(
            engines,
            "MATCH (p:Person)-[:visits]->(r:Room {bldg = 'MATH'}) ON g",
        )
        visitors = {p for (p, _pt), _r in table.rows}
        assert visitors == {"n1", "n6"}

    def test_incoming_visits_per_room(self, engines):
        table = both(engines, "MATCH (r:Room)<-[:visits]-(p:Person {risk = 'high'}) ON g")
        pairs = {(r, p) for (r, _rt), (p, _pt) in table.rows}
        assert pairs == {("n4", "n3"), ("n4", "n7")}

    def test_two_hop_room_sharing(self, engines):
        table = both(
            engines,
            "MATCH (a:Person {name = 'Zoe'})-[:visits]->(r:Room)<-[:visits]-(b:Person) ON g",
        )
        others = {b for _a, _r, (b, _bt) in table.rows}
        assert others == {"n3", "n6", "n7"}  # Zoe herself matches the pattern too


class TestTemporalScenarios:
    def test_bob_after_becoming_high_risk(self, engines):
        table = both(engines, "MATCH (x:Person {name = 'Bob' AND time >= '5'}) ON g")
        assert {t for ((_obj, t),) in table.rows} == set(range(5, 10))

    def test_state_one_step_before_risk_change(self, engines):
        # Bob is high-risk from time 5; one step earlier he was low-risk.
        table = both(
            engines,
            "MATCH (x:Person {name = 'Bob' AND risk = 'high'})-/PREV/-"
            "(y:Person {risk = 'low'}) ON g",
        )
        assert {(xt, yt) for (_x, xt), (_y, yt) in table.rows} == {(5, 4)}

    def test_window_before_positive_test_bounded(self, engines):
        table = both(
            engines,
            "MATCH (x:Person {test = 'pos'})-/PREV[1,3]/-(y:Person) ON g",
        )
        assert {yt for _x, (_y, yt) in table.rows} == {6, 7, 8}

    def test_future_of_a_meeting(self, engines):
        # From Mia's meeting with Eve at time 4, walk forward while Eve exists.
        table = both(
            engines,
            "MATCH (x:Person {name = 'Mia'})-/FWD/:meets/FWD/NEXT[2,4]/-(y:Person) ON g",
        )
        assert {yt for _x, (_y, yt) in table.rows} == {6, 7, 8}

    def test_room_occupancy_window(self, engines):
        table = both(
            engines,
            "MATCH (p:Person)-[:visits]->(r:Room {time < '6'}) ON g",
        )
        assert {(p, t) for (p, t), _r in table.rows} == {("n6", 5), ("n1", 5)}

    def test_union_of_meets_and_cohabits_exposure(self, engines):
        table = both(
            engines,
            "MATCH (x:Person {risk = 'high'})-"
            "/(FWD/:meets/FWD + FWD/:cohabits/FWD)/NEXT*/-({test = 'pos'}) ON g",
        )
        # Adding cohabits does not add new people: only Bob and Mia cohabit
        # and neither tests positive.
        assert {obj for ((obj, _t),) in table.rows} == {"n3", "n7"}

    def test_backward_structural_with_temporal_window(self, engines):
        table = both(
            engines,
            "MATCH (r:Room {bldg = 'CS'})<-[:visits]-(p:Person)-/NEXT[0,12]/-"
            "({test = 'pos'}) ON g",
        )
        assert {p for _r, (p, _pt) in table.rows} == {"n6"}
