"""Tests for the synthetic workload generators."""

import pytest

from repro.datagen import (
    ContactTracingConfig,
    SCALE_FACTORS,
    TrajectoryConfig,
    TrajectorySimulator,
    default_scale_name,
    generate_contact_tracing_graph,
    random_itpg,
    random_path_expression,
    scale_factor,
)
from repro.datagen.scale import scales_up_to
from repro.datagen.trajectory import co_location_contacts
from repro.lang.fragments import classify
from repro.model import graph_statistics


class TestTrajectorySimulator:
    def test_deterministic_given_seed(self):
        config = TrajectoryConfig(num_persons=20, seed=5)
        a = TrajectorySimulator(config).generate()
        b = TrajectorySimulator(config).generate()
        assert a == b

    def test_different_seeds_differ(self):
        a = TrajectorySimulator(TrajectoryConfig(num_persons=20, seed=1)).generate()
        b = TrajectorySimulator(TrajectoryConfig(num_persons=20, seed=2)).generate()
        assert a != b

    def test_visits_within_domain(self):
        config = TrajectoryConfig(num_persons=30, num_windows=48, seed=9)
        for visit in TrajectorySimulator(config).generate():
            assert 0 <= visit.start <= visit.end <= 47
            assert 0 <= visit.location < config.num_locations
            assert 0 <= visit.person < config.num_persons

    def test_every_person_has_at_least_one_visit(self):
        config = TrajectoryConfig(num_persons=25, seed=3)
        persons = {v.person for v in TrajectorySimulator(config).generate()}
        assert persons == set(range(25))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryConfig(num_rooms=100, num_locations=10)
        with pytest.raises(ValueError):
            TrajectoryConfig(num_persons=0)

    def test_location_weights_are_decreasing(self):
        weights = TrajectorySimulator(TrajectoryConfig()).location_weights()
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_co_location_contacts_overlap(self):
        config = TrajectoryConfig(num_persons=40, num_locations=10, num_rooms=2, seed=4)
        visits = TrajectorySimulator(config).generate()
        by_person_location = {}
        for v in visits:
            by_person_location.setdefault((v.person, v.location), []).append(v)
        for a, b, location, start, end in co_location_contacts(visits):
            assert a < b
            assert start <= end


class TestContactTracingGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(num_persons=40, num_locations=20, num_rooms=5, seed=2),
            positivity_rate=0.1,
            seed=4,
        )
        return generate_contact_tracing_graph(config)

    def test_graph_validates(self, graph):
        graph.validate()

    def test_node_and_edge_labels(self, graph):
        node_labels = {graph.label(n) for n in graph.nodes()}
        edge_labels = {graph.label(e) for e in graph.edges()}
        assert node_labels == {"Person", "Room"}
        assert edge_labels <= {"visits", "meets"}
        assert "visits" in edge_labels

    def test_visits_edges_connect_person_to_room(self, graph):
        for edge in graph.edges():
            src, tgt = graph.endpoints(edge)
            if graph.label(edge) == "visits":
                assert graph.label(src) == "Person" and graph.label(tgt) == "Room"
            else:
                assert graph.label(src) == "Person" and graph.label(tgt) == "Person"

    def test_meets_edges_are_symmetric(self, graph):
        forward = {
            graph.endpoints(e)
            for e in graph.edges()
            if graph.label(e) == "meets" and not str(e).endswith("_rev")
        }
        backward = {
            graph.endpoints(e)
            for e in graph.edges()
            if graph.label(e) == "meets" and str(e).endswith("_rev")
        }
        assert {(b, a) for a, b in forward} == backward

    def test_risk_share_close_to_configured(self, graph):
        persons = [n for n in graph.nodes() if graph.label(n) == "Person"]
        high = [
            p
            for p in persons
            if graph.property_family(p, "risk").when_equals("high")
        ]
        share = len(high) / len(persons)
        assert 0.05 <= share <= 0.35

    def test_positive_tests_present(self, graph):
        positives = [
            n
            for n in graph.nodes()
            if graph.label(n) == "Person" and graph.property_family(n, "test")
        ]
        assert positives

    def test_positivity_rate_zero_gives_no_positives(self):
        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(num_persons=30, seed=8), positivity_rate=0.0
        )
        graph = generate_contact_tracing_graph(config)
        assert all(not graph.property_family(n, "test") for n in graph.nodes())

    def test_determinism(self):
        config = ContactTracingConfig(
            trajectory=TrajectoryConfig(num_persons=15, seed=6), seed=3
        )
        a = generate_contact_tracing_graph(config)
        b = generate_contact_tracing_graph(config)
        assert graph_statistics(a) == graph_statistics(b)
        assert set(a.objects()) == set(b.objects())

    def test_with_positivity_copies_config(self):
        config = ContactTracingConfig(positivity_rate=0.02)
        bumped = config.with_positivity(0.1)
        assert bumped.positivity_rate == 0.1
        assert bumped.trajectory is config.trajectory


class TestScaleFactors:
    def test_scales_are_increasing(self):
        sizes = [sf.num_persons for sf in SCALE_FACTORS.values()]
        assert sizes == sorted(sizes)

    def test_scale_factor_lookup(self):
        assert scale_factor("S1").num_persons == 100
        with pytest.raises(KeyError):
            scale_factor("S99")

    def test_scales_up_to(self):
        names = [sf.name for sf in scales_up_to("S3")]
        assert names == ["S1", "S2", "S3"]

    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "S2")
        assert default_scale_name() == "S2"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            default_scale_name()

    def test_config_carries_positivity(self):
        config = scale_factor("S1").config(positivity_rate=0.07)
        assert config.positivity_rate == 0.07
        assert config.trajectory.num_persons == 100

    def test_graph_size_grows_with_scale(self):
        small = graph_statistics(generate_contact_tracing_graph(scale_factor("S1").config()))
        larger = graph_statistics(generate_contact_tracing_graph(scale_factor("S2").config()))
        assert larger.num_nodes > small.num_nodes
        assert larger.num_temporal_edges > small.num_temporal_edges


class TestRandomGenerators:
    def test_random_itpg_is_valid_and_deterministic(self):
        a = random_itpg(7)
        b = random_itpg(7)
        a.validate()
        assert set(a.objects()) == set(b.objects())

    def test_random_itpg_respects_sizes(self):
        graph = random_itpg(3, num_nodes=4, num_edges=3, num_windows=6)
        assert graph.num_nodes() == 4
        assert graph.num_edges() <= 3
        assert len(graph.domain) == 6

    def test_random_path_expression_fragments(self):
        no_noi = random_path_expression(5, allow_occurrence_indicators=False)
        assert classify(no_noi).name in ("PC",)
        expr = random_path_expression(5)
        assert expr is not None

    def test_random_path_expression_deterministic(self):
        assert random_path_expression(11) == random_path_expression(11)
