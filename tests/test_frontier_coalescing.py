"""Unit tests for the coalescing frontier and interval-native Step 3.

Invariants under test (see ``repro/dataflow/frontier2.py``):

* no two live frontier rows share a binding signature, after every step
  type (Test/Struct/Hop/Temporal/Alt/Bind);
* every interval family stored in a frontier row stays coalesced (the
  FC invariant) after every step;
* a Q11-style chain carries strictly fewer rows through the coalescing
  frontier than through the legacy row frontier;
* the interval-native materializer agrees with the legacy point-wise
  expansion (``Row.enumerate_times`` + ``TemporalLink.admits``) on
  randomized rows, and fused hops agree with their unfused steps.
"""

import random

import pytest

from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.dataflow.executor import _ChainStats
from repro.dataflow.frontier import Group, Row, TemporalLink
from repro.dataflow.frontier2 import Frontier, IntervalMaterializer, row_signature
from repro.errors import EvaluationError
from repro.lang.translate import compile_match
from repro.temporal import IntervalSet, IntervalSetAccumulator


def _stepwise_frontiers(engine: DataflowEngine, query):
    """Yield (step, rows) after every chain step, mirroring the executor.

    Uses the executor's own ``_collector_for`` routing so the invariant
    checks cover the production fast path: Test/Bind/Temporal steps run
    on a plain ``RowFrontier`` under an injectivity argument, and the
    uniqueness assertions below are what validate that argument.
    """
    compiled = compile_match(query)
    chain = engine._compile(compiled)
    rows, chain = engine._initial_frontier(chain)
    stats = _ChainStats()
    for step in chain:
        if not rows:
            break
        collector = engine._collector_for(step)
        engine._apply_step(rows, step, collector, stats)
        rows = collector.rows()
        yield step, rows


def _assert_fc_invariant(family: IntervalSet) -> None:
    intervals = family.intervals
    for left, right in zip(intervals, intervals[1:]):
        assert left.end + 1 < right.start, f"family not coalesced: {family}"


class TestFrontierInvariants:
    #: Queries whose chains exercise every step type: tests, structural
    #: moves, fused hops, temporal navigation, alternatives and binds.
    STEP_QUERIES = (
        "MATCH (x:Person {risk = 'high'}) ON g",  # Test + Bind
        PAPER_QUERIES["Q5"].text,  # Struct/Hop
        PAPER_QUERIES["Q8"].text,  # Temporal (unbounded)
        PAPER_QUERIES["Q11"].text,  # Hop + bounded Temporal
        PAPER_QUERIES["Q12"].text,  # Alt
    )

    @pytest.mark.parametrize("query", STEP_QUERIES)
    def test_signatures_unique_after_every_step(self, figure1, query):
        engine = DataflowEngine(figure1)
        object_id = engine.index.object_id if engine.index else None
        for step, rows in _stepwise_frontiers(engine, query):
            signatures = [row_signature(row, object_id) for row in rows]
            assert len(signatures) == len(set(signatures)), (
                f"duplicate signatures after {type(step).__name__} in {query!r}"
            )

    @pytest.mark.parametrize("query", STEP_QUERIES)
    def test_families_coalesced_after_every_step(self, figure1, query):
        engine = DataflowEngine(figure1)
        for _step, rows in _stepwise_frontiers(engine, query):
            for row in rows:
                for group in row.groups:
                    _assert_fc_invariant(group.times)

    def test_signatures_unique_on_random_graphs(self):
        for graph_seed in range(4):
            graph = random_itpg(graph_seed)
            engine = DataflowEngine(graph)
            object_id = engine.index.object_id if engine.index else None
            query = random_match_query(graph_seed * 17 + 3)
            for _step, rows in _stepwise_frontiers(engine, query):
                signatures = [row_signature(row, object_id) for row in rows]
                assert len(signatures) == len(set(signatures))

    def test_frontier_merges_signature_equal_rows(self):
        times_a = IntervalSet([(0, 2)])
        times_b = IntervalSet([(4, 6)])
        row_a = Row((Group((("x", "n1"),), "n2", times_a),), ())
        row_b = Row((Group((("x", "n1"),), "n2", times_b),), ())
        frontier = Frontier()
        frontier.add(row_a)
        frontier.add(row_b)
        assert len(frontier) == 1
        assert frontier.rows_merged == 1
        (merged,) = frontier.rows()
        assert merged.last.times == IntervalSet([(0, 2), (4, 6)])
        _assert_fc_invariant(merged.last.times)

    def test_frontier_merges_adjacent_families_into_one_interval(self):
        row_a = Row((Group((), "n1", IntervalSet([(0, 3)])),), ())
        row_b = Row((Group((), "n1", IntervalSet([(4, 8)])),), ())
        frontier = Frontier()
        frontier.add(row_a)
        frontier.add(row_b)
        (merged,) = frontier.rows()
        assert merged.last.times == IntervalSet([(0, 8)])

    def test_rows_with_different_bindings_stay_separate(self):
        times = IntervalSet([(0, 2)])
        frontier = Frontier()
        frontier.add(Row((Group((("x", "n1"),), "n3", times),), ()))
        frontier.add(Row((Group((("x", "n2"),), "n3", times),), ()))
        assert len(frontier) == 2
        assert frontier.rows_merged == 0

    def test_multi_group_signature_includes_head_times(self):
        link = TemporalLink("n1", forward=True, lower=0, upper=3, contiguous=False)
        head_a = Group((("x", "n1"),), "n1", IntervalSet([(0, 1)]))
        head_b = Group((("x", "n1"),), "n1", IntervalSet([(2, 3)]))
        tail = Group((), "n1", IntervalSet([(4, 5)]))
        frontier = Frontier()
        frontier.add(Row((head_a, tail), (link,)))
        frontier.add(Row((head_b, tail), (link,)))
        # Earlier groups' times are linked to the last group's times, so
        # rows differing there must NOT merge.
        assert len(frontier) == 2


class TestRowCountsVsLegacy:
    @pytest.mark.parametrize("name", ["Q11", "Q12"])
    def test_q11_style_chain_strictly_fewer_rows(self, name):
        graph = _midsize_contact_graph()
        text = PAPER_QUERIES[name].text
        legacy_peak = _peak_rows(DataflowEngine(graph, use_coalesced=False), text)
        coalesced_peak = _peak_rows(DataflowEngine(graph), text)
        assert coalesced_peak < legacy_peak, (
            f"{name}: coalesced peak {coalesced_peak} not below legacy {legacy_peak}"
        )
        coalesced = DataflowEngine(graph).match_with_stats(text)
        legacy = DataflowEngine(graph, use_coalesced=False).match_with_stats(text)
        assert coalesced.frontier_rows <= legacy.frontier_rows
        assert coalesced.rows_merged > 0
        assert legacy.rows_merged == 0
        assert coalesced.table.as_set() == legacy.table.as_set()


def _midsize_contact_graph():
    from repro.datagen import (
        ContactTracingConfig,
        TrajectoryConfig,
        generate_contact_tracing_graph,
    )

    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=25, num_locations=10, num_rooms=4, seed=7
        ),
        positivity_rate=0.2,
        seed=7,
    )
    return generate_contact_tracing_graph(config)


def _peak_rows(engine: DataflowEngine, text: str) -> int:
    peak = 0
    for _step, rows in _stepwise_frontiers(engine, text):
        peak = max(peak, len(rows))
    return peak


class TestIntervalMaterializer:
    def _random_row(self, rng: random.Random, graph) -> Row:
        """A multi-group row over real graph objects with random times/links."""
        domain = graph.domain
        objects = sorted(graph.objects(), key=repr)
        num_groups = rng.randint(2, 3)
        groups = []
        links = []
        obj = rng.choice(objects)
        for g in range(num_groups):
            pieces = []
            for _ in range(rng.randint(1, 2)):
                start = rng.randint(domain.start, domain.end)
                end = min(domain.end, start + rng.randint(0, 4))
                pieces.append((start, end))
            bindings = ()
            if rng.random() < 0.7:
                bindings = ((f"g{g}", obj),)
            groups.append(Group(bindings, obj, IntervalSet(pieces)))
            if g < num_groups - 1:
                lower = rng.randint(0, 2)
                upper = None if rng.random() < 0.3 else lower + rng.randint(0, 4)
                links.append(
                    TemporalLink(
                        obj,
                        forward=rng.random() < 0.5,
                        lower=lower,
                        upper=upper,
                        contiguous=rng.random() < 0.5,
                    )
                )
        return Row(tuple(groups), tuple(links))

    def test_row_points_matches_legacy_enumeration(self, figure1):
        """The alive/reach passes agree with enumerate_times + admits."""
        materializer = IntervalMaterializer(figure1)
        rng = random.Random(20240615)
        checked = 0
        for _ in range(120):
            row = self._random_row(rng, figure1)
            variables = tuple(name for g in row.groups for name, _obj in g.bindings)
            if not variables:
                continue
            positions = row.variable_positions()
            legacy = {
                tuple((positions[v][1], times[positions[v][0]]) for v in variables)
                for times in row.enumerate_times(figure1)
            }
            interval_native = set(materializer.row_points(row, variables))
            assert interval_native == legacy, f"row={row}"
            checked += 1
        assert checked >= 60

    def test_row_family_matches_row_points(self, figure1):
        """Families expand to exactly the point output on single-bound rows."""
        materializer = IntervalMaterializer(figure1)
        rng = random.Random(77)
        checked = 0
        for _ in range(200):
            row = self._random_row(rng, figure1)
            bound = [
                (g_index, name)
                for g_index, g in enumerate(row.groups)
                for name, _obj in g.bindings
            ]
            if len({g_index for g_index, _ in bound}) != 1:
                continue
            variables = tuple(name for _g, name in bound)
            family = materializer.row_family(row, variables)
            points = set(materializer.row_points(row, variables))
            if family is None:
                assert points == set()
                continue
            bindings, times = family
            objects = tuple(obj for _name, obj in bindings)
            expanded = {
                tuple((obj, t) for obj in objects) for t in times.points()
            }
            assert expanded == points
            checked += 1
        assert checked >= 20

    def test_row_family_rejects_variables_across_groups(self, figure1):
        materializer = IntervalMaterializer(figure1)
        link = TemporalLink("n2", forward=True, lower=0, upper=2, contiguous=False)
        row = Row(
            (
                Group((("x", "n2"),), "n2", IntervalSet([(1, 4)])),
                Group((("y", "n2"),), "n2", IntervalSet([(2, 6)])),
            ),
            (link,),
        )
        with pytest.raises(EvaluationError):
            materializer.row_family(row, ("x", "y"))

    def test_unbound_variable_raises(self, figure1):
        materializer = IntervalMaterializer(figure1)
        row = Row((Group((), "n1", IntervalSet([(0, 2)])),), ())
        with pytest.raises(EvaluationError):
            list(materializer.row_points(row, ("x",)))


class TestHopFusion:
    def test_hop_entries_agree_with_stepwise_traversal(self, figure1):
        """Fused hops produce the same tables as unfused Struct·Test·Struct."""
        fused = DataflowEngine(figure1)  # coalesced + index → hops compiled
        unfused = DataflowEngine(figure1, use_index=False)  # no hops
        for name in ("Q5", "Q7", "Q11", "Q12"):
            text = PAPER_QUERIES[name].text
            assert fused.match(text).as_set() == unfused.match(text).as_set(), name

    def test_hop_entries_memoized_per_graph(self, figure1):
        engine_a = DataflowEngine(figure1)
        engine_b = DataflowEngine(figure1)
        assert engine_a.index is engine_b.index
        engine_a.match(PAPER_QUERIES["Q11"].text)
        cache_size = len(engine_a.index._hop_cache)
        assert cache_size > 0
        engine_b.match(PAPER_QUERIES["Q11"].text)
        assert len(engine_b.index._hop_cache) == cache_size


class TestIntervalSetPrimitives:
    def test_union_many_matches_pairwise_union(self):
        rng = random.Random(5)
        for _ in range(50):
            families = []
            for _ in range(rng.randint(0, 5)):
                pieces = [
                    (s, s + rng.randint(0, 3))
                    for s in (rng.randint(0, 30) for _ in range(rng.randint(1, 3)))
                ]
                families.append(IntervalSet(pieces))
            expected = IntervalSet.empty()
            for family in families:
                expected = expected.union(family)
            assert IntervalSet.union_many(families) == expected

    def test_accumulator_matches_union(self):
        accumulator = IntervalSetAccumulator()
        assert not accumulator
        assert accumulator.build() == IntervalSet.empty()
        accumulator.add(IntervalSet([(0, 2)]))
        accumulator.add_interval(IntervalSet([(3, 5)]).intervals[0])
        accumulator.add(IntervalSet([(10, 12)]))
        assert accumulator
        assert accumulator.build() == IntervalSet([(0, 5), (10, 12)])
