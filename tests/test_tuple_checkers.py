"""Tests for the appendix tuple-membership checkers (Algorithms 3–7).

Each checker is validated in two ways: directly on hand-picked cases
over the tiny and Figure-1 graphs, and by cross-checking against the
bottom-up reference evaluator on random graphs and random expressions of
the appropriate fragment.
"""

import pytest

from repro.datagen.random_graphs import random_itpg, random_path_expression
from repro.errors import UnsupportedFragmentError
from repro.eval import check_anoi, check_full, check_pc
from repro.eval.bottom_up import BottomUpEvaluator
from repro.eval.tuple_pc import PCChecker, temporal_radius
from repro.eval.tuple_pspace import FullChecker
from repro.lang import ast
from repro.lang.fragments import classify, Fragment, in_fragment


class TestTemporalRadius:
    def test_axis_radius(self):
        assert temporal_radius(ast.N) == 1
        assert temporal_radius(ast.F) == 0

    def test_concat_sums(self):
        assert temporal_radius(ast.concat(ast.N, ast.P, ast.F)) == 2

    def test_union_takes_max(self):
        assert temporal_radius(ast.union(ast.concat(ast.N, ast.N), ast.F)) == 2

    def test_test_is_zero(self):
        assert temporal_radius(ast.test(ast.exists())) == 0


class TestPCCheckerOnTiny:
    def test_axis_membership(self, tiny):
        assert check_pc(tiny, ast.F, ("a", 1), ("ab", 1))
        assert check_pc(tiny, ast.F, ("ab", 1), ("b", 1))
        assert not check_pc(tiny, ast.F, ("a", 1), ("b", 1))
        assert check_pc(tiny, ast.N, ("a", 1), ("a", 2))
        assert not check_pc(tiny, ast.N, ("a", 1), ("a", 3))

    def test_two_hop_concat(self, tiny):
        hop = ast.concat(ast.F, ast.test(ast.exists()), ast.F, ast.test(ast.exists()))
        assert check_pc(tiny, hop, ("a", 2), ("b", 2))
        assert not check_pc(tiny, hop, ("a", 5), ("b", 5))

    def test_out_of_domain_times(self, tiny):
        assert not check_pc(tiny, ast.N, ("a", 99), ("a", 100))

    def test_unknown_object(self, tiny):
        assert not check_pc(tiny, ast.N, ("ghost", 1), ("ghost", 2))

    def test_path_condition(self, tiny):
        condition = ast.test(ast.path_test(ast.concat(ast.F, ast.test(ast.exists()))))
        assert check_pc(tiny, condition, ("a", 1), ("a", 1))
        assert not check_pc(tiny, condition, ("a", 5), ("a", 5))

    def test_rejects_occurrence_indicators(self, tiny):
        with pytest.raises(UnsupportedFragmentError):
            check_pc(tiny, ast.repeat(ast.N, 0, 2), ("a", 1), ("a", 2))

    def test_memoization_reuse(self, tiny):
        checker = PCChecker(tiny)
        expr = ast.concat(ast.F, ast.test(ast.exists()))
        assert checker.check(expr, ("a", 1), ("ab", 1))
        assert checker.check(expr, ("a", 1), ("ab", 1))


class TestFullCheckerOnTiny:
    def test_bounded_repetition(self, tiny):
        expr = ast.repeat(ast.N, 2, 4)
        assert check_full(tiny, expr, ("a", 0), ("a", 3))
        assert not check_full(tiny, expr, ("a", 0), ("a", 1))

    def test_unbounded_repetition(self, tiny):
        expr = ast.repeat(ast.concat(ast.N, ast.test(ast.exists())), 0, None)
        assert check_full(tiny, expr, ("b", 6), ("b", 9))
        assert not check_full(tiny, expr, ("b", 1), ("b", 7))

    def test_exact_repetition_even_and_odd(self, tiny):
        assert check_full(tiny, ast.repeat(ast.N, 4, 4), ("a", 0), ("a", 4))
        assert check_full(tiny, ast.repeat(ast.N, 3, 3), ("a", 0), ("a", 3))
        assert not check_full(tiny, ast.repeat(ast.N, 3, 3), ("a", 0), ("a", 4))

    def test_zero_repetition(self, tiny):
        assert check_full(tiny, ast.repeat(ast.F, 0, 0), ("a", 5), ("a", 5))
        assert not check_full(tiny, ast.repeat(ast.F, 0, 0), ("a", 5), ("a", 6))

    def test_without_memoization(self, tiny):
        expr = ast.repeat(ast.N, 0, 3)
        assert check_full(tiny, expr, ("a", 0), ("a", 3), memoize=False)

    def test_shared_checker(self, tiny):
        checker = FullChecker(tiny)
        assert check_full(tiny, ast.N, ("a", 0), ("a", 1), checker=checker)
        assert not check_full(tiny, ast.N, ("a", 0), ("a", 2), checker=checker)


class TestANOICheckerOnTiny:
    def test_temporal_indicator_arithmetic(self, tiny):
        assert check_anoi(tiny, ast.repeat(ast.N, 2, 5), ("a", 1), ("a", 4))
        assert not check_anoi(tiny, ast.repeat(ast.N, 2, 5), ("a", 1), ("a", 0))
        assert check_anoi(tiny, ast.repeat(ast.P, 1, None), ("a", 8), ("a", 2))

    def test_structural_indicator_reachability(self, tiny):
        # a -F-> ab -F-> b -F-> bc -F-> c : four F steps from a to c.
        assert check_anoi(tiny, ast.repeat(ast.F, 4, 4), ("a", 2), ("c", 2))
        assert not check_anoi(tiny, ast.repeat(ast.F, 3, 3), ("a", 2), ("c", 2))
        assert check_anoi(tiny, ast.repeat(ast.F, 0, None), ("a", 2), ("c", 2))

    def test_structural_indicator_requires_same_time(self, tiny):
        assert not check_anoi(tiny, ast.repeat(ast.F, 2, 2), ("a", 2), ("b", 3))

    def test_backward_reachability(self, tiny):
        assert check_anoi(tiny, ast.repeat(ast.B, 4, 4), ("c", 2), ("a", 2))

    def test_rejects_path_conditions(self, tiny):
        expr = ast.test(ast.path_test(ast.F))
        with pytest.raises(UnsupportedFragmentError):
            check_anoi(tiny, expr, ("a", 1), ("a", 1))

    def test_rejects_compound_repetition(self, tiny):
        expr = ast.repeat(ast.concat(ast.N, ast.test(ast.exists())), 0, 2)
        with pytest.raises(UnsupportedFragmentError):
            check_anoi(tiny, expr, ("a", 1), ("a", 1))

    def test_subset_sum_gadget_shape(self):
        from repro.reductions import subset_sum_reduction

        instance = subset_sum_reduction([2, 3], 5)
        assert check_anoi(instance.graph, instance.path, instance.source, instance.target)
        miss = subset_sum_reduction([2, 2], 5)
        assert not check_anoi(miss.graph, miss.path, miss.source, miss.target)


class TestCrossCheckAgainstBottomUp:
    """Random cross-validation of every checker against the reference engine."""

    @pytest.mark.parametrize("seed", range(8))
    def test_pc_checker_agrees(self, seed):
        graph = random_itpg(seed, num_nodes=4, num_edges=5, num_windows=5)
        expr = random_path_expression(
            seed * 31 + 1, max_depth=2, allow_occurrence_indicators=False,
            allow_path_conditions=True,
        )
        assert in_fragment(expr, Fragment.PC)
        relation = BottomUpEvaluator(graph).evaluate(expr)
        checker = PCChecker(graph)
        objects = list(graph.objects())[:4]
        times = list(graph.time_points())[:4]
        for o1 in objects:
            for t1 in times:
                for o2 in objects:
                    for t2 in times:
                        expected = (o1, t1, o2, t2) in relation
                        assert checker.check(expr, (o1, t1), (o2, t2)) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_full_checker_agrees(self, seed):
        graph = random_itpg(seed + 100, num_nodes=3, num_edges=4, num_windows=4)
        expr = random_path_expression(seed * 17 + 3, max_depth=2)
        relation = BottomUpEvaluator(graph).evaluate(expr)
        checker = FullChecker(graph)
        objects = list(graph.objects())[:3]
        times = list(graph.time_points())[:3]
        for o1 in objects:
            for t1 in times:
                for o2 in objects:
                    for t2 in times:
                        expected = (o1, t1, o2, t2) in relation
                        assert checker.check(expr, (o1, t1), (o2, t2)) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_anoi_checker_agrees(self, seed):
        graph = random_itpg(seed + 200, num_nodes=4, num_edges=5, num_windows=5)
        expr = _random_anoi_expression(seed)
        assert classify(expr) in (Fragment.ANOI, Fragment.PC)
        relation = BottomUpEvaluator(graph).evaluate(expr)
        from repro.eval.tuple_anoi import ANOIChecker

        checker = ANOIChecker(graph)
        objects = list(graph.objects())[:4]
        times = list(graph.time_points())[:4]
        for o1 in objects:
            for t1 in times:
                for o2 in objects:
                    for t2 in times:
                        expected = (o1, t1, o2, t2) in relation
                        assert checker.check(expr, (o1, t1), (o2, t2)) == expected


def _random_anoi_expression(seed):
    """Random expression with occurrence indicators only on axes."""
    import random

    rng = random.Random(seed)
    parts = []
    for _ in range(rng.randint(1, 3)):
        axis = rng.choice((ast.F, ast.B, ast.N, ast.P))
        if rng.random() < 0.5:
            lower = rng.randint(0, 2)
            upper = lower + rng.randint(0, 2)
            parts.append(ast.repeat(axis, lower, upper))
        else:
            parts.append(axis)
        if rng.random() < 0.4:
            parts.append(ast.test(ast.exists()))
    return ast.concat(*parts)
