"""Differential oracle: attached artifacts vs in-memory graphs.

The store's correctness contract is *zero divergence*: a graph attached
from a compiled ``repro-index`` artifact must answer every query
identically to the in-memory graph it was compiled from — under every
engine configuration the fuzz oracle exercises (coalesced/legacy-rows/
no-index dataflow, both reference engines), for single-file and sharded
stores, and through the process backend's ``StoreRef`` dispatch on both
``fork`` and ``spawn`` start methods.

Seeds deliberately reuse the :mod:`tests.test_differential_fuzz`
derivation (``random_itpg(seed)`` + ``random_match_query(seed*31+7)``)
so any failure here reproduces with the same recipe.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.datagen.random_graphs import random_itpg, random_match_query
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.model import contact_tracing_example
from repro.parallel.plan import store_ref
from repro.store import attach, compile_graph

SEEDS = tuple(range(1, 9))


def _attached(tmp_path, graph, *, shards=None, name="graph.rix"):
    path = str(tmp_path / name)
    compile_graph(graph, path, shards=shards)
    return attach(path)


class TestEngineConfigurations:
    """Every fuzz-oracle engine config agrees attached vs in-memory."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_attached_matches_in_memory(self, tmp_path, seed):
        graph = random_itpg(seed)
        query = random_match_query(seed * 31 + 7)
        expected = ReferenceEngine(graph).match(query).as_set()
        attachment = _attached(tmp_path, graph)
        try:
            engines = {
                "dataflow-coalesced": DataflowEngine(attachment.graph),
                "dataflow-legacy-rows": DataflowEngine(
                    attachment.graph, use_coalesced=False
                ),
                "dataflow-coalesced-noindex": DataflowEngine(
                    attachment.graph, use_index=False
                ),
                "reference-point": ReferenceEngine(attachment.graph),
                "reference-intervals": ReferenceEngine(
                    attachment.graph, use_intervals=True
                ),
            }
            for name, engine in engines.items():
                got = engine.match(query).as_set()
                assert got == expected, (
                    f"{name} diverged on attached store, seed {seed}: "
                    f"reproduce with random_itpg({seed}) and "
                    f"random_match_query({seed * 31 + 7})"
                )
        finally:
            attachment.close()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_sharded_store_matches_in_memory(self, tmp_path, seed):
        graph = random_itpg(seed, num_nodes=8, num_edges=12)
        query = random_match_query(seed * 31 + 7)
        expected = ReferenceEngine(graph).match(query).as_set()
        attachment = _attached(tmp_path, graph, shards=3, name="store.json")
        try:
            got = DataflowEngine(attachment.graph).match(query).as_set()
            assert got == expected, f"sharded store diverged on seed {seed}"
        finally:
            attachment.close()


class TestProcessBackendStoreRef:
    """Workers attach by (path, token) and agree with the serial answer."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_process_workers_attach(self, tmp_path, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method!r} unavailable")
        graph = contact_tracing_example()
        text = PAPER_QUERIES["Q1"].text
        expected = DataflowEngine(graph).match(text).as_set()
        attachment = _attached(tmp_path, graph)
        try:
            assert store_ref(attachment.graph) is not None
            engine = DataflowEngine(
                attachment.graph,
                workers=2,
                parallel_backend="process",
                start_method=start_method,
            )
            assert engine.match(text).as_set() == expected
        finally:
            attachment.close()

    def test_payload_fallback_heals_missing_artifact(self, tmp_path):
        """Renaming the artifact away degrades to the pickled payload."""
        graph = contact_tracing_example()
        text = PAPER_QUERIES["Q1"].text
        expected = DataflowEngine(graph).match(text).as_set()
        attachment = _attached(tmp_path, graph)
        try:
            engine = DataflowEngine(
                attachment.graph, workers=2, parallel_backend="process"
            )
            (tmp_path / "graph.rix").rename(tmp_path / "gone.rix")
            assert engine.match(text).as_set() == expected
        finally:
            attachment.close()
