"""Unit tests for coalesced interval families (IntervalSet)."""

import pytest

from repro.errors import InvalidIntervalError
from repro.temporal import Interval, IntervalSet


class TestConstructionAndCoalescing:
    def test_empty(self):
        family = IntervalSet.empty()
        assert family.is_empty()
        assert len(family) == 0
        assert not family

    def test_single(self):
        family = IntervalSet.single(1, 4)
        assert family.intervals == (Interval(1, 4),)

    def test_point(self):
        assert IntervalSet.point(5).intervals == (Interval(5, 5),)

    def test_accepts_tuples(self):
        family = IntervalSet([(1, 2), (5, 6)])
        assert family.intervals == (Interval(1, 2), Interval(5, 6))

    def test_overlapping_inputs_are_merged(self):
        family = IntervalSet([Interval(1, 4), Interval(3, 8)])
        assert family.intervals == (Interval(1, 8),)

    def test_adjacent_inputs_are_merged(self):
        family = IntervalSet([Interval(1, 2), Interval(3, 4)])
        assert family.intervals == (Interval(1, 4),)

    def test_disjoint_inputs_stay_separate(self):
        family = IntervalSet([Interval(5, 6), Interval(1, 2)])
        assert family.intervals == (Interval(1, 2), Interval(5, 6))

    def test_unordered_inputs_are_sorted(self):
        family = IntervalSet([Interval(7, 9), Interval(0, 1), Interval(3, 4)])
        assert [iv.start for iv in family] == [0, 3, 7]

    def test_from_points(self):
        family = IntervalSet.from_points([1, 2, 3, 5, 9, 10])
        assert family.intervals == (Interval(1, 3), Interval(5, 5), Interval(9, 10))

    def test_from_points_with_duplicates(self):
        assert IntervalSet.from_points([4, 4, 5]) == IntervalSet.single(4, 5)

    def test_from_points_empty(self):
        assert IntervalSet.from_points([]).is_empty()

    def test_equality_and_hash(self):
        a = IntervalSet([(1, 2), (4, 5)])
        b = IntervalSet([(4, 5), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)


class TestMembership:
    def test_contains_point(self):
        family = IntervalSet([(1, 3), (7, 9)])
        assert family.contains_point(2)
        assert family.contains_point(7)
        assert not family.contains_point(5)
        assert 8 in family and 4 not in family

    def test_interval_containing(self):
        family = IntervalSet([(1, 3), (7, 9)])
        assert family.interval_containing(8) == Interval(7, 9)
        assert family.interval_containing(5) is None

    def test_contains_interval(self):
        family = IntervalSet([(1, 5), (8, 9)])
        assert family.contains_interval(Interval(2, 4))
        assert not family.contains_interval(Interval(4, 8))

    def test_is_subset_of(self):
        small = IntervalSet([(2, 3), (8, 8)])
        big = IntervalSet([(1, 5), (7, 9)])
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)

    def test_empty_is_subset_of_everything(self):
        assert IntervalSet.empty().is_subset_of(IntervalSet([(1, 2)]))

    def test_points_iteration(self):
        family = IntervalSet([(1, 2), (5, 6)])
        assert list(family.points()) == [1, 2, 5, 6]

    def test_total_points(self):
        assert IntervalSet([(1, 3), (9, 9)]).total_points() == 4

    def test_min_max_points(self):
        family = IntervalSet([(3, 4), (8, 11)])
        assert family.min_point() == 3
        assert family.max_point() == 11

    def test_min_point_of_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalSet.empty().min_point()

    def test_span(self):
        assert IntervalSet([(2, 3), (8, 9)]).span() == Interval(2, 9)
        assert IntervalSet.empty().span() is None


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(1, 3)])
        b = IntervalSet([(4, 6)])
        assert a.union(b) == IntervalSet([(1, 6)])

    def test_intersect(self):
        a = IntervalSet([(1, 5), (8, 12)])
        b = IntervalSet([(4, 9)])
        assert a.intersect(b) == IntervalSet([(4, 5), (8, 9)])

    def test_intersect_empty(self):
        assert IntervalSet([(1, 2)]).intersect(IntervalSet([(4, 5)])).is_empty()

    def test_intersect_interval(self):
        family = IntervalSet([(1, 3), (6, 9)])
        assert family.intersect_interval(Interval(2, 7)) == IntervalSet([(2, 3), (6, 7)])

    def test_difference(self):
        a = IntervalSet([(1, 10)])
        b = IntervalSet([(3, 4), (7, 8)])
        assert a.difference(b) == IntervalSet([(1, 2), (5, 6), (9, 10)])

    def test_difference_disjoint(self):
        a = IntervalSet([(1, 2)])
        assert a.difference(IntervalSet([(5, 6)])) == a

    def test_complement(self):
        family = IntervalSet([(2, 3), (6, 7)])
        assert family.complement(Interval(0, 9)) == IntervalSet([(0, 1), (4, 5), (8, 9)])

    def test_complement_of_empty_is_domain(self):
        assert IntervalSet.empty().complement(Interval(1, 4)) == IntervalSet([(1, 4)])

    def test_shift(self):
        assert IntervalSet([(1, 2), (5, 6)]).shift(3) == IntervalSet([(4, 5), (8, 9)])

    def test_dilate(self):
        family = IntervalSet([(5, 6)])
        assert family.dilate(2, 1) == IntervalSet([(3, 7)])

    def test_dilate_with_domain_clamp(self):
        family = IntervalSet([(1, 2), (8, 9)])
        dilated = family.dilate(3, 3, domain=Interval(0, 10))
        assert dilated == IntervalSet([(0, 5), (5, 10)]).union(IntervalSet([(0, 10)]))
        assert dilated == IntervalSet([(0, 10)])

    def test_overlaps(self):
        a = IntervalSet([(1, 3), (9, 10)])
        assert a.overlaps(IntervalSet([(3, 5)]))
        assert not a.overlaps(IntervalSet([(5, 8)]))


class TestAlgebraicLaws:
    """Small hand-picked instances of laws also covered by the hypothesis suite."""

    def test_union_is_commutative(self):
        a = IntervalSet([(1, 4), (9, 9)])
        b = IntervalSet([(3, 7)])
        assert a.union(b) == b.union(a)

    def test_intersection_distributes_over_union(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(3, 8)])
        c = IntervalSet([(7, 10)])
        left = a.intersect(b.union(c))
        right = a.intersect(b).union(a.intersect(c))
        assert left == right

    def test_difference_then_union_restores_subset(self):
        a = IntervalSet([(0, 9)])
        b = IntervalSet([(2, 3), (6, 7)])
        assert a.difference(b).union(b) == a

    def test_result_is_always_coalesced(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(3, 5)])
        merged = a.union(b)
        assert len(merged) == 1


class TestDomainEdgeCases:
    """Hand-picked edge cases behind the PR-3 point-model property sweep:
    empty families, single-point domains, clipping at domain edges and
    coalescing of difference remainders."""

    def test_dilate_empty_family_stays_empty(self):
        assert IntervalSet.empty().dilate(3, 3).is_empty()
        assert IntervalSet.empty().dilate(3, 3, Interval(0, 5)).is_empty()

    def test_dilate_clips_before_at_domain_start(self):
        family = IntervalSet([(1, 2)])
        assert family.dilate(4, 0, Interval(0, 10)) == IntervalSet([(0, 2)])

    def test_dilate_clips_after_at_domain_end(self):
        family = IntervalSet([(8, 9)])
        assert family.dilate(0, 4, Interval(0, 10)) == IntervalSet([(8, 10)])

    def test_dilate_domain_fully_clips_family(self):
        family = IntervalSet([(10, 12)])
        assert family.dilate(1, 1, Interval(0, 5)).is_empty()

    def test_dilate_bridges_gap_and_coalesces(self):
        family = IntervalSet([(0, 1), (4, 5)])
        assert family.dilate(1, 1) == IntervalSet([(-1, 6)])

    def test_difference_with_empty_cut_is_identity(self):
        family = IntervalSet([(0, 3), (6, 8)])
        assert family.difference(IntervalSet.empty()) == family

    def test_difference_from_empty_is_empty(self):
        assert IntervalSet.empty().difference(IntervalSet([(0, 3)])).is_empty()

    def test_difference_splits_interval_and_stays_coalesced(self):
        family = IntervalSet([(0, 9)])
        result = family.difference(IntervalSet([(3, 3), (7, 7)]))
        assert result == IntervalSet([(0, 2), (4, 6), (8, 9)])
        intervals = result.intervals
        for left, right in zip(intervals, intervals[1:]):
            assert right.start - left.end > 1

    def test_difference_cut_beyond_every_interval(self):
        family = IntervalSet([(0, 2)])
        assert family.difference(IntervalSet([(5, 9)])) == family

    def test_complement_of_empty_is_full_domain(self):
        domain = Interval(2, 7)
        assert IntervalSet.empty().complement(domain) == IntervalSet((domain,))

    def test_complement_of_full_domain_is_empty(self):
        domain = Interval(2, 7)
        assert IntervalSet((domain,)).complement(domain).is_empty()

    def test_complement_on_single_point_domain(self):
        domain = Interval(4, 4)
        assert IntervalSet.point(4).complement(domain).is_empty()
        assert IntervalSet.point(9).complement(domain) == IntervalSet.point(4)

    def test_complement_clips_family_outside_domain(self):
        # Points of the family outside the domain must not leak into
        # (or subtract from) the complement.
        domain = Interval(0, 5)
        family = IntervalSet([(4, 9)])
        assert family.complement(domain) == IntervalSet([(0, 3)])
