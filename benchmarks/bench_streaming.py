"""Streaming evaluation: incremental vs full-recompute speedup (PR-5 harness).

The `repro.streaming` subsystem keeps registered queries continuously
answered while delta batches grow the graph, re-deriving only the seeds
whose structural/temporal neighbourhood a batch dirties.  This harness
measures what that buys over the from-scratch alternative on the
contact-tracing stream (`repro.datagen.streaming`):

* **incremental** — one `DataflowEngine(incremental=True)` session per
  run: each batch is `apply_delta`-ed and every query's coalesced
  families are re-read from the maintained cache;
* **full recompute** — the same batch is applied to a shadow graph,
  whose compiled index is then discarded so a fresh engine re-runs
  Steps 1–3 from scratch for every query (what every engine in this
  repository did before PR 5).

Per batch the harness records both wall-clock times and their ratio;
per batch size it reports the median/min speedup.  Every batch also
cross-checks the incremental families against the cold engine's — any
divergence makes the process exit non-zero (the same contract as the
other harnesses).  The headline number is the median speedup at the
smallest measured batch size ("small-batch" streams), which must stay
above ``--min-speedup`` (default 2x).

Measurements land in ``BENCH_PR5.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_streaming.py                # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke \\
        --out bench_smoke_pr5.json --check-against BENCH_PR5.json \\
        --tolerance 0.25                                               # CI gate

With ``--check-against`` the run also fails if the small-batch median
speedup falls more than ``--tolerance`` below the same-scale baseline.
Unlike the parallelism gate this ratio is core-count independent (both
sides run sequentially), so it engages on any host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.datagen.streaming import contact_tracing_stream
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.streaming import apply_delta

#: The streaming mix: the full-scan shapes a feed keeps re-asking, plus
#: the join query whose answer drifts with every new meets edge.
STREAM_QUERIES = ("Q1", "Q2", "Q5")
#: Batch sizes (events per batch) swept per scale; the smallest one is
#: the gated "small-batch" regime.
BATCH_SIZES = (1, 4, 16)
SMOKE_BATCH_SIZES = (1, 4)
#: Upper bound on replayed batches per batch size (keeps big sweeps sane).
MAX_BATCHES = 30


def canonical(families) -> list:
    return sorted(
        ((bindings, tuple(times.intervals)) for bindings, times in families), key=repr
    )


def bench_batch_size(config, batch_size: int, max_batches: int) -> dict:
    """Replay one stream twice: incrementally and with full recomputes."""
    stream = contact_tracing_stream(config, batch_size=batch_size)
    engine = DataflowEngine(stream.fresh_initial(), incremental=True)
    queries = {name: PAPER_QUERIES[name].text for name in STREAM_QUERIES}
    for text in queries.values():
        engine.match(text)  # cold registration (outside the timed region)
    shadow = stream.fresh_initial()

    speedups: list[float] = []
    incremental_seconds = full_seconds = 0.0
    divergences = 0
    affected = total = 0
    batches = stream.batches[: max_batches]
    for batch in batches:
        start = time.perf_counter()
        applied = engine.apply_delta(batch)
        incremental = {
            name: canonical(engine.match_intervals(text))
            for name, text in queries.items()
        }
        t_incremental = time.perf_counter() - start
        affected += applied.affected_seeds
        total += applied.total_seeds

        apply_delta(shadow, batch)
        start = time.perf_counter()
        if hasattr(shadow, "_repro_graph_index"):
            # From-scratch means from scratch: a cold system would have
            # to recompile its indexes against the grown graph too.
            delattr(shadow, "_repro_graph_index")
        cold_engine = DataflowEngine(shadow)
        cold = {
            name: canonical(cold_engine.match_intervals(text))
            for name, text in queries.items()
        }
        t_full = time.perf_counter() - start

        if incremental != cold:
            divergences += 1
        speedups.append(t_full / max(t_incremental, 1e-9))
        incremental_seconds += t_incremental
        full_seconds += t_full

    return {
        "batch_size": batch_size,
        "batches": len(batches),
        "events_per_stream": stream.total_events - stream.initial_events,
        "median_speedup": round(statistics.median(speedups), 3),
        "min_speedup": round(min(speedups), 3),
        "incremental_seconds": round(incremental_seconds, 6),
        "full_seconds": round(full_seconds, 6),
        "seeds_rederived": affected,
        "seeds_total": total,
        "divergences": divergences,
    }


def bench_scale(scale_name: str, positivity: float, batch_sizes, max_batches: int) -> dict:
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    results = {
        str(batch_size): bench_batch_size(config, batch_size, max_batches)
        for batch_size in batch_sizes
    }
    small = str(min(batch_sizes))
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "cpu_count": os.cpu_count(),
        "queries": list(STREAM_QUERIES),
        "batch_sizes": results,
        "small_batch_size": int(small),
        "small_batch_median_speedup": results[small]["median_speedup"],
        "divergences": sum(entry["divergences"] for entry in results.values()),
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate the small-batch median speedup against the committed baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["small_batch_median_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["small_batch_median_speedup"]
    print(
        f"regression check at {scale}: small-batch (size "
        f"{measured['small_batch_size']}) incremental median {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: streaming speedup regressed more than {tolerance:.0%} "
            f"vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument(
        "--max-batches",
        type=int,
        default=MAX_BATCHES,
        help="cap on replayed batches per batch size",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="absolute floor for the small-batch median speedup (default 2.0)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR5.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR5.json to compare the small-batch median against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the gate median (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, two batch sizes",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    batch_sizes = SMOKE_BATCH_SIZES if args.smoke else BATCH_SIZES
    max_batches = max(1, args.max_batches if not args.smoke else min(args.max_batches, 15))

    measured = bench_scale(scale, args.positivity, batch_sizes, max_batches)

    out_path = Path(args.out)
    report = {"benchmark": "bench_streaming", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_streaming"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== Streaming evaluation at {scale} "
        f"(queries {', '.join(STREAM_QUERIES)}) ==="
    )
    header = (
        f"{'batch size':>10}{'batches':>9}{'incr (s)':>10}{'full (s)':>10}"
        f"{'median':>9}{'min':>7}{'re-derived':>12}"
    )
    print(header)
    print("-" * len(header))
    for key in sorted(measured["batch_sizes"], key=int):
        entry = measured["batch_sizes"][key]
        print(
            f"{key:>10}{entry['batches']:>9}{entry['incremental_seconds']:>10.4f}"
            f"{entry['full_seconds']:>10.4f}{entry['median_speedup']:>8.2f}x"
            f"{entry['min_speedup']:>6.2f}x"
            f"{entry['seeds_rederived']:>7}/{entry['seeds_total']}"
        )
    print(
        f"small-batch median speedup: "
        f"{measured['small_batch_median_speedup']:.2f}x "
        f"(batch size {measured['small_batch_size']})"
    )
    print(f"report written to {out_path}")

    status = 0
    if measured["small_batch_median_speedup"] < args.min_speedup:
        print(
            f"ERROR: small-batch median speedup "
            f"{measured['small_batch_median_speedup']:.2f}x is below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        status = 1
    if args.check_against:
        status = max(status, check_against(Path(args.check_against), measured, args.tolerance))
    if measured["divergences"]:
        print("ERROR: incremental and cold outputs diverged", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
