"""Figure 2: effect of graph size on query execution time.

The paper runs every query over graphs G1–G10 and plots execution time
against the number of Person nodes, observing linear growth for most
queries and roughly quadratic growth for Q5, Q9 and Q10–Q12 (driven by
output size).  This harness sweeps the configured scale factors and
prints one series per query.
"""

from __future__ import annotations

import pytest

from conftest import graph_for, print_table
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_SERIES: dict[str, list[tuple[str, int, float, int]]] = {}
_EXPECTED_CELLS = {"count": 0}


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def bench_fig2_query_across_scales(benchmark, scale_sweep, name):
    """Run one query on every scale factor (the timed body is the full sweep)."""
    engines = {sf.name: DataflowEngine(graph_for(sf.name)) for sf in scale_sweep}
    query = PAPER_QUERIES[name]

    def sweep():
        measurements = []
        for sf in scale_sweep:
            result = engines[sf.name].match_with_stats(query.text, expand_output=True)
            measurements.append(
                (sf.name, sf.num_persons, result.total_seconds, result.output_size)
            )
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _SERIES[name] = measurements
    benchmark.extra_info["series"] = [
        {"scale": s, "persons": p, "seconds": round(t, 6), "output": o}
        for s, p, t, o in measurements
    ]

    if len(_SERIES) == len(PAPER_QUERIES):
        rows = []
        for query_name, series in _SERIES.items():
            for scale, persons, seconds, output in series:
                rows.append([query_name, scale, persons, f"{seconds:.3f}", output])
        print_table(
            "Figure 2 — effect of graph size on query execution time",
            ["query", "scale", "# persons", "time (s)", "output size"],
            rows,
        )
