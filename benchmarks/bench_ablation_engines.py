"""Ablation: dataflow engine vs. the reference bottom-up engine.

The reference engine implements the Theorem-C.1 algorithm literally
(tables of pairs of temporal objects per parse-tree node), which is the
complexity-theoretic workhorse but materializes O(M²) intermediate
relations.  The dataflow engine only explores the part of the space
reachable from the query's anchors.  This harness quantifies the gap on
the running example and on a small generated graph, while asserting both
engines return identical binding tables.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval import ReferenceEngine
from repro.model.examples import contact_tracing_example

_QUERIES = ("Q1", "Q5", "Q8", "Q9", "Q12")
_RESULTS: dict[tuple[str, str], dict[str, float]] = {}


def _small_generated_graph():
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=20, num_locations=12, num_rooms=4, num_windows=16, seed=13
        ),
        positivity_rate=0.15,
        seed=13,
    )
    return generate_contact_tracing_graph(config)


_GRAPHS = {
    "figure1": contact_tracing_example,
    "small-generated": _small_generated_graph,
}


@pytest.mark.parametrize("graph_name", list(_GRAPHS))
@pytest.mark.parametrize("name", _QUERIES)
def bench_ablation_engine_comparison(benchmark, graph_name, name):
    """Time both engines on one query over one small graph."""
    graph = _GRAPHS[graph_name]()
    dataflow = DataflowEngine(graph)
    reference = ReferenceEngine(graph)
    text = PAPER_QUERIES[name].text

    def run_both():
        start = time.perf_counter()
        dataflow_table = dataflow.match(text)
        dataflow_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reference_table = reference.match(text)
        reference_seconds = time.perf_counter() - start
        assert dataflow_table.as_set() == reference_table.as_set()
        return dataflow_seconds, reference_seconds, len(dataflow_table)

    dataflow_seconds, reference_seconds, output = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    _RESULTS[(graph_name, name)] = {
        "dataflow": dataflow_seconds,
        "reference": reference_seconds,
        "output": output,
    }

    if len(_RESULTS) == len(_QUERIES) * len(_GRAPHS):
        rows = [
            [
                graph,
                query,
                f"{values['dataflow']:.4f}",
                f"{values['reference']:.4f}",
                f"{values['reference'] / max(values['dataflow'], 1e-9):.1f}x",
                values["output"],
            ]
            for (graph, query), values in sorted(_RESULTS.items())
        ]
        print_table(
            "Ablation — dataflow engine vs. reference bottom-up engine (identical answers)",
            ["graph", "query", "dataflow (s)", "reference (s)", "ratio", "output size"],
            rows,
        )
