"""PR-2 regression harness: coalescing frontier vs the legacy row frontier.

Runs the Table-II query mix (Q1–Q12) through the dataflow engine twice on
the same compiled :class:`~repro.perf.graph_index.GraphIndex` — once with
the seed row-per-path frontier (``use_coalesced=False``) and once with
the coalescing frontier, fused hops and interval-native Step 3
(``use_coalesced=True``, the default) — cross-checks that every binding
table is identical, and reports per-query and median speedups.  The
headline number is the median over the **Q10–Q12 bounded
temporal-navigation mix**, the row-churn workload PR 1 left open.

The measurements land in ``BENCH_PR2.json`` keyed by scale factor, so a
single baseline file can hold both the committed S4 measurement and the
S1 smoke reference CI compares against::

    PYTHONPATH=src python benchmarks/bench_pr2_frontier.py              # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_pr2_frontier.py --scale S1   # add the S1 section
    PYTHONPATH=src python benchmarks/bench_pr2_frontier.py --smoke \\
        --out bench_smoke_pr2.json --check-against BENCH_PR2.json       # CI regression gate

With ``--check-against`` the process exits non-zero if any engine pair
diverges or if the measured Q10–Q12 median speedup falls more than
``--tolerance`` (default 10%) below the same-scale baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.perf import graph_index_for

#: The bounded temporal-navigation mix whose median is the headline number.
FOCUS_QUERIES = ("Q10", "Q11", "Q12")


def best_of(rounds: int, fn, *args, **kwargs):
    """Smallest wall-clock time of ``rounds`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_scale(scale_name: str, positivity: float, rounds: int) -> dict:
    """Q1–Q12, legacy row frontier vs coalescing frontier, on one graph."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)

    start = time.perf_counter()
    graph_index_for(graph)
    compile_seconds = time.perf_counter() - start

    legacy = DataflowEngine(graph, use_coalesced=False)
    coalesced = DataflowEngine(graph, use_coalesced=True)

    queries: dict[str, dict] = {}
    divergences = 0
    for name, query in PAPER_QUERIES.items():
        # Both arms force point materialization inside the timed region
        # so the ratio keeps measuring what the committed baseline did
        # (PR 3 made the coalesced engine's output lazy by default).
        legacy_seconds, legacy_result = best_of(
            rounds, legacy.match_with_stats, query.text, expand_output=True
        )
        coalesced_seconds, coalesced_result = best_of(
            rounds, coalesced.match_with_stats, query.text, expand_output=True
        )
        agree = legacy_result.table.as_set() == coalesced_result.table.as_set()
        if not agree:
            divergences += 1
        queries[name] = {
            "legacy_seconds": round(legacy_seconds, 6),
            "coalesced_seconds": round(coalesced_seconds, 6),
            "legacy_interval_seconds": round(legacy_result.interval_seconds, 6),
            "coalesced_interval_seconds": round(coalesced_result.interval_seconds, 6),
            "speedup": round(legacy_seconds / max(coalesced_seconds, 1e-9), 3),
            "output_size": coalesced_result.output_size,
            "legacy_frontier_rows": legacy_result.frontier_rows,
            "coalesced_frontier_rows": coalesced_result.frontier_rows,
            "rows_merged": coalesced_result.rows_merged,
            "outputs_agree": agree,
        }
    speedups = [entry["speedup"] for entry in queries.values()]
    focus = [queries[name]["speedup"] for name in FOCUS_QUERIES]
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "num_nodes": graph.num_nodes(),
        "num_edges": graph.num_edges(),
        "index_compile_seconds": round(compile_seconds, 6),
        "queries": queries,
        "median_speedup": round(statistics.median(speedups), 3),
        "q10_q12": {
            "queries": list(FOCUS_QUERIES),
            "median_speedup": round(statistics.median(focus), 3),
            "min_speedup": round(min(focus), 3),
        },
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Compare the measured Q10–Q12 median against the same-scale baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["q10_q12"]["median_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["q10_q12"]["median_speedup"]
    print(
        f"regression check at {scale}: measured Q10–Q12 median {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: Q10–Q12 median speedup regressed more than "
            f"{tolerance:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR2.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR2.json to compare the Q10–Q12 median against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative regression of the Q10–Q12 median (default 10%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale (still best-of-3 so the ratio is stable)",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    rounds = max(1, args.rounds)

    measured = bench_scale(scale, args.positivity, rounds)

    out_path = Path(args.out)
    report = {"benchmark": "bench_pr2_frontier", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_pr2_frontier"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    report["rounds"] = rounds
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== dataflow frontier, Q1–Q12 at {scale} "
        f"({measured['num_nodes']} nodes, {measured['num_edges']} edges) ==="
    )
    header = (
        f"{'query':<6}{'legacy (s)':>12}{'coalesced (s)':>15}{'speedup':>9}"
        f"{'rows':>12}{'merged':>9}  agree"
    )
    print(header)
    print("-" * len(header))
    for name, entry in measured["queries"].items():
        rows = f"{entry['legacy_frontier_rows']}→{entry['coalesced_frontier_rows']}"
        print(
            f"{name:<6}{entry['legacy_seconds']:>12.4f}"
            f"{entry['coalesced_seconds']:>15.4f}{entry['speedup']:>8.2f}x"
            f"{rows:>12}{entry['rows_merged']:>9}"
            f"  {'yes' if entry['outputs_agree'] else 'NO'}"
        )
    print(
        f"median speedup: {measured['median_speedup']:.2f}x overall, "
        f"{measured['q10_q12']['median_speedup']:.2f}x on the Q10–Q12 mix "
        f"(index compile: {measured['index_compile_seconds']:.3f}s)"
    )
    print(f"report written to {out_path}")

    status = 0
    if args.check_against:
        status = check_against(Path(args.check_against), measured, args.tolerance)
    if measured["divergences"]:
        print("ERROR: engine outputs diverged", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
