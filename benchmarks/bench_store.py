"""Persistent compiled-graph store: attach vs recompile (PR-8).

Every cold process used to pay the full index compilation — server
restarts recompiled from JSON, every process-backend worker rebuilt its
own graph + index from a pickled payload.  The store
(:mod:`repro.store`) replaces that with a compile-once, mmap-attach
artifact.  This harness measures the two claims the subsystem makes on
the contact-tracing graph:

* **attach latency** — median seconds to ``attach()`` the compiled
  artifact (warm page cache) vs the worker/restart path it replaces:
  unpickling the graph payload and compiling a fresh
  :class:`~repro.perf.graph_index.GraphIndex`.  The gated ratio is
  ``recompile / attach`` with an absolute floor (default 5x at any
  scale, per the subsystem's acceptance bar at S4).
* **per-worker RSS** — a spawned child process reports its ``VmRSS``
  after making the graph query-ready by each route (attach vs
  payload-rebuild).  Attached workers read index sections through the
  shared page cache instead of holding private decoded copies, so their
  unique footprint must not exceed the rebuild path's; the
  rebuild/attach ratio is tracked against the committed baseline.

Every run also cross-checks the attached engine's answers against an
in-memory engine on the paper-query mix (plus one sharded-store
attach); any divergence exits non-zero — the same contract as every
other harness.

Measurements land in ``BENCH_PR8.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_store.py                 # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_store.py --smoke \\
        --out bench_smoke_pr8.json --check-against BENCH_PR8.json \\
        --tolerance 0.25                                            # CI gate

Both sides of the gated ratio run sequentially in one process, so the
gate is core-count independent and engages on any host.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pickle
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.perf.graph_index import GraphIndex
from repro.store import attach, compile_graph

#: The cross-checked mix: full scans plus the meets-join (the same
#: spread of shapes the streaming/server harnesses use).
CHECK_QUERIES = ("Q1", "Q2", "Q5")
REPEATS = 7
SMOKE_REPEATS = 5
SHARDS = 4


def _vm_rss_kib() -> int:
    """This process's resident set size in KiB (no psutil in the image)."""
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


def _child_attach(path: str, queue) -> None:
    """Worker route A: mmap-attach the artifact, run one query, report RSS."""
    attachment = attach(path)
    engine = DataflowEngine(attachment.graph)
    engine.match(PAPER_QUERIES["Q1"].text)
    queue.put(_vm_rss_kib())


def _child_rebuild(payload_path: str, queue) -> None:
    """Worker route B: unpickle the payload, compile the index, report RSS."""
    with open(payload_path, "rb") as handle:
        graph = pickle.loads(handle.read())
    engine = DataflowEngine(graph)
    engine.match(PAPER_QUERIES["Q1"].text)
    queue.put(_vm_rss_kib())


def _worker_rss(target, argument: str) -> int:
    """Spawn one clean child (no inherited pages) and read its VmRSS."""
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    process = context.Process(target=target, args=(argument, queue))
    process.start()
    rss = queue.get(timeout=300)
    process.join(timeout=60)
    return rss


def bench_scale(scale_name: str, positivity: float, repeats: int) -> dict:
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)
    payload = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)

    divergences = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmpdir:
        artifact_path = os.path.join(tmpdir, "graph.rix")
        compile_start = time.perf_counter()
        report = compile_graph(graph, artifact_path)
        compile_seconds = time.perf_counter() - compile_start

        # The restart/worker path the store replaces: unpickle the
        # payload, compile the index.  Median over repeats (first
        # iterations warm allocator and page cache for both sides).
        rebuild_runs = []
        for _ in range(repeats):
            start = time.perf_counter()
            rebuilt = pickle.loads(payload)
            GraphIndex(rebuilt)
            rebuild_runs.append(time.perf_counter() - start)

        attach_runs = []
        for _ in range(repeats):
            start = time.perf_counter()
            attachment = attach(artifact_path)
            attach_runs.append(time.perf_counter() - start)
            attachment.close()

        rebuild_median = statistics.median(rebuild_runs)
        attach_median = statistics.median(attach_runs)

        # Zero-divergence cross-check: attached vs in-memory answers on
        # the paper mix, plus one sharded-store attach on the same graph.
        attachment = attach(artifact_path)
        baseline_engine = DataflowEngine(graph)
        attached_engine = DataflowEngine(attachment.graph)
        for name in CHECK_QUERIES:
            text = PAPER_QUERIES[name].text
            if baseline_engine.match(text).as_set() != attached_engine.match(text).as_set():
                print(f"DIVERGENCE: attached store answer differs on {name}", file=sys.stderr)
                divergences += 1
        attachment.close()

        manifest_path = os.path.join(tmpdir, "graph.manifest.json")
        compile_graph(graph, manifest_path, shards=SHARDS)
        sharded = attach(manifest_path)
        sharded_engine = DataflowEngine(sharded.graph)
        text = PAPER_QUERIES[CHECK_QUERIES[0]].text
        if baseline_engine.match(text).as_set() != sharded_engine.match(text).as_set():
            print("DIVERGENCE: sharded store answer differs on Q1", file=sys.stderr)
            divergences += 1
        sharded.close()

        # Per-worker RSS by route, in clean spawn children.
        payload_path = os.path.join(tmpdir, "graph.pkl")
        with open(payload_path, "wb") as handle:
            handle.write(payload)
        attach_rss = _worker_rss(_child_attach, artifact_path)
        rebuild_rss = _worker_rss(_child_rebuild, payload_path)

        artifact_bytes = os.path.getsize(artifact_path)

    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "cpu_count": os.cpu_count(),
        "queries": list(CHECK_QUERIES),
        "objects": report["objects"],
        "nodes": report["nodes"],
        "artifact_bytes": artifact_bytes,
        "payload_bytes": len(payload),
        "compile_seconds": round(compile_seconds, 6),
        "rebuild_seconds_median": round(rebuild_median, 6),
        "attach_seconds_median": round(attach_median, 6),
        "repeats": repeats,
        "attach_speedup": round(rebuild_median / max(attach_median, 1e-9), 3),
        "worker_rss_attach_kib": attach_rss,
        "worker_rss_rebuild_kib": rebuild_rss,
        "worker_rss_ratio": round(rebuild_rss / max(attach_rss, 1), 3),
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate attach speedup (and track the RSS ratio) against the baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    status = 0
    expected = reference["attach_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["attach_speedup"]
    print(
        f"regression check at {scale}: attach speedup {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: store attach regressed more than {tolerance:.0%} vs "
            f"{baseline_path}",
            file=sys.stderr,
        )
        status = 1
    expected_rss = reference.get("worker_rss_ratio")
    if expected_rss:
        rss_floor = expected_rss * (1.0 - tolerance)
        rss_got = measured["worker_rss_ratio"]
        print(
            f"regression check at {scale}: worker RSS ratio "
            f"(rebuild/attach) {rss_got:.2f}, baseline {expected_rss:.2f}, "
            f"floor {rss_floor:.2f}"
        )
        if rss_got < rss_floor:
            print(
                f"ERROR: attached-worker RSS regressed more than "
                f"{tolerance:.0%} vs {baseline_path}",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="absolute floor for the attach-vs-recompile ratio (default 5.0)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR8.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR8.json to compare the attach speedup against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the gate ratio (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, fewer repeats",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    repeats = SMOKE_REPEATS if args.smoke else REPEATS

    measured = bench_scale(scale, args.positivity, repeats)

    out_path = Path(args.out)
    report = {"benchmark": "bench_store", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_store"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== Persistent store attach vs recompile at {scale} "
        f"({measured['objects']} objects) ==="
    )
    print(
        f"artifact {measured['artifact_bytes']} bytes "
        f"(payload {measured['payload_bytes']} bytes), compile "
        f"{measured['compile_seconds']:.4f}s once"
    )
    print(
        f"rebuild (unpickle + index) {measured['rebuild_seconds_median']:.4f}s "
        f"| attach {measured['attach_seconds_median']:.4f}s "
        f"(medians of {measured['repeats']})"
    )
    print(f"attach speedup over recompile: {measured['attach_speedup']:.2f}x")
    print(
        f"worker RSS: attach {measured['worker_rss_attach_kib']} KiB vs "
        f"rebuild {measured['worker_rss_rebuild_kib']} KiB "
        f"(ratio {measured['worker_rss_ratio']:.2f})"
    )
    print(f"report written to {out_path}")

    status = 0
    if measured["attach_speedup"] < args.min_speedup:
        print(
            f"ERROR: attach speedup {measured['attach_speedup']:.2f}x is "
            f"below the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        status = 1
    if args.check_against:
        status = max(
            status, check_against(Path(args.check_against), measured, args.tolerance)
        )
    if measured["divergences"]:
        print(
            "ERROR: attached-store answers diverged from the in-memory engine",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
