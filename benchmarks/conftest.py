"""Shared fixtures and helpers for the benchmark harnesses.

Every harness regenerates one table or figure of the paper (see
DESIGN.md, "Per-experiment index").  The graphs are generated once per
session and cached here; the harnesses print the rows they measure in a
format close to the paper's tables so that ``bench_output.txt`` can be
compared side by side with the original numbers (see EXPERIMENTS.md).

Environment knobs:

* ``REPRO_SCALE`` — largest scale factor used (default ``S4``; use
  ``S6`` for the most faithful but slowest sweep).
* ``REPRO_BENCH_POSITIVITY`` — positivity rate of the default graphs
  (default ``0.05``, i.e. 5%).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name, scales_up_to

_GRAPH_CACHE: dict[tuple[str, float], object] = {}


def default_positivity() -> float:
    return float(os.environ.get("REPRO_BENCH_POSITIVITY", "0.05"))


def graph_for(scale_name: str, positivity: float | None = None):
    """Generate (and cache) the contact-tracing graph for one scale factor."""
    rate = default_positivity() if positivity is None else positivity
    key = (scale_name, rate)
    if key not in _GRAPH_CACHE:
        config = SCALE_FACTORS[scale_name].config(positivity_rate=rate)
        _GRAPH_CACHE[key] = generate_contact_tracing_graph(config)
    return _GRAPH_CACHE[key]


@pytest.fixture(scope="session")
def largest_scale_name() -> str:
    return default_scale_name()


@pytest.fixture(scope="session")
def largest_graph(largest_scale_name):
    """The largest experimental graph (the stand-in for the paper's G10)."""
    return graph_for(largest_scale_name)


@pytest.fixture(scope="session")
def scale_sweep(largest_scale_name):
    """All scale factors from S1 up to the configured largest one."""
    return scales_up_to(largest_scale_name)


#: Paper-style tables produced by the harnesses, emitted in the terminal summary
#: so they survive pytest's output capturing (and therefore end up in
#: ``bench_output.txt``).
_REPORTED_TABLES: list[str] = []


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a fixed-width table, print it, and queue it for the terminal summary."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "",
        f"=== {title} ===",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    text = "\n".join(lines)
    _REPORTED_TABLES.append(text)
    print(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: ARG001
    """Emit the collected paper-style tables after the benchmark summary."""
    if not _REPORTED_TABLES:
        return
    terminalreporter.section("paper-style result tables")
    for text in _REPORTED_TABLES:
        terminalreporter.write_line(text)
