"""Figure 5: effect of the positivity rate on query execution time.

Queries Q6–Q12 select Person nodes that tested positive at some point;
the paper varies the share of positive persons from 2% to 10% and
observes a linear relationship between positivity rate and execution
time.  This harness regenerates the largest graph at each rate and runs
the affected queries.
"""

from __future__ import annotations

import pytest

from conftest import graph_for, print_table
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_RATES = (0.02, 0.04, 0.06, 0.08, 0.10)
_QUERIES = tuple(name for name, q in PAPER_QUERIES.items() if q.uses_positivity)
_RESULTS: dict[str, list[tuple[float, float, int]]] = {}


@pytest.mark.parametrize("name", _QUERIES)
def bench_fig5_positivity_rate(benchmark, largest_scale_name, name):
    """Sweep the positivity rate for one positivity-sensitive query."""
    engines = {
        rate: DataflowEngine(graph_for(largest_scale_name, positivity=rate))
        for rate in _RATES
    }
    query = PAPER_QUERIES[name]

    def sweep():
        measurements = []
        for rate in _RATES:
            result = engines[rate].match_with_stats(query.text, expand_output=True)
            measurements.append((rate, result.total_seconds, result.output_size))
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RESULTS[name] = measurements
    benchmark.extra_info["series"] = [
        {"rate": r, "seconds": round(t, 6), "output": o} for r, t, o in measurements
    ]

    if len(_RESULTS) == len(_QUERIES):
        rows = []
        for query_name, series in _RESULTS.items():
            for rate, seconds, output in series:
                rows.append([query_name, f"{rate:.0%}", f"{seconds:.3f}", output])
        print_table(
            f"Figure 5 — effect of positivity rate on {largest_scale_name}",
            ["query", "positivity", "time (s)", "output size"],
            rows,
        )
