"""Durable streaming: WAL + snapshot recovery vs full stream replay (PR-6).

The resilience runtime makes a streaming session restartable: every
applied delta batch lands in a checksummed WAL
(:mod:`repro.resilience.wal`) and periodic snapshots capture the full
engine state (:mod:`repro.resilience.snapshot`).  After a crash,
``recover(snapshot, wal)`` rebuilds the session from the latest snapshot
plus the WAL tail.  This harness measures what that buys — and costs —
on the contact-tracing stream:

* **scratch replay** — the pre-PR-6 restart story: a fresh incremental
  engine cold-registers every query against the initial graph and
  re-applies the *entire* delta stream;
* **recovery** — ``recover()`` from a mid-stream snapshot: load the
  snapshot graph, cold-register the queries, replay only the WAL tail;
* **durability overhead** — the same continuous run with and without
  the WAL attached, isolating the per-batch logging cost.

The headline (gated) number is the **recovery speedup**: scratch-replay
seconds over median recovery seconds.  With the snapshot taken at the
stream midpoint the tail is half the batches, so the ratio must stay
well above 1x — a regression means WAL replay or snapshot loading got
disproportionately expensive.  Every run also cross-checks the recovered
tables against the continuous session's; any divergence exits non-zero
(the same contract as the other harnesses).

Measurements land in ``BENCH_PR6.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_recovery.py                 # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke \\
        --out bench_smoke_pr6.json --check-against BENCH_PR6.json \\
        --tolerance 0.25                                               # CI gate

The ratio is core-count independent (everything runs sequentially), so
the gate engages on any host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.datagen.streaming import contact_tracing_stream
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.resilience import recover, write_snapshot

#: The registered mix: full scans plus the join whose answer drifts with
#: every new meets edge (same mix as the PR-5 streaming harness).
STREAM_QUERIES = ("Q1", "Q2", "Q5")
#: Upper bound on replayed batches (keeps big sweeps sane).
MAX_BATCHES = 30
#: Recovery is read-only and repeatable: best-of over this many runs.
RECOVERY_REPEATS = 5
SMOKE_RECOVERY_REPEATS = 3


def tables(engine) -> dict:
    # ``recover()`` hands back the StreamingEngine itself; a DataflowEngine
    # reaches its session through ``streaming_session()``.
    session = getattr(engine, "streaming_session", lambda: engine)()
    return {name: session.table(name).as_set() for name in session.query_names()}


def replay(stream, batches, *, wal_path=None, snapshot_path=None, snapshot_at=None):
    """One continuous run; returns (seconds, engine) with queries registered.

    Registration is *inside* the timed region: a restart pays it no
    matter which path (scratch replay or recovery) it takes, so both
    sides of the gated ratio must include it.
    """
    start = time.perf_counter()
    engine = DataflowEngine(stream.fresh_initial(), incremental=True)
    for name in STREAM_QUERIES:
        engine.match(PAPER_QUERIES[name].text)
    session = engine.streaming_session()
    if wal_path is not None:
        session.attach_wal(str(wal_path))
    for number, batch in enumerate(batches, start=1):
        engine.apply_delta(batch)
        if snapshot_at is not None and number == snapshot_at:
            write_snapshot(session, snapshot_path)
    if session.wal is not None:
        session.wal.close()
    return time.perf_counter() - start, engine


def bench_scale(scale_name: str, positivity: float, max_batches: int, repeats: int) -> dict:
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    stream = contact_tracing_stream(config, batch_size=1)
    batches = stream.batches[:max_batches]
    # Snapshot at the 3/4 mark: a crash typically lands close to the
    # latest snapshot, and the short tail keeps the gated ratio out of
    # the measurement noise at smoke scale.
    snapshot_at = max(1, (3 * len(batches)) // 4)

    # Scratch replay: the restart path this subsystem replaces.  Both
    # sides of the gated ratio take the *minimum* over ``repeats`` runs —
    # the least noise-contaminated estimate of the true cost (the smoke
    # regime is tens of milliseconds, where scheduler jitter dwarfs any
    # real regression the gate is after).
    scratch_runs = []
    for _ in range(repeats):
        seconds, reference = replay(stream, batches)
        scratch_runs.append(seconds)
    scratch_seconds = min(scratch_runs)
    reference_tables = tables(reference)

    # Continuous durable run: WAL on every batch, snapshot at midpoint.
    divergences = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as tmpdir:
        wal_path = Path(tmpdir) / "deltas.wal"
        snapshot_path = Path(tmpdir) / "state.snap"
        durable_seconds, durable = replay(
            stream,
            batches,
            wal_path=wal_path,
            snapshot_path=snapshot_path,
            snapshot_at=snapshot_at,
        )
        if tables(durable) != reference_tables:
            divergences += 1

        recovery_runs = []
        for _ in range(repeats):
            start = time.perf_counter()
            recovered, report = recover(snapshot_path, wal_path)
            recovery_runs.append(time.perf_counter() - start)
            if tables(recovered) != reference_tables:
                divergences += 1
        wal_bytes = wal_path.stat().st_size
        snapshot_bytes = snapshot_path.stat().st_size

    recovery_seconds = min(recovery_runs)
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "cpu_count": os.cpu_count(),
        "queries": list(STREAM_QUERIES),
        "batches": len(batches),
        "snapshot_at_batch": snapshot_at,
        "wal_tail_replayed": report.replayed,
        "scratch_seconds": round(scratch_seconds, 6),
        "durable_seconds": round(durable_seconds, 6),
        "durability_overhead": round(durable_seconds / max(scratch_seconds, 1e-9), 3),
        "recovery_seconds": round(recovery_seconds, 6),
        "recovery_seconds_median": round(statistics.median(recovery_runs), 6),
        "recovery_repeats": repeats,
        "recovery_speedup": round(scratch_seconds / max(recovery_seconds, 1e-9), 3),
        "wal_bytes": wal_bytes,
        "snapshot_bytes": snapshot_bytes,
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate the recovery speedup against the committed baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["recovery_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["recovery_speedup"]
    print(
        f"regression check at {scale}: recovery speedup {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: snapshot+WAL recovery regressed more than {tolerance:.0%} "
            f"vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument(
        "--max-batches",
        type=int,
        default=MAX_BATCHES,
        help="cap on replayed batches",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.1,
        help="absolute floor for the recovery speedup (default 1.1)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR6.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR6.json to compare the recovery speedup against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the gate ratio (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, fewer batches and repeats",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    max_batches = max(2, args.max_batches if not args.smoke else min(args.max_batches, 16))
    repeats = SMOKE_RECOVERY_REPEATS if args.smoke else RECOVERY_REPEATS

    measured = bench_scale(scale, args.positivity, max_batches, repeats)

    out_path = Path(args.out)
    report = {"benchmark": "bench_recovery", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_recovery"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== Snapshot + WAL recovery at {scale} "
        f"(queries {', '.join(STREAM_QUERIES)}) ==="
    )
    print(
        f"stream: {measured['batches']} batches, snapshot at batch "
        f"{measured['snapshot_at_batch']}, WAL tail of "
        f"{measured['wal_tail_replayed']} record(s) "
        f"({measured['wal_bytes']} WAL bytes, "
        f"{measured['snapshot_bytes']} snapshot bytes)"
    )
    print(
        f"scratch replay {measured['scratch_seconds']:.4f}s | durable run "
        f"{measured['durable_seconds']:.4f}s "
        f"({measured['durability_overhead']:.2f}x overhead) | recovery "
        f"{measured['recovery_seconds']:.4f}s min of "
        f"{measured['recovery_repeats']}"
    )
    print(f"recovery speedup over scratch replay: {measured['recovery_speedup']:.2f}x")
    print(f"report written to {out_path}")

    status = 0
    if measured["recovery_speedup"] < args.min_speedup:
        print(
            f"ERROR: recovery speedup {measured['recovery_speedup']:.2f}x is "
            f"below the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        status = 1
    if args.check_against:
        status = max(
            status, check_against(Path(args.check_against), measured, args.tolerance)
        )
    if measured["divergences"]:
        print(
            "ERROR: recovered state diverged from the continuous run",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
