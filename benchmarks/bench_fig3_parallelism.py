"""Figure 3: effect of parallelism on query execution time (PR-4 harness).

The paper sweeps CPU cores from 1 to 48 with Rayon-based data
parallelism and observes near-linear speedup for the demanding queries.
This harness sweeps the dataflow engine's worker count over **both**
parallel backends on the Q10–Q12 frontier-explosion mix (plus Q5 for
context):

* ``thread`` — the GIL-bound thread pool: output-invariant, but the
  measured curve is expected to be ~flat on CPU-bound queries (the
  documented CPython substitution recorded since the seed);
* ``process`` — the :mod:`repro.parallel` worker-process pool: the
  execution plan ships the graph to each worker once, chunk-level
  Steps 1–3 run in the workers, and the parent does a single coalescing
  merge.  This is the backend that can actually reproduce the shape of
  the paper's Fig. 3 — *given cores*.  On a single-core host the sweep
  degenerates into an honest measurement of dispatch overhead, so the
  report records ``cpu_count`` next to every ratio.

Per point the harness reports the wall-clock time, the speedup vs the
single-worker run, and the **parallel efficiency** ``t(1) / (w · t(w))``
(1.0 = perfect scaling).  Every measured table is cross-checked against
the sequential engine; any divergence makes the process exit non-zero
(the same contract as ``bench_pr3_fullscan.py``).

Measurements land in ``BENCH_PR4.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_fig3_parallelism.py             # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_fig3_parallelism.py --smoke \\
        --out bench_smoke_pr4.json --check-against BENCH_PR4.json \\
        --tolerance 0.25                                                   # CI gate

With ``--check-against`` the run also fails if the process-backend
median speedup at the gate worker count falls more than ``--tolerance``
below the same-scale baseline — skipped (with a warning) on single-core
hosts, where no speedup is physically possible.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_BENCH_DIR = Path(__file__).resolve().parent
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

from ci_gate import speedup_gate_decision

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import EvaluationError

#: The frontier-explosion mix whose median is the headline number.
FOCUS_QUERIES = ("Q10", "Q11", "Q12")
#: Additional demanding query measured for context.
CONTEXT_QUERIES = ("Q5",)
WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
#: Worker count the regression gate reads (the paper's "sweet spot" range).
GATE_WORKERS = 4


def best_of(rounds: int, fn, *args):
    """Smallest wall-clock time of ``rounds`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def canonical_families(engine, text):
    try:
        families = engine.match_intervals(text)
    except EvaluationError:
        return None
    return sorted(
        ((bindings, tuple(times.intervals)) for bindings, times in families), key=repr
    )


def bench_scale(scale_name: str, positivity: float, rounds: int) -> dict:
    """The worker × backend sweep on one graph."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)

    sequential = DataflowEngine(graph)
    queries: dict[str, dict] = {}
    divergences = 0

    for name in FOCUS_QUERIES + CONTEXT_QUERIES:
        text = PAPER_QUERIES[name].text

        def run(engine):
            return engine.match_with_stats(text, expand_output=True)

        # Single-worker reference: the common sequential path of both
        # backends, and the ground truth for every divergence check.
        base_seconds, base_result = best_of(rounds, run, sequential)
        reference_rows = base_result.table.as_set()
        reference_families = canonical_families(sequential, text)

        points: dict[str, dict] = {}
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                if workers == 1:
                    entry = {
                        "seconds": round(base_seconds, 6),
                        "speedup": 1.0,
                        "efficiency": 1.0,
                        "outputs_agree": True,
                    }
                    points[f"{backend}-1"] = entry
                    continue
                engine = DataflowEngine(
                    graph, workers=workers, parallel_backend=backend
                )
                # Warm-up: ships the plan payload (process) and builds
                # hop/condition caches, so the timed region measures the
                # steady state — repeated queries on an installed graph.
                warm = run(engine)
                agree = warm.table.as_set() == reference_rows
                seconds, result = best_of(rounds, run, engine)
                agree = agree and result.table.as_set() == reference_rows
                if reference_families is not None:
                    agree = agree and (
                        canonical_families(engine, text) == reference_families
                    )
                if not agree:
                    divergences += 1
                points[f"{backend}-{workers}"] = {
                    "seconds": round(seconds, 6),
                    "speedup": round(base_seconds / max(seconds, 1e-9), 3),
                    "efficiency": round(
                        base_seconds / max(workers * seconds, 1e-9), 3
                    ),
                    "outputs_agree": agree,
                }
        queries[name] = {
            "baseline_seconds": round(base_seconds, 6),
            "output_size": base_result.output_size,
            "points": points,
        }

    def median_speedup(backend: str, workers: int, names=FOCUS_QUERIES) -> float:
        return round(
            statistics.median(
                queries[name]["points"][f"{backend}-{workers}"]["speedup"]
                for name in names
            ),
            3,
        )

    summary = {
        backend: {
            str(workers): median_speedup(backend, workers)
            for workers in WORKER_COUNTS
        }
        for backend in BACKENDS
    }
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "cpu_count": os.cpu_count(),
        "num_nodes": graph.num_nodes(),
        "num_edges": graph.num_edges(),
        "queries": queries,
        "focus_queries": list(FOCUS_QUERIES),
        "focus_median_speedup": summary,
        "gate_workers": GATE_WORKERS,
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate the process-backend focus median at ``GATE_WORKERS`` workers.

    The skip/engage rule (core minimum, missing baseline, core-count
    mismatch) is the shared :func:`ci_gate.speedup_gate_decision` — the
    single, unit-tested definition every core-sensitive gate uses.
    """
    cores = os.cpu_count() or 1
    scale = measured["scale"]
    decision = speedup_gate_decision(
        baseline_path,
        scale,
        cores,
        min_cores=2,
        harness=Path(__file__).name,
    )
    if not decision.engage:
        print(f"WARNING: {decision.reason}")
        return 0
    reference = decision.reference
    expected = reference["focus_median_speedup"]["process"][str(GATE_WORKERS)]
    floor = expected * (1.0 - tolerance)
    got = measured["focus_median_speedup"]["process"][str(GATE_WORKERS)]
    print(
        f"regression check at {scale}: process backend Q10-Q12 median at "
        f"{GATE_WORKERS} workers {got:.2f}x, baseline {expected:.2f}x "
        f"(recorded on {reference.get('cpu_count', '?')} cores, running on "
        f"{cores}), floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: process-backend speedup regressed more than "
            f"{tolerance:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR4.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR4.json to compare the process-backend median against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the gate median (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale (still best-of rounds so ratios are stable)",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    rounds = max(1, args.rounds)

    measured = bench_scale(scale, args.positivity, rounds)

    out_path = Path(args.out)
    report = {"benchmark": "bench_fig3_parallelism", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_fig3_parallelism"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    report["rounds"] = rounds
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== Figure 3: parallelism at {scale} "
        f"({measured['num_nodes']} nodes, {measured['num_edges']} edges, "
        f"{measured['cpu_count']} CPU core(s)) ==="
    )
    header = (
        f"{'query':<6}{'backend':<9}{'workers':>8}{'time (s)':>11}"
        f"{'speedup':>9}{'efficiency':>12}  agree"
    )
    print(header)
    print("-" * len(header))
    for name, entry in measured["queries"].items():
        for backend in BACKENDS:
            for workers in WORKER_COUNTS:
                point = entry["points"][f"{backend}-{workers}"]
                print(
                    f"{name:<6}{backend:<9}{workers:>8}{point['seconds']:>11.4f}"
                    f"{point['speedup']:>8.2f}x{point['efficiency']:>12.3f}"
                    f"  {'yes' if point['outputs_agree'] else 'NO'}"
                )
    for backend in BACKENDS:
        medians = measured["focus_median_speedup"][backend]
        curve = ", ".join(f"{w}w: {medians[str(w)]:.2f}x" for w in WORKER_COUNTS)
        print(f"Q10-Q12 median speedup [{backend}]: {curve}")
    print(f"report written to {out_path}")

    status = 0
    if args.check_against:
        status = check_against(Path(args.check_against), measured, args.tolerance)
    if measured["divergences"]:
        print("ERROR: engine outputs diverged", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
