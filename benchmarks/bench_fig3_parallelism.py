"""Figure 3: effect of parallelism on query execution time.

The paper sweeps the number of CPU cores from 1 to 48 on the largest
graph and observes that the demanding queries (Q5, Q10–Q12) benefit up
to 16 cores.  This harness sweeps the dataflow engine's worker count.

Documented substitution: the paper's implementation uses Rayon (native
threads, no GIL); CPython threads cannot speed up this CPU-bound
workload, so the measured curve is expected to be flat — the harness
still produces it so the difference is recorded honestly in
EXPERIMENTS.md rather than silently dropped.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_WORKER_COUNTS = (1, 2, 4, 8)
_DEMANDING_QUERIES = ("Q5", "Q9", "Q11", "Q12")
_RESULTS: dict[str, list[tuple[int, float]]] = {}


@pytest.mark.parametrize("name", _DEMANDING_QUERIES)
def bench_fig3_parallelism_sweep(benchmark, largest_graph, largest_scale_name, name):
    """Run one demanding query with 1, 2, 4 and 8 workers."""
    query = PAPER_QUERIES[name]
    engines = {workers: DataflowEngine(largest_graph, workers=workers) for workers in _WORKER_COUNTS}

    def sweep():
        timings = []
        for workers in _WORKER_COUNTS:
            result = engines[workers].match_with_stats(query.text, expand_output=True)
            timings.append((workers, result.total_seconds))
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RESULTS[name] = timings
    benchmark.extra_info["timings"] = {str(w): round(t, 6) for w, t in timings}

    if len(_RESULTS) == len(_DEMANDING_QUERIES):
        rows = []
        for query_name, series in _RESULTS.items():
            for workers, seconds in series:
                rows.append([query_name, workers, f"{seconds:.3f}"])
        print_table(
            f"Figure 3 — effect of parallelism on {largest_scale_name} "
            "(GIL-bound: flat curve expected, see EXPERIMENTS.md)",
            ["query", "workers", "time (s)"],
            rows,
        )
