"""Figure 4: effect of the number of temporal-navigation steps.

Q10, Q11 and Q12 contain a temporal-navigation operator with a numerical
occurrence indicator (``PREV[0,m]`` / ``NEXT[0,m]``).  The paper fixes
``n = 0`` and sweeps ``m`` from 4 to 48, observing an initially linear
increase that plateaus around ``m = 16`` (the reachable window saturates
at the objects' lifespans).  This harness sweeps the same bound.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.dataflow import DataflowEngine, get_query

_BOUNDS = (4, 12, 24, 36, 48)
_QUERIES = ("Q10", "Q11", "Q12")
_RESULTS: dict[str, list[tuple[int, float, int]]] = {}


@pytest.mark.parametrize("name", _QUERIES)
def bench_fig4_temporal_navigation_steps(benchmark, largest_graph, largest_scale_name, name):
    """Sweep the temporal-navigation upper bound m for one query."""
    engine = DataflowEngine(largest_graph)

    def sweep():
        measurements = []
        for bound in _BOUNDS:
            query = get_query(name, temporal_bound=bound)
            result = engine.match_with_stats(query.text, expand_output=True)
            measurements.append((bound, result.total_seconds, result.output_size))
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RESULTS[name] = measurements
    benchmark.extra_info["series"] = [
        {"m": m, "seconds": round(t, 6), "output": o} for m, t, o in measurements
    ]

    if len(_RESULTS) == len(_QUERIES):
        rows = []
        for query_name, series in _RESULTS.items():
            for bound, seconds, output in series:
                rows.append([query_name, bound, f"{seconds:.3f}", output])
        print_table(
            f"Figure 4 — effect of temporal navigation steps on {largest_scale_name}",
            ["query", "m (max temporal steps)", "time (s)", "output size"],
            rows,
        )
