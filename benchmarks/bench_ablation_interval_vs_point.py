"""Ablation: interval-based dataflow evaluation vs. naive point-based evaluation.

Section VI argues for keeping intermediate results in the interval
representation (Steps 1–2) and expanding to time points only at the end.
This ablation quantifies the claim by comparing:

* the dataflow engine over the coalesced ITPG, against
* the naive baseline that expands the whole graph to its point-based TPG
  and evaluates with the reference algorithm.

The reference algorithm materializes O(M²) relations, so this comparison
is only feasible on a deliberately small graph; the point is the
relative gap, not the absolute numbers.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.baselines import NaivePointEngine
from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_QUERIES = ("Q2", "Q3", "Q5", "Q6", "Q9")
_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def small_graph():
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=15, num_locations=10, num_rooms=3, num_windows=16, seed=21
        ),
        positivity_rate=0.2,
        seed=21,
    )
    return generate_contact_tracing_graph(config)


@pytest.mark.parametrize("name", _QUERIES)
def bench_ablation_interval_vs_point(benchmark, small_graph, name):
    """Compare the two evaluation strategies on one query."""
    dataflow = DataflowEngine(small_graph)
    naive = NaivePointEngine(small_graph)
    text = PAPER_QUERIES[name].text

    def run_both():
        interval_result = dataflow.match_with_stats(text, expand_output=True)
        naive_result = naive.match_with_stats(text)
        assert interval_result.table.as_set() == naive_result.table.as_set()
        return interval_result, naive_result

    interval_result, naive_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _RESULTS[name] = {
        "interval": interval_result.total_seconds,
        "naive": naive_result.total_seconds,
        "output": interval_result.output_size,
    }
    benchmark.extra_info["speedup"] = round(
        naive_result.total_seconds / max(interval_result.total_seconds, 1e-9), 2
    )

    if len(_RESULTS) == len(_QUERIES):
        rows = [
            [
                q,
                f"{_RESULTS[q]['interval']:.4f}",
                f"{_RESULTS[q]['naive']:.4f}",
                f"{_RESULTS[q]['naive'] / max(_RESULTS[q]['interval'], 1e-9):.1f}x",
                _RESULTS[q]["output"],
            ]
            for q in _QUERIES
        ]
        print_table(
            "Ablation — interval-based dataflow vs. naive point-based evaluation "
            "(15 persons, 16 windows)",
            ["query", "interval engine (s)", "point baseline (s)", "speedup", "output size"],
            rows,
        )
