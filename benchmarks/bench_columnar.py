"""PR-10 regression harness: columnar kernel vs interpreted evaluation.

PR 10 added a second evaluation kernel (``DataflowEngine(kernel=
"columnar")``): fused step chains compile into columnar ops over dense
NumPy arrays — adjacency/existence/condition tables as int64 CSR,
interval families as flat ``(owner, start, end)`` arrays on a guarded
global time axis, navigation and coalescing as sort + ``searchsorted``
sweeps.  The interpreted per-row engine remains the semantics oracle;
chain shapes the kernel does not cover fall back to it with the reason
recorded in ``explain()``.

The harness runs the full **Table-II query mix** (Q1–Q12) twice on the
same graph —

* **interpreted** — the default per-row coalescing engine;
* **columnar** — an engine constructed with ``kernel="columnar"``
  (Q6–Q8 are point-mode and legitimately fall back, so their ratio
  hovers around 1x and drags the median down — that is the honest
  number for the whole mix);

cross-checks every answer (point tables, and interval families where
defined) between the two engines, and reports per-query and median
speedups.  The headline number is the median over all twelve queries.

The measurements land in ``BENCH_PR10.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_columnar.py               # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_columnar.py --scale S1    # add the S1 section
    PYTHONPATH=src python benchmarks/bench_columnar.py --smoke \\
        --out bench_smoke_pr10.json --check-against BENCH_PR10.json  # CI regression gate

With ``--check-against`` the process exits non-zero if any output pair
diverges or if the measured median speedup falls more than
``--tolerance`` below the same-scale baseline.  When NumPy is not
importable (the bench-gate CI job installs none) the speedup leg is
skipped — there is nothing to measure — but the harness still verifies
that the columnar-configured engine degrades to interpreted with
identical output.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import EvaluationError
from repro.perf import columnar, graph_index_for

#: The whole Table-II mix; the headline median runs over all of it.
MIX = tuple(PAPER_QUERIES)


def best_of(rounds: int, fn, *args):
    """Smallest wall-clock time of ``rounds`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _families_agree(a_engine, b_engine, text: str) -> bool:
    """Interval output parity: same families, or the same rejection."""
    try:
        expected = a_engine.match_intervals(text)
    except EvaluationError:
        try:
            b_engine.match_intervals(text)
        except EvaluationError:
            return True
        return False
    try:
        got = b_engine.match_intervals(text)
    except EvaluationError:
        return False
    return sorted(got, key=repr) == sorted(expected, key=repr)


def bench_scale(scale_name: str, positivity: float, rounds: int) -> dict:
    """The Table-II mix, columnar vs interpreted, on one graph."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)

    start = time.perf_counter()
    graph_index_for(graph)
    compile_seconds = time.perf_counter() - start

    interpreted = DataflowEngine(graph)
    columnar_engine = DataflowEngine(graph, kernel="columnar")

    queries: dict[str, dict] = {}
    divergences = 0
    for name in MIX:
        text = PAPER_QUERIES[name].text
        plan = columnar_engine.explain(text)
        interpreted_seconds, expected = best_of(
            rounds, interpreted.match_with_stats, text
        )
        columnar_seconds, got = best_of(
            rounds, columnar_engine.match_with_stats, text
        )
        agree = got.table.as_set() == expected.table.as_set() and _families_agree(
            interpreted, columnar_engine, text
        )
        if not agree:
            divergences += 1
        queries[name] = {
            "interpreted_seconds": round(interpreted_seconds, 6),
            "columnar_seconds": round(columnar_seconds, 6),
            "speedup": round(interpreted_seconds / max(columnar_seconds, 1e-9), 3),
            "output_size": expected.output_size,
            "effective_kernel": plan["effective_kernel"],
            "kernel_fallback": plan["kernel_fallback"],
            "outputs_agree": agree,
        }

    speedups = [entry["speedup"] for entry in queries.values()]
    covered = [
        entry["speedup"]
        for entry in queries.values()
        if entry["effective_kernel"] == "columnar"
    ]
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "num_nodes": graph.num_nodes(),
        "num_edges": graph.num_edges(),
        "index_compile_seconds": round(compile_seconds, 6),
        "queries": queries,
        "median_speedup": round(statistics.median(speedups), 3),
        "covered_median_speedup": (
            round(statistics.median(covered), 3) if covered else None
        ),
        "covered_queries": sum(
            1 for e in queries.values() if e["effective_kernel"] == "columnar"
        ),
        "divergences": divergences,
    }


def check_fallback_parity(scale_name: str, positivity: float) -> int:
    """NumPy-absent leg: the columnar engine must answer interpreted-identical."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)
    interpreted = DataflowEngine(graph)
    degraded = DataflowEngine(graph, kernel="columnar")
    failures = 0
    for name in MIX:
        text = PAPER_QUERIES[name].text
        plan = degraded.explain(text)
        if plan["effective_kernel"] != "interpreted":
            print(f"ERROR: {name} claims columnar without numpy", file=sys.stderr)
            failures += 1
            continue
        if degraded.match(text).as_set() != interpreted.match(text).as_set():
            print(f"ERROR: {name} diverged in degraded mode", file=sys.stderr)
            failures += 1
    print(
        f"numpy unavailable: verified interpreted-degradation parity on "
        f"{len(MIX)} queries at {scale_name} ({failures} failures); "
        "skipping the speedup measurement"
    )
    return failures


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Compare the measured Table-II median against the same-scale baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["median_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["median_speedup"]
    print(
        f"regression check at {scale}: measured Table-II median {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: columnar median speedup regressed more than "
            f"{tolerance:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR10.json to compare the Table-II median against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the Table-II median (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale (still best-of-3 so the ratio is stable)",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    rounds = max(1, args.rounds)

    if not columnar.available():
        failures = check_fallback_parity(scale, args.positivity)
        Path(args.out).write_text(
            json.dumps(
                {
                    "benchmark": "bench_columnar",
                    "skipped": "numpy is not installed",
                    "degradation_parity_failures": failures,
                },
                indent=2,
            )
            + "\n"
        )
        return 1 if failures else 0

    measured = bench_scale(scale, args.positivity, rounds)

    out_path = Path(args.out)
    report = {"benchmark": "bench_columnar", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_columnar"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    report["rounds"] = rounds
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== columnar kernel at {scale} "
        f"({measured['num_nodes']} nodes, {measured['num_edges']} edges) ==="
    )
    header = (
        f"{'query':<6}{'interp (s)':>12}{'columnar (s)':>14}{'speedup':>9}"
        f"{'rows':>9}  kernel       agree"
    )
    print(header)
    print("-" * len(header))
    for name, entry in measured["queries"].items():
        print(
            f"{name:<6}{entry['interpreted_seconds']:>12.4f}"
            f"{entry['columnar_seconds']:>14.4f}{entry['speedup']:>8.2f}x"
            f"{entry['output_size']:>9}  {entry['effective_kernel']:<12}"
            f"{'yes' if entry['outputs_agree'] else 'NO'}"
        )
    covered = measured["covered_median_speedup"]
    print(
        f"median speedup: {measured['median_speedup']:.2f}x over the full "
        f"Table-II mix ({measured['covered_queries']}/12 columnar-covered, "
        f"{covered:.2f}x on the covered set; "
        f"index compile: {measured['index_compile_seconds']:.3f}s)"
    )
    print(f"report written to {out_path}")

    status = 0
    if args.check_against:
        status = check_against(Path(args.check_against), measured, args.tolerance)
    if measured["divergences"]:
        print("ERROR: engine outputs diverged", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
