"""Perf-regression harness: compiled index + interval algebra vs the seed paths.

Runs the Table-II query mix (Q1–Q12) through the dataflow engine twice —
once on the seed evaluation path (``use_index=False``) and once on the
compiled :class:`~repro.perf.graph_index.GraphIndex` path — cross-checks
that the binding tables are identical, and records the per-query and
median speedups.  A second section does the same for the bottom-up
evaluator (point-based vs interval-native) on the running example and
the SUBSET-SUM hardness gadget.

The measurements land in ``BENCH_PR1.json`` (see PERFORMANCE.md for how
to read it); later PRs are expected to re-run this harness and defend
the trajectory.  The process exits non-zero if any engine pair diverges,
which is what the CI smoke job asserts.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py            # default scale
    PYTHONPATH=src python benchmarks/bench_perf_regression.py --smoke    # CI: S1, 1 round
    REPRO_SCALE=S6 PYTHONPATH=src python benchmarks/bench_perf_regression.py
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.random_graphs import random_path_expression
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.eval.bottom_up import BottomUpEvaluator
from repro.model.examples import contact_tracing_example
from repro.perf import IntervalBottomUpEvaluator, graph_index_for
from repro.reductions import subset_sum_reduction


def best_of(rounds: int, fn, *args, **kwargs):
    """Smallest wall-clock time of ``rounds`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_dataflow(scale_name: str, positivity: float, rounds: int) -> dict:
    """The Table-II mix, seed path vs indexed path, on one generated graph."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)

    start = time.perf_counter()
    graph_index_for(graph)
    compile_seconds = time.perf_counter() - start

    legacy = DataflowEngine(graph, use_index=False)
    indexed = DataflowEngine(graph, use_index=True)

    queries: dict[str, dict] = {}
    divergences = 0
    for name, query in PAPER_QUERIES.items():
        legacy_seconds, legacy_result = best_of(
            rounds, legacy.match_with_stats, query.text, expand_output=True
        )
        indexed_seconds, indexed_result = best_of(
            rounds, indexed.match_with_stats, query.text, expand_output=True
        )
        agree = legacy_result.table.as_set() == indexed_result.table.as_set()
        if not agree:
            divergences += 1
        queries[name] = {
            "legacy_seconds": round(legacy_seconds, 6),
            "indexed_seconds": round(indexed_seconds, 6),
            "legacy_interval_seconds": round(legacy_result.interval_seconds, 6),
            "indexed_interval_seconds": round(indexed_result.interval_seconds, 6),
            "speedup": round(legacy_seconds / max(indexed_seconds, 1e-9), 3),
            "output_size": indexed_result.output_size,
            "outputs_agree": agree,
        }
    speedups = [entry["speedup"] for entry in queries.values()]
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "num_nodes": graph.num_nodes(),
        "num_edges": graph.num_edges(),
        "index_compile_seconds": round(compile_seconds, 6),
        "queries": queries,
        "median_speedup": round(statistics.median(speedups), 3),
        "min_speedup": round(min(speedups), 3),
        "divergences": divergences,
    }


def bench_bottom_up(rounds: int) -> dict:
    """Point-based vs interval-native bottom-up on exact small workloads."""
    cases: dict[str, dict] = {}
    divergences = 0

    figure1 = contact_tracing_example()
    paths = [random_path_expression(seed) for seed in range(6)]
    point_seconds, point_relations = best_of(
        rounds,
        lambda: [BottomUpEvaluator(figure1).evaluate(p) for p in paths],
    )
    interval_seconds, interval_relations = best_of(
        rounds,
        lambda: [
            IntervalBottomUpEvaluator(figure1).evaluate_points(p) for p in paths
        ],
    )
    agree = point_relations == interval_relations
    if not agree:
        divergences += 1
    cases["running_example_random_paths"] = {
        "point_seconds": round(point_seconds, 6),
        "interval_seconds": round(interval_seconds, 6),
        "speedup": round(point_seconds / max(interval_seconds, 1e-9), 3),
        "outputs_agree": agree,
    }

    # A long temporal domain is the design point of the interval algebra:
    # the point evaluator pays |Ω|² per composition, the interval one pays
    # per maximal diagonal.
    gadget = subset_sum_reduction([13, 21, 34, 55, 89], 160)
    point_seconds, point_relation = best_of(
        rounds, lambda: BottomUpEvaluator(gadget.graph).evaluate(gadget.path)
    )
    interval_seconds, interval_relation = best_of(
        rounds,
        lambda: IntervalBottomUpEvaluator(gadget.graph).evaluate_points(gadget.path),
    )
    agree = point_relation == interval_relation
    if not agree:
        divergences += 1
    cases["subset_sum_gadget"] = {
        "point_seconds": round(point_seconds, 6),
        "interval_seconds": round(interval_seconds, 6),
        "speedup": round(point_seconds / max(interval_seconds, 1e-9), 3),
        "outputs_agree": agree,
    }
    return {"cases": cases, "divergences": divergences}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor for the dataflow mix (default: REPRO_SCALE or S4)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, one round (still cross-checks outputs)",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    rounds = 1 if args.smoke else max(1, args.rounds)

    dataflow = bench_dataflow(scale, args.positivity, rounds)
    bottom_up = bench_bottom_up(rounds)
    report = {
        "benchmark": "bench_perf_regression",
        "python": platform.python_version(),
        "rounds": rounds,
        "dataflow": dataflow,
        "bottom_up": bottom_up,
        "total_divergences": dataflow["divergences"] + bottom_up["divergences"],
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"=== dataflow engine, Table-II mix at {scale} "
          f"({dataflow['num_nodes']} nodes, {dataflow['num_edges']} edges) ===")
    header = f"{'query':<6}{'legacy (s)':>12}{'indexed (s)':>13}{'speedup':>9}  agree"
    print(header)
    print("-" * len(header))
    for name, entry in dataflow["queries"].items():
        print(
            f"{name:<6}{entry['legacy_seconds']:>12.4f}"
            f"{entry['indexed_seconds']:>13.4f}{entry['speedup']:>8.2f}x"
            f"  {'yes' if entry['outputs_agree'] else 'NO'}"
        )
    print(f"median speedup: {dataflow['median_speedup']:.2f}x "
          f"(index compile: {dataflow['index_compile_seconds']:.3f}s)")
    for name, entry in bottom_up["cases"].items():
        print(f"bottom-up {name}: {entry['speedup']:.2f}x "
              f"({'agree' if entry['outputs_agree'] else 'DIVERGE'})")
    print(f"report written to {out_path}")

    if report["total_divergences"]:
        print("ERROR: engine outputs diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
