"""PR-3 regression harness: interval-native vs point-expanded output.

PR 3 made the coalescing engine's output path lazy: for every query
whose variables share one temporal group (all of Q1–Q5 and the Q9–Q12
shapes), ``match_with_stats`` now returns an
:class:`~repro.eval.bindings.IntervalBindingTable` built directly from
the coalesced per-binding families — point rows expand only when the
table is actually read.  The workload this targets is the **Q1/Q2/Q5
full-scan mix**: queries whose evaluation is cheap but whose output used
to be dominated by expanding large interval families into point rows
(and sorting them) inside the hot loop.

The harness runs each query twice on the *same* coalescing engine —

* **lazy** — ``match_with_stats`` plus the interval-native size
  (``len(table)``), i.e. the new default output path;
* **eager** — the same call followed by forcing ``table.rows``, i.e.
  exactly the point-expansion work the seed/PR-2 output path did;

cross-checks the expanded rows (and the ``match_intervals`` families)
against the legacy row-frontier point engine, and reports per-query and
median speedups.  The headline number is the median over Q1/Q2/Q5.

The measurements land in ``BENCH_PR3.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_pr3_fullscan.py              # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_pr3_fullscan.py --scale S1   # add the S1 section
    PYTHONPATH=src python benchmarks/bench_pr3_fullscan.py --smoke \\
        --out bench_smoke_pr3.json --check-against BENCH_PR3.json       # CI regression gate

With ``--check-against`` the process exits non-zero if any output pair
diverges or if the measured Q1/Q2/Q5 median speedup falls more than
``--tolerance`` (default 10%) below the same-scale baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import EvaluationError
from repro.eval.bindings import IntervalBindingTable, expand_match_families
from repro.perf import graph_index_for

#: The full-scan mix whose median is the headline number.
FOCUS_QUERIES = ("Q1", "Q2", "Q5")
#: Additional single-group queries measured for context.
CONTEXT_QUERIES = ("Q3", "Q4", "Q9", "Q10", "Q11", "Q12")


def best_of(rounds: int, fn, *args):
    """Smallest wall-clock time of ``rounds`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_scale(scale_name: str, positivity: float, rounds: int) -> dict:
    """The single-group query mix, lazy vs eager output, on one graph."""
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)

    start = time.perf_counter()
    graph_index_for(graph)
    compile_seconds = time.perf_counter() - start

    coalesced = DataflowEngine(graph)
    legacy = DataflowEngine(graph, use_coalesced=False)

    def run_lazy(text: str):
        result = coalesced.match_with_stats(text)
        # Interval-native size only — no point expansion.
        assert result.output_size == len(result.table)
        return result

    def run_eager(text: str):
        # expand_output forces the point expansion + sort inside the
        # timed region — the former default output path.
        return coalesced.match_with_stats(text, expand_output=True)

    queries: dict[str, dict] = {}
    divergences = 0
    for name in FOCUS_QUERIES + CONTEXT_QUERIES:
        query = PAPER_QUERIES[name]
        lazy_seconds, lazy_result = best_of(rounds, run_lazy, query.text)
        eager_seconds, eager_result = best_of(rounds, run_eager, query.text)

        table = lazy_result.table
        is_lazy = isinstance(table, IntervalBindingTable)
        # Cross-checks: the lazily expanded rows and the coalesced
        # families must both reproduce the legacy point engine exactly.
        legacy_table = legacy.match(query.text)
        agree = table.as_set() == legacy_table.as_set() == eager_result.table.as_set()
        try:
            families = coalesced.match_intervals(query.text)
        except EvaluationError:
            families = None
        if families is not None:
            agree = agree and (
                expand_match_families(families, legacy_table.variables)
                == legacy_table.as_set()
            )
        if not agree:
            divergences += 1

        entry = {
            "eager_seconds": round(eager_seconds, 6),
            "lazy_seconds": round(lazy_seconds, 6),
            "speedup": round(eager_seconds / max(lazy_seconds, 1e-9), 3),
            "output_size": lazy_result.output_size,
            "interval_native": is_lazy,
            "outputs_agree": agree,
        }
        if is_lazy:
            entry["families"] = table.num_families()
            entry["intervals"] = table.num_intervals()
        queries[name] = entry

    focus = [queries[name]["speedup"] for name in FOCUS_QUERIES]
    all_speedups = [entry["speedup"] for entry in queries.values()]
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "num_nodes": graph.num_nodes(),
        "num_edges": graph.num_edges(),
        "index_compile_seconds": round(compile_seconds, 6),
        "queries": queries,
        "median_speedup": round(statistics.median(all_speedups), 3),
        "q1_q2_q5": {
            "queries": list(FOCUS_QUERIES),
            "median_speedup": round(statistics.median(focus), 3),
            "min_speedup": round(min(focus), 3),
        },
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Compare the measured Q1/Q2/Q5 median against the same-scale baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["q1_q2_q5"]["median_speedup"]
    floor = expected * (1.0 - tolerance)
    got = measured["q1_q2_q5"]["median_speedup"]
    print(
        f"regression check at {scale}: measured Q1/Q2/Q5 median {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: Q1/Q2/Q5 median speedup regressed more than "
            f"{tolerance:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR3.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR3.json to compare the Q1/Q2/Q5 median against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative regression of the Q1/Q2/Q5 median (default 10%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale (still best-of-3 so the ratio is stable)",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    rounds = max(1, args.rounds)

    measured = bench_scale(scale, args.positivity, rounds)

    out_path = Path(args.out)
    report = {"benchmark": "bench_pr3_fullscan", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_pr3_fullscan"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    report["rounds"] = rounds
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"=== interval-native output path at {scale} "
        f"({measured['num_nodes']} nodes, {measured['num_edges']} edges) ==="
    )
    header = (
        f"{'query':<6}{'eager (s)':>11}{'lazy (s)':>11}{'speedup':>9}"
        f"{'rows':>9}{'families':>10}  agree"
    )
    print(header)
    print("-" * len(header))
    for name, entry in measured["queries"].items():
        families = str(entry.get("families", "-"))
        print(
            f"{name:<6}{entry['eager_seconds']:>11.4f}"
            f"{entry['lazy_seconds']:>11.4f}{entry['speedup']:>8.2f}x"
            f"{entry['output_size']:>9}{families:>10}"
            f"  {'yes' if entry['outputs_agree'] else 'NO'}"
        )
    print(
        f"median speedup: {measured['median_speedup']:.2f}x overall, "
        f"{measured['q1_q2_q5']['median_speedup']:.2f}x on the Q1/Q2/Q5 "
        f"full-scan mix (index compile: {measured['index_compile_seconds']:.3f}s)"
    )
    print(f"report written to {out_path}")

    status = 0
    if args.check_against:
        status = check_against(Path(args.check_against), measured, args.tolerance)
    if measured["divergences"]:
        print("ERROR: engine outputs diverged", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
