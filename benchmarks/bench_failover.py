"""Replicated serving: promotion time and client outage under primary death.

The PR-9 replication layer (:mod:`repro.server.replication`) exists to
bound one number: how long clients are without service when the primary
process dies.  This harness measures it end to end with real processes
and real sockets:

* a **primary** ``repro serve`` (WAL attached, Q5 registered) and a
  **standby** (``--standby-of``) run as subprocesses with a fast
  failover window (heartbeat 0.2s, failover-after 1.0s);
* a writer applies a stream of delta batches and waits until the
  standby has acknowledged every record (lag 0);
* the primary is **SIGKILLed** — no drain, no close frame, the worst
  case — and three clocks start:

  - ``promotion_seconds`` — kill until the standby's ``health`` op
    reports ``role=primary, status=ready`` (the gate metric; its floor
    is the configured failover window, so the gate bounds the detection
    and promotion machinery stacked on top);
  - ``read_outage_seconds`` — kill until a failover
    :class:`~repro.server.client.ServerClient` (primary + standby
    endpoints) completes a read: standby reads work *before* promotion,
    so this stays well under the promotion time;
  - ``write_outage_seconds`` — kill until the same client completes a
    write, which requires the promotion plus the client's
    ``NotPrimary``-driven primary re-resolution.

Correctness is enforced the same way as every other harness: the
promoted standby's Q5 answer (and its epoch) must be identical to a
never-crashed single-process run over the same delta sequence — any
divergence exits non-zero regardless of the timing gate.

Measurements land in ``BENCH_PR9.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_failover.py               # REPRO_SCALE or S3
    PYTHONPATH=src python benchmarks/bench_failover.py --smoke \\
        --out bench_smoke_pr9.json --check-against BENCH_PR9.json \\
        --tolerance 0.5                                              # CI gate

Promotion time is core-count independent (it is dominated by the
configured failover window, not by evaluation), so the gate engages on
any host.  Lower is better: the check fails when the measured promotion
exceeds the baseline by more than the tolerance (plus a 0.5s additive
slack for scheduler noise at ~1s absolute values).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen.contact_tracing import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.errors import ConnectionClosed, ReproError
from repro.model.io import save_json
from repro.resilience.retry import RetryPolicy
from repro.server import ServerClient, ServerState
from repro.streaming.delta import DeltaBatch

HEARTBEAT = 0.2
FAILOVER_AFTER = 1.0


def delta_batch(sequence: int) -> dict:
    """One delta of the sustained write stream.

    Self-contained (valid against any base graph) and guaranteed to
    change Q5's answer: a low-risk person meeting a high-risk one.
    """
    batch = DeltaBatch(sequence=sequence)
    low, high = f"bench_lo{sequence}", f"bench_hi{sequence}"
    batch.add_node(low, "Person", [(2, 8)])
    batch.set_property(low, "name", f"L{sequence}", 2, 8)
    batch.set_property(low, "risk", "low", 2, 8)
    batch.add_node(high, "Person", [(2, 8)])
    batch.set_property(high, "name", f"H{sequence}", 2, 8)
    batch.set_property(high, "risk", "high", 2, 8)
    batch.add_edge(f"bench_e{sequence}", "meets", low, high, [(3, 6)])
    return batch.to_json_dict()


def spawn_serve(args: list, env: dict) -> tuple:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(r"listening on [\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError("serve subprocess never printed its listening line")


def health(port: int):
    try:
        with ServerClient(
            "127.0.0.1", port, retry=RetryPolicy(retries=0)
        ) as probe:
            return probe.health()
    except (ReproError, OSError):
        return None


def wait_for(predicate, *, timeout: float, interval: float = 0.01):
    deadline = time.time() + timeout
    last = None
    while time.time() < deadline:
        last = predicate()
        if last:
            return last
        time.sleep(interval)
    raise RuntimeError(f"condition not reached within {timeout}s (last: {last!r})")


def reference_run(graph_path: Path, batches: int) -> tuple:
    """The never-crashed run: one process, same deltas, no failover."""
    state = ServerState()
    state.add_graph("default", str(graph_path))
    host = state.host("default")
    host.register("Q5")
    for seq in range(1, batches + 1):
        host.apply_delta(delta_batch(seq))
    answer = host.query("Q5")
    state.close()
    return answer["result"]["families"], answer["server"]["epoch"]


def subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def bench_failover(graph_path: Path, batches: int) -> dict:
    fast = [
        "--heartbeat-interval", str(HEARTBEAT),
        "--failover-after", str(FAILOVER_AFTER),
        "--graph", str(graph_path),
    ]
    divergences = 0
    with tempfile.TemporaryDirectory(prefix="bench_failover_") as tmp:
        primary_proc, primary_port = spawn_serve(
            ["--wal", str(Path(tmp) / "primary.wal"), "--register", "Q5"] + fast,
            subprocess_env(),
        )
        standby_proc = standby_port = None
        try:
            standby_proc, standby_port = spawn_serve(
                ["--standby-of", f"127.0.0.1:{primary_port}"] + fast,
                subprocess_env(),
            )
            endpoints = [
                ("127.0.0.1", primary_port),
                ("127.0.0.1", standby_port),
            ]
            writer = ServerClient(
                list(endpoints),
                retry=RetryPolicy(retries=40, base_delay=0.05, max_delay=0.5),
            )
            reader = ServerClient(
                list(endpoints),
                retry=RetryPolicy(retries=40, base_delay=0.05, max_delay=0.5),
            )

            # Sustained write stream; the standby follows record by record.
            ship_start = time.perf_counter()
            for seq in range(1, batches + 1):
                writer.apply_delta(delta_batch(seq))
            wait_for(
                lambda: (h := health(standby_port))
                and h["status"] == "standby"
                and h["replication"]["default"]["applied_seq"] == batches,
                timeout=60,
            )
            replication_seconds = time.perf_counter() - ship_start
            reader.query("Q5")  # warm connection + plan on the primary

            shipped = health(standby_port)["replication"]["default"]

            # The worst case: SIGKILL, no drain, no close frame.
            kill_at = time.perf_counter()
            primary_proc.send_signal(signal.SIGKILL)
            primary_proc.wait(timeout=60)

            # Reads fail over to the (not yet promoted) standby.
            reader.query("Q5")
            read_outage = time.perf_counter() - kill_at

            promoted = wait_for(
                lambda: (h := health(standby_port))
                and h["role"] == "primary"
                and h["status"] == "ready"
                and h,
                timeout=FAILOVER_AFTER * 20,
            )
            promotion = time.perf_counter() - kill_at

            # Writes need the promotion plus primary re-resolution.  The
            # client surfaces ConnectionClosed on writes (never blind
            # re-send); re-issuing here is the application-level retry —
            # safe because the dead primary cannot have applied it.
            def write_through() -> None:
                deadline = time.time() + FAILOVER_AFTER * 20
                while True:
                    try:
                        writer.apply_delta(delta_batch(batches + 1))
                        return
                    except ConnectionClosed:
                        if time.time() > deadline:
                            raise
                        time.sleep(0.05)

            write_through()
            write_outage = time.perf_counter() - kill_at

            # Epoch identity: the promoted standby vs the never-crashed
            # run over the same delta sequence (incl. the post-failover
            # write), checked on answer content AND epoch label.
            expected, expected_epoch = reference_run(graph_path, batches + 1)
            answer = reader.query("Q5")
            if answer["result"]["families"] != expected:
                print(
                    "DIVERGENCE: promoted standby's Q5 answer differs from "
                    "the never-crashed run",
                    file=sys.stderr,
                )
                divergences += 1
            if answer["server"]["epoch"] != expected_epoch:
                print(
                    f"DIVERGENCE: promoted standby at epoch "
                    f"{answer['server']['epoch']}, never-crashed run at "
                    f"{expected_epoch}",
                    file=sys.stderr,
                )
                divergences += 1
            fence = promoted.get("fence", {})
            try:
                writer.shutdown()
            except (ConnectionClosed, ReproError):
                pass
            writer.close()
            reader.close()
            standby_proc.wait(timeout=60)
        finally:
            for proc in (primary_proc, standby_proc):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
    return {
        "batches": batches,
        "failover_after_seconds": FAILOVER_AFTER,
        "heartbeat_seconds": HEARTBEAT,
        "replication_seconds": round(replication_seconds, 4),
        "final_lag": shipped["lag"],
        "applied_seq": shipped["applied_seq"],
        "promotion_seconds": round(promotion, 4),
        "read_outage_seconds": round(read_outage, 4),
        "write_outage_seconds": round(write_outage, 4),
        "fence": fence,
        "divergences": divergences,
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate promotion time against the committed baseline (lower wins)."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["promotion_seconds"]
    # Additive 0.5s slack: at ~1s absolute values a scheduler hiccup is
    # a large relative error but not a regression.
    ceiling = expected * (1.0 + tolerance) + 0.5
    got = measured["promotion_seconds"]
    print(
        f"regression check at {scale}: promotion {got:.2f}s, baseline "
        f"{expected:.2f}s, ceiling {ceiling:.2f}s"
    )
    if got > ceiling:
        print(
            f"ERROR: failover promotion regressed more than {tolerance:.0%} "
            f"(+0.5s slack) vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S3; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument(
        "--batches",
        type=int,
        default=8,
        help="delta batches shipped before the kill (default 8; smoke: 4)",
    )
    parser.add_argument(
        "--max-promotion",
        type=float,
        default=10.0,
        help="absolute ceiling on promotion seconds (default 10.0)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR9.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR9.json to compare promotion time against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed relative regression of promotion time (default 50%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, fewer batches",
    )
    args = parser.parse_args(argv)

    scale = args.scale or (
        "S1" if args.smoke else (os.environ.get("REPRO_SCALE") or "S3")
    )
    if scale not in SCALE_FACTORS:
        scale = default_scale_name()
    batches = min(args.batches, 4) if args.smoke else args.batches

    config = SCALE_FACTORS[scale].config(positivity_rate=args.positivity)
    graph = generate_contact_tracing_graph(config)
    with tempfile.TemporaryDirectory(prefix="bench_failover_graph_") as tmp:
        graph_path = Path(tmp) / f"{scale}.json"
        save_json(graph, graph_path)
        measured = bench_failover(graph_path, batches)
    measured["scale"] = scale
    measured["cpu_count"] = os.cpu_count()

    out_path = Path(args.out)
    report = {"benchmark": "bench_failover", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_failover"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"=== Failover at {scale}: {batches} batches, SIGKILL primary ===")
    print(
        f"replication {measured['replication_seconds']:.2f}s (final lag "
        f"{measured['final_lag']}) | promotion {measured['promotion_seconds']:.2f}s "
        f"(window {FAILOVER_AFTER:.1f}s) | read outage "
        f"{measured['read_outage_seconds']:.2f}s | write outage "
        f"{measured['write_outage_seconds']:.2f}s"
    )
    print(f"wrote {out_path}")

    failures = 0
    if measured["divergences"]:
        print(
            f"ERROR: {measured['divergences']} divergences from the "
            "never-crashed run",
            file=sys.stderr,
        )
        failures += 1
    if measured["promotion_seconds"] > args.max_promotion:
        print(
            f"ERROR: promotion took {measured['promotion_seconds']:.2f}s, "
            f"above the absolute {args.max_promotion:.1f}s ceiling",
            file=sys.stderr,
        )
        failures += 1
    if args.check_against:
        failures += check_against(
            Path(args.check_against), measured, args.tolerance
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
