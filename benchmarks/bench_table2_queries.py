"""Table II: execution time and output size of Q1–Q12 on the largest graph.

The paper reports, per query: the interval-based time (Steps 1–2 of the
evaluation), the total time (including the point-wise expansion of
Step 3) and the output size in binding tuples.  This harness runs every
query of Section IV on the largest configured scale factor and prints
the same three columns.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def bench_table2_query(benchmark, largest_graph, largest_scale_name, name):
    """One Table-II row: run a paper query on the largest graph."""
    engine = DataflowEngine(largest_graph)
    query = PAPER_QUERIES[name]

    result = benchmark.pedantic(
        engine.match_with_stats,
        args=(query.text,),
        kwargs={"expand_output": True},
        rounds=1,
        iterations=1,
    )
    _RESULTS[name] = {
        "interval": result.interval_seconds,
        "total": result.total_seconds,
        "output": result.output_size,
    }
    benchmark.extra_info["output_size"] = result.output_size
    benchmark.extra_info["interval_seconds"] = round(result.interval_seconds, 6)
    benchmark.extra_info["scale"] = largest_scale_name

    if len(_RESULTS) == len(PAPER_QUERIES):
        rows = [
            [
                q,
                f"{_RESULTS[q]['interval']:.3f}",
                f"{_RESULTS[q]['total']:.3f}",
                _RESULTS[q]["output"],
            ]
            for q in PAPER_QUERIES
            if q in _RESULTS
        ]
        print_table(
            f"Table II — execution time of Q1–Q12 on {largest_scale_name}",
            ["query", "interval-based time (s)", "total time (s)", "output size"],
            rows,
        )
