"""Unified CI bench-gate driver.

Before PR 5, ``.github/workflows/ci.yml`` carried one copy-pasted step
per perf harness, each with its own ``--out`` file, baseline file,
tolerance and (for the parallelism sweep) a skip rule that lived only in
a workflow comment.  This driver replaces those steps with **one**
manifest-driven loop:

* ``benchmarks/gates.toml`` declares every gate — the harness script,
  its smoke output file, the committed baseline it regresses against,
  the tolerance, and whether the gate is *core-sensitive* (speedup
  ratios only comparable on like-for-like core counts);
* ``python benchmarks/ci_gate.py --mode smoke`` runs each harness at
  smoke scale with its baseline check; any non-zero harness exit fails
  the driver (after running the remaining gates, so one regression does
  not mask another);
* ``python benchmarks/ci_gate.py --mode full --out-dir DIR`` runs each
  harness at full scale without baseline checks and collects regenerated
  ``BENCH_*.json`` candidates in ``DIR`` — the nightly-cron path that
  fixes the "baseline is from a 1-core container" gap: candidates come
  from the actual CI hardware and can be committed as new baselines.

The core-count skip rule itself lives here as
:func:`speedup_gate_decision` (unit-tested in
``tests/test_ci_gate.py``); ``bench_fig3_parallelism.py`` imports it, so
the rule is written and tested exactly once.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ImportError:  # Python 3.10: fall back to the mini parser below
    tomllib = None

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


# --------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Gate:
    """One entry of ``gates.toml``."""

    name: str
    harness: str
    out: str
    baseline: str | None = None
    tolerance: float | None = None
    #: Speedup ratios are core-count-sensitive: the baseline check only
    #: engages when this host can parallelize at all *and* matches the
    #: baseline's recorded core count (see :func:`speedup_gate_decision`).
    core_sensitive: bool = False
    min_cores: int = 2
    #: Extra harness arguments applied in every mode.
    args: tuple[str, ...] = field(default_factory=tuple)

    @property
    def harness_path(self) -> Path:
        return BENCH_DIR / self.harness


def parse_manifest_text(text: str) -> list[Gate]:
    """Parse the gates manifest from TOML text."""
    if tomllib is not None:
        data = tomllib.loads(text)
    else:
        data = _parse_mini_toml(text)
    gates: list[Gate] = []
    for name, entry in data.get("gate", {}).items():
        known = {
            "harness", "out", "baseline", "tolerance", "core_sensitive",
            "min_cores", "args",
        }
        unknown = set(entry) - known
        if unknown:
            raise ValueError(
                f"gate {name!r}: unknown manifest keys {sorted(unknown)}"
            )
        gates.append(
            Gate(
                name=name,
                harness=entry["harness"],
                out=entry["out"],
                baseline=entry.get("baseline"),
                tolerance=entry.get("tolerance"),
                core_sensitive=bool(entry.get("core_sensitive", False)),
                min_cores=int(entry.get("min_cores", 2)),
                args=tuple(entry.get("args", ())),
            )
        )
    if not gates:
        raise ValueError("gates manifest declares no [gate.*] sections")
    return gates


def load_manifest(path: Path | None = None) -> list[Gate]:
    """Load ``benchmarks/gates.toml`` (or ``path``)."""
    manifest = path or (BENCH_DIR / "gates.toml")
    return parse_manifest_text(manifest.read_text())


def _parse_mini_toml(text: str) -> dict:
    """Minimal TOML subset parser for Python < 3.11 (no ``tomllib``).

    Supports exactly what ``gates.toml`` uses: ``[table.sub]`` headers,
    string / integer / float / boolean values, and single-line arrays of
    strings.  Kept deliberately tiny; the real ``tomllib`` takes over on
    3.11+.
    """
    root: dict = {}
    current = root
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip() if not _in_string_comment(raw_line) else raw_line.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for part in line[1:-1].strip().split("."):
                current = current.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise ValueError(f"cannot parse manifest line: {raw_line!r}")
        key, value = line.split("=", 1)
        current[key.strip()] = _parse_mini_value(value.strip())
    return root


def _in_string_comment(line: str) -> bool:
    """True when a ``#`` on the line sits inside a quoted string."""
    stripped = line.split("#", 1)[0]
    return stripped.count('"') % 2 == 1


def _parse_mini_value(value: str):
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [_parse_mini_value(part.strip()) for part in inner.split(",") if part.strip()]
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        return float(value)


# --------------------------------------------------------------------- #
# Core-count skip rule (shared with bench_fig3_parallelism.py)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GateDecision:
    """Whether a core-sensitive speedup gate engages, and why (not)."""

    engage: bool
    reason: str
    #: The baseline's per-scale section when the gate engages.
    reference: dict | None = None


def speedup_gate_decision(
    baseline_path: Path,
    scale: str,
    cores: int,
    *,
    min_cores: int = 2,
    harness: str = "bench_fig3_parallelism.py",
) -> GateDecision:
    """Decide whether a core-sensitive speedup gate can engage.

    The single definition of the skip/engage rule that previously lived
    in ``bench_fig3_parallelism.check_against`` and a workflow comment:

    * below ``min_cores`` visible cores no parallel speedup is physically
      possible — skip (divergence checks still apply);
    * a missing baseline file or scale section cannot gate — skip;
    * a baseline recorded on a different core count is not comparable
      (a 1-core baseline records pure dispatch overhead) — skip, and
      tell the operator the exact regeneration command.

    Only when all three hold does the ratio comparison engage, with the
    baseline's per-scale section attached.
    """
    baseline_path = Path(baseline_path)
    if cores < min_cores:
        return GateDecision(
            False,
            f"only {cores} CPU core(s) visible (< {min_cores}) — no parallel "
            "speedup is physically possible, skipping the speedup gate "
            "(divergence checks still apply)",
        )
    if not baseline_path.exists():
        return GateDecision(
            False, f"baseline {baseline_path} not found; skipping the speedup gate"
        )
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as error:
        return GateDecision(
            False,
            f"baseline {baseline_path} is not valid JSON ({error}); "
            "skipping the speedup gate",
        )
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        return GateDecision(
            False,
            f"baseline {baseline_path} has no {scale} section; "
            "skipping the speedup gate",
        )
    recorded = reference.get("cpu_count")
    if recorded != cores:
        return GateDecision(
            False,
            f"baseline {baseline_path} was recorded on {recorded or '?'} core(s) "
            f"but this host has {cores}; speedup ratios are not comparable, "
            "skipping the speedup gate (divergence checks still apply). "
            f"Regenerate the baseline on this host with: python {harness} "
            f"--scale {scale} --out {baseline_path}",
        )
    return GateDecision(
        True,
        f"baseline {baseline_path} recorded on {recorded} core(s), matching "
        "this host — speedup gate engaged",
        reference=reference,
    )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #
def build_command(gate: Gate, mode: str, out_dir: Path) -> list[str]:
    """The harness invocation for one gate in ``smoke`` or ``full`` mode."""
    command = [sys.executable, str(gate.harness_path), *gate.args]
    if mode == "smoke":
        command.append("--smoke")
        command.extend(["--out", str(out_dir / gate.out)])
        if gate.baseline:
            command.extend(["--check-against", str(REPO_ROOT / gate.baseline)])
            if gate.tolerance is not None:
                command.extend(["--tolerance", str(gate.tolerance)])
    else:
        # Full scale regenerates baseline candidates; no regression check
        # (the output *is* the new reference), divergence exits still apply.
        target = gate.baseline or gate.out
        command.extend(["--out", str(out_dir / Path(target).name)])
    return command


def run_gates(
    gates: list[Gate], mode: str, out_dir: Path, only: str | None = None
) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    failures: list[str] = []
    selected = [gate for gate in gates if only is None or gate.name == only]
    if only is not None and not selected:
        print(f"ERROR: no gate named {only!r} in the manifest", file=sys.stderr)
        return 2
    for gate in selected:
        command = build_command(gate, mode, out_dir)
        print(f"=== gate: {gate.name} ({mode}) ===")
        print("$", " ".join(command))
        sys.stdout.flush()
        result = subprocess.run(command, env=env, cwd=str(REPO_ROOT))
        if result.returncode != 0:
            print(
                f"ERROR: gate {gate.name} failed with exit code {result.returncode}",
                file=sys.stderr,
            )
            failures.append(gate.name)
    if failures:
        print(f"FAILED gates: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"all {len(selected)} gate(s) passed ({mode} mode)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("smoke", "full"),
        default="smoke",
        help="smoke: CI gate with baseline checks; full: regenerate "
        "baseline candidates (nightly)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory for harness reports (full mode collects "
        "BENCH_*.json candidates here)",
    )
    parser.add_argument("--only", default=None, help="run a single named gate")
    parser.add_argument(
        "--manifest", default=None, help="alternative gates.toml path"
    )
    parser.add_argument(
        "--list", action="store_true", help="list the manifest gates and exit"
    )
    args = parser.parse_args(argv)

    gates = load_manifest(Path(args.manifest) if args.manifest else None)
    if args.list:
        for gate in gates:
            baseline = gate.baseline or "-"
            tolerance = f"{gate.tolerance:.0%}" if gate.tolerance is not None else "-"
            sensitive = " [core-sensitive]" if gate.core_sensitive else ""
            print(
                f"{gate.name}: {gate.harness} (baseline {baseline}, "
                f"tolerance {tolerance}){sensitive}"
            )
        return 0
    return run_gates(gates, args.mode, Path(args.out_dir), args.only)


if __name__ == "__main__":
    raise SystemExit(main())
