"""Always-on query service: warm resident latency vs cold one-shot (PR-7 harness).

The ``repro.server`` service keeps a graph, its compiled
:class:`~repro.perf.graph_index.GraphIndex` and a plan cache resident
across requests.  This harness measures what residency buys over the
pre-PR-7 workflow — one ``repro query`` style cold shot per question —
on the Table-II query mix:

* **cold one-shot** — per query: ``load_json`` the graph from disk, build
  a fresh :class:`DataflowEngine` (which recompiles the index), parse and
  evaluate.  That is exactly what every CLI invocation paid before the
  service existed;
* **warm service** — a :class:`~repro.server.service.BackgroundServer`
  holds the graph resident; after one warm-up pass (plan-cache misses,
  index build) the same mix is replayed over TCP and per-request
  latencies recorded (p50/p99), plus a concurrent-clients pass for
  throughput.

Every warm answer is cross-checked against the cold engine's wire form —
any divergence makes the process exit non-zero (the same contract as the
other harnesses).  The headline number is ``warm_speedup_p50`` (cold p50
over warm p50), which must stay above ``--min-speedup`` (default 5x: the
acceptance floor for the plan cache + warm index actually paying off).

Measurements land in ``BENCH_PR7.json`` keyed by scale factor::

    PYTHONPATH=src python benchmarks/bench_server.py                 # REPRO_SCALE or S4
    PYTHONPATH=src python benchmarks/bench_server.py --smoke \\
        --out bench_smoke_pr7.json --check-against BENCH_PR7.json \\
        --tolerance 0.25                                             # CI gate

The ratio is core-count independent — both sides evaluate sequentially
(the service runs ``workers=1``); residency removes load/compile/parse
work rather than parallelizing evaluation — so the gate engages on any
host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datagen.contact_tracing import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS, default_scale_name
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.model.io import load_json, save_json
from repro.eval.bindings import IntervalBindingTable
from repro.server import BackgroundServer, ServerClient, ServerState, normalize_query
from repro.server.protocol import families_to_wire, rows_to_wire

#: The Table-II mix: every paper query the engines answer.
MIX = tuple(PAPER_QUERIES)
#: Smoke mode trims the mix to the shapes that dominate service traffic
#: (full scans + the join) so the CI gate stays in the seconds range.
SMOKE_MIX = ("Q1", "Q2", "Q5", "Q9")


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def wire_form(table) -> tuple:
    """An answer table in the protocol's wire form, tagged by kind."""
    if isinstance(table, IntervalBindingTable):
        return ("families", families_to_wire(table.families))
    return ("rows", rows_to_wire(table.rows))


def warm_wire_form(result: dict) -> tuple:
    return (result["kind"], result[result["kind"]])


def cold_wire_answer(graph_path: Path, name: str) -> tuple:
    """What a from-scratch engine answers, in the protocol's wire form."""
    engine = DataflowEngine(load_json(graph_path))
    return wire_form(engine.match(normalize_query(name)))


def bench_cold(graph_path: Path, mix, rounds: int) -> dict:
    """One-shot cost per query: load graph, build engine, parse, evaluate."""
    latencies: list[float] = []
    per_query: dict[str, float] = {}
    start_all = time.perf_counter()
    for _ in range(rounds):
        for name in mix:
            start = time.perf_counter()
            graph = load_json(graph_path)
            engine = DataflowEngine(graph)
            engine.match(normalize_query(name))
            elapsed = time.perf_counter() - start
            latencies.append(elapsed)
            per_query[name] = min(per_query.get(name, elapsed), elapsed)
    total = time.perf_counter() - start_all
    return {
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "total_seconds": round(total, 6),
        "per_query_best_ms": {
            name: round(seconds * 1e3, 3) for name, seconds in per_query.items()
        },
        "_latencies": latencies,
    }


def bench_warm(graph_path: Path, mix, rounds: int, clients: int) -> dict:
    """Replay the mix against a resident server; check answers vs cold."""
    state = ServerState(workers=1, backend="thread", plan_capacity=64)
    state.add_graph("bench", str(graph_path))
    divergences = 0
    with BackgroundServer(state, max_concurrency=max(2, clients), max_queue=64) as server:
        with ServerClient(server.host, server.port) as client:
            # Warm-up pass: index build + plan-cache misses land here, and
            # every answer is cross-checked against the cold engine's.
            for name in mix:
                response = client.query(name, graph="bench")
                if warm_wire_form(response["result"]) != cold_wire_answer(graph_path, name):
                    print(f"DIVERGENCE: warm {name} != cold one-shot", file=sys.stderr)
                    divergences += 1

            # Sequential latency pass (comparable to the cold loop: one
            # outstanding request, same mix, same rounds).
            latencies: list[float] = []
            hits_before = client.stats()["graphs"]["bench"]["plan_cache"]["hits"]
            for _ in range(rounds):
                for name in mix:
                    start = time.perf_counter()
                    client.query(name, graph="bench")
                    latencies.append(time.perf_counter() - start)
            plans = client.stats()["graphs"]["bench"]["plan_cache"]

        # Concurrent throughput pass: `clients` connections replaying the
        # mix in parallel against the shared resident graph.
        def worker(errors: list) -> None:
            try:
                with ServerClient(server.host, server.port) as c:
                    for _ in range(rounds):
                        for name in mix:
                            c.query(name, graph="bench")
            except Exception as error:  # noqa: BLE001 — surfaced via `errors`
                errors.append(error)

        errors: list = []
        threads = [
            threading.Thread(target=worker, args=(errors,)) for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - start
        if errors:
            raise errors[0]
    concurrent_requests = clients * rounds * len(mix)
    return {
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "plan_hits": plans["hits"] - hits_before,
        "plan_misses": plans["misses"],
        "concurrent_clients": clients,
        "concurrent_requests": concurrent_requests,
        "concurrent_qps": round(concurrent_requests / max(concurrent_seconds, 1e-9), 2),
        "divergences": divergences,
        "_latencies": latencies,
    }


def bench_scale(scale_name: str, positivity: float, mix, rounds: int, clients: int) -> dict:
    config = SCALE_FACTORS[scale_name].config(positivity_rate=positivity)
    graph = generate_contact_tracing_graph(config)
    with tempfile.TemporaryDirectory(prefix="bench_server_") as tmp:
        graph_path = Path(tmp) / f"{scale_name}.json"
        save_json(graph, graph_path)
        cold = bench_cold(graph_path, mix, rounds)
        warm = bench_warm(graph_path, mix, rounds, clients)
    cold_latencies = cold.pop("_latencies")
    warm_latencies = warm.pop("_latencies")
    speedup_p50 = statistics.median(cold_latencies) / max(
        statistics.median(warm_latencies), 1e-9
    )
    return {
        "scale": scale_name,
        "positivity_rate": positivity,
        "cpu_count": os.cpu_count(),
        "queries": list(mix),
        "rounds": rounds,
        "cold": cold,
        "warm": warm,
        "warm_speedup_p50": round(speedup_p50, 3),
        "divergences": warm["divergences"],
    }


def check_against(baseline_path: Path, measured: dict, tolerance: float) -> int:
    """Gate the warm-vs-cold p50 speedup against the committed baseline."""
    if not baseline_path.exists():
        print(f"WARNING: baseline {baseline_path} not found; skipping check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    scale = measured["scale"]
    reference = baseline.get("results", {}).get(scale)
    if reference is None:
        print(
            f"WARNING: baseline {baseline_path} has no {scale} section; "
            "skipping regression check"
        )
        return 0
    expected = reference["warm_speedup_p50"]
    floor = expected * (1.0 - tolerance)
    got = measured["warm_speedup_p50"]
    print(
        f"regression check at {scale}: warm-vs-cold p50 speedup {got:.2f}x, "
        f"baseline {expected:.2f}x, floor {floor:.2f}x"
    )
    if got < floor:
        print(
            f"ERROR: resident-service speedup regressed more than "
            f"{tolerance:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALE_FACTORS),
        help="scale factor (default: REPRO_SCALE or S4; --smoke forces S1)",
    )
    parser.add_argument("--positivity", type=float, default=0.05)
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="passes over the query mix per side (default 5; smoke: 3)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent connections in the throughput pass (default 4)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="absolute floor for the warm-vs-cold p50 speedup (default 5.0)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR7.json"),
        help="JSON report path; existing per-scale sections are preserved",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_PR7.json to compare the p50 speedup against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression of the gate speedup (default 25%%)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smallest scale, trimmed mix, fewer rounds",
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("S1" if args.smoke else default_scale_name())
    mix = SMOKE_MIX if args.smoke else MIX
    rounds = min(args.rounds, 3) if args.smoke else args.rounds

    measured = bench_scale(scale, args.positivity, mix, rounds, args.clients)

    out_path = Path(args.out)
    report = {"benchmark": "bench_server", "results": {}}
    if out_path.exists():
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    report["benchmark"] = "bench_server"
    report["python"] = platform.python_version()
    report.setdefault("results", {})[scale] = measured
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    cold, warm = measured["cold"], measured["warm"]
    print(f"=== Resident service vs cold one-shot at {scale} "
          f"(mix {', '.join(mix)}) ===")
    header = f"{'side':>6}{'requests':>10}{'p50 (ms)':>11}{'p99 (ms)':>11}"
    print(header)
    print("-" * len(header))
    print(f"{'cold':>6}{cold['requests']:>10}{cold['p50_ms']:>11.3f}{cold['p99_ms']:>11.3f}")
    print(f"{'warm':>6}{warm['requests']:>10}{warm['p50_ms']:>11.3f}{warm['p99_ms']:>11.3f}")
    print(
        f"warm speedup p50 {measured['warm_speedup_p50']:.2f}x | plan cache "
        f"{warm['plan_hits']} hits / {warm['plan_misses']} misses | "
        f"{warm['concurrent_clients']} clients {warm['concurrent_qps']} req/s"
    )
    print(f"wrote {out_path}")

    failures = 0
    if measured["divergences"]:
        print(
            f"ERROR: {measured['divergences']} warm answers diverged from the "
            "cold engine",
            file=sys.stderr,
        )
        failures += 1
    if measured["warm_speedup_p50"] < args.min_speedup:
        print(
            f"ERROR: warm p50 speedup {measured['warm_speedup_p50']:.2f}x is "
            f"below the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        failures += 1
    if args.check_against:
        failures += check_against(Path(args.check_against), measured, args.tolerance)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
