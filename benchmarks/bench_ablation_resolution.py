"""Ablation: temporal resolution and the value of the interval representation.

The paper's design keeps intermediate results interval-timestamped so
that the cost of Steps 1–2 depends on the number of *versions*, not on
the number of time points.  This ablation makes that visible: the same
trajectories are discretized at increasingly fine temporal resolutions
(more 5-minute windows covering the same day), which multiplies the
number of time points while leaving the number of versions roughly
constant.  The interval-based portion of the evaluation should stay
nearly flat while the point-wise expansion (Step 3) grows with the
resolution.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.model import graph_statistics

_RESOLUTIONS = (24, 48, 96)
_QUERIES = ("Q2", "Q8", "Q9")
_RESULTS: dict[str, list[tuple[int, float, float, int]]] = {}


def _graph_at_resolution(num_windows: int):
    scale = num_windows / 48
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=150,
            num_locations=60,
            num_rooms=15,
            num_windows=num_windows,
            visits_per_person=8.0,
            mean_visit_windows=max(1.0, 5.0 * scale),
            seed=33,
        ),
        positivity_rate=0.1,
        seed=33,
    )
    return generate_contact_tracing_graph(config)


@pytest.fixture(scope="module")
def graphs_by_resolution():
    return {windows: _graph_at_resolution(windows) for windows in _RESOLUTIONS}


@pytest.mark.parametrize("name", _QUERIES)
def bench_ablation_temporal_resolution(benchmark, graphs_by_resolution, name):
    """Run one query at every temporal resolution."""
    engines = {windows: DataflowEngine(graph) for windows, graph in graphs_by_resolution.items()}
    text = PAPER_QUERIES[name].text

    def sweep():
        measurements = []
        for windows in _RESOLUTIONS:
            result = engines[windows].match_with_stats(text, expand_output=True)
            measurements.append(
                (windows, result.interval_seconds, result.total_seconds, result.output_size)
            )
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RESULTS[name] = measurements

    if len(_RESULTS) == len(_QUERIES):
        stats_rows = []
        for windows, graph in graphs_by_resolution.items():
            stats = graph_statistics(graph)
            stats_rows.append(
                [windows, stats.num_temporal_nodes, stats.num_temporal_edges]
            )
        print_table(
            "Ablation — graph versions stay stable as the temporal resolution grows",
            ["# windows", "# temp. nodes", "# temp. edges"],
            stats_rows,
        )
        rows = []
        for query_name, series in _RESULTS.items():
            for windows, interval_s, total_s, output in series:
                rows.append(
                    [query_name, windows, f"{interval_s:.3f}", f"{total_s:.3f}", output]
                )
        print_table(
            "Ablation — interval-based time vs. total time across temporal resolutions",
            ["query", "# windows", "interval time (s)", "total time (s)", "output size"],
            rows,
        )
