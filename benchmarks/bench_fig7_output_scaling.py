"""Figure 7 (Appendix E): output size vs. execution time across graph sizes.

The appendix explains the Figure-2 trends by showing that the increase
in execution time relative to the smallest graph is almost perfectly
correlated with the increase in output size.  This harness reproduces
that analysis: for every query it reports output size and execution time
on each scale factor *relative to S1*, plus the Pearson correlation
between the two relative series.
"""

from __future__ import annotations

import pytest

from conftest import graph_for, print_table
from repro.dataflow import DataflowEngine, PAPER_QUERIES

_SERIES: dict[str, list[tuple[str, float, float]]] = {}
_CORRELATIONS: dict[str, float] = {}


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 1.0
    return cov / (var_x * var_y)


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def bench_fig7_relative_output_and_time(benchmark, scale_sweep, name):
    """Measure one query across scales and report values relative to S1."""
    engines = {sf.name: DataflowEngine(graph_for(sf.name)) for sf in scale_sweep}
    query = PAPER_QUERIES[name]

    def sweep():
        return [
            (sf.name, engines[sf.name].match_with_stats(query.text, expand_output=True))
            for sf in scale_sweep
        ]

    raw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_time = max(raw[0][1].total_seconds, 1e-9)
    base_output = max(raw[0][1].output_size, 1)
    series = [
        (scale, result.total_seconds / base_time, result.output_size / base_output)
        for scale, result in raw
    ]
    _SERIES[name] = series
    _CORRELATIONS[name] = _pearson([t for _s, t, _o in series], [o for _s, _t, o in series])
    benchmark.extra_info["correlation"] = round(_CORRELATIONS[name], 4)

    if len(_SERIES) == len(PAPER_QUERIES):
        rows = []
        for query_name, entries in _SERIES.items():
            for scale, rel_time, rel_output in entries:
                rows.append([query_name, scale, f"{rel_time:.2f}", f"{rel_output:.2f}"])
        print_table(
            "Figure 7 — execution time and output size relative to S1",
            ["query", "scale", "time x S1", "output-size x S1"],
            rows,
        )
        print_table(
            "Figure 7 (c) — correlation between relative time and relative output size",
            ["query", "pearson r"],
            [[q, f"{r:.3f}"] for q, r in _CORRELATIONS.items()],
        )
