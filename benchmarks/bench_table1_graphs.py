"""Table I: statistics of the experimental temporal property graphs.

The paper reports, for each graph G1–G10, the number of nodes, edges,
temporal nodes and temporal edges.  This harness generates the scaled
graphs S1…S(REPRO_SCALE) and prints the same columns; the timed portion
is graph generation itself (construction cost is not reported in the
paper but is useful context for the other harnesses).
"""

from __future__ import annotations

import pytest

from conftest import default_positivity, graph_for, print_table
from repro.datagen import generate_contact_tracing_graph
from repro.datagen.scale import SCALE_FACTORS
from repro.model import graph_statistics


def bench_table1_graph_statistics(benchmark, scale_sweep):
    """Generate every scale factor once and print the Table-I statistics."""

    def build_all():
        return {sf.name: graph_for(sf.name) for sf in scale_sweep}

    graphs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for name, graph in graphs.items():
        stats = graph_statistics(graph)
        rows.append(
            [
                name,
                stats.num_nodes,
                stats.num_edges,
                stats.num_temporal_nodes,
                stats.num_temporal_edges,
            ]
        )
    print_table(
        "Table I — temporal property graphs used in experiments "
        f"(positivity {default_positivity():.0%})",
        ["graph", "# nodes", "# edges", "# temp. nodes", "# temp. edges"],
        rows,
    )


@pytest.mark.parametrize("scale", list(SCALE_FACTORS)[:2])
def bench_table1_generation_cost(benchmark, scale):
    """Time the trajectory simulation + graph construction for the small scales."""
    config = SCALE_FACTORS[scale].config(positivity_rate=default_positivity())
    graph = benchmark(generate_contact_tracing_graph, config)
    stats = graph_statistics(graph)
    print_table(
        f"Graph generation cost — {scale}",
        ["graph", "# nodes", "# temp. edges"],
        [[scale, stats.num_nodes, stats.num_temporal_edges]],
    )
