"""Room availability: navigating through non-existing temporal objects.

Section V-A of the paper motivates the default semantics in which
navigation does not require objects to exist: the expression

    (Room ∧ ¬∃) / (N / ¬∃)[0,_] / (Room ∧ ∃)

starts at a time when a room is unavailable and walks forward through the
unavailable stretch until the room becomes available again.  The
practical MATCH syntax always enforces existence, so this example uses
the formal AST directly together with the reference engine, and prints a
small availability report for the rooms of a seminar building.

Run it with::

    python examples/room_availability.py
"""

from __future__ import annotations

from repro import GraphBuilder, ReferenceEngine
from repro.lang import ast


def build_building():
    """Three seminar rooms with maintenance windows during a 24-hour day."""
    builder = GraphBuilder(domain=(0, 23))
    (
        builder.node("room_a", "Room")
        .version(0, 8, capacity=40)
        .version(12, 23, capacity=40)  # closed 9-11 for maintenance
    )
    (
        builder.node("room_b", "Room")
        .version(0, 5, capacity=15)
        .version(7, 15, capacity=15)
        .version(20, 23, capacity=15)  # closed 6-6 and 16-19
    )
    builder.node("room_c", "Room").version(0, 23, capacity=120)  # always open
    return builder.build()


def main() -> None:
    graph = build_building()
    engine = ReferenceEngine(graph)

    # (Room ∧ ¬∃) / (N/¬∃)[0,_] / N / (Room ∧ ∃):
    # from an unavailable time point to the first time the room reopens.
    reopening = ast.concat(
        ast.test(ast.and_(ast.label("Room"), ast.not_(ast.exists()))),
        ast.star(ast.concat(ast.N, ast.test(ast.not_(ast.exists())))),
        ast.N,
        ast.test(ast.and_(ast.label("Room"), ast.exists())),
    )
    relation = engine.evaluate_path(reopening)

    print("Next reopening time for every (room, closed-hour) pair")
    print("-------------------------------------------------------")
    next_open: dict[tuple[str, int], int] = {}
    for room, closed_at, _room2, reopens_at in sorted(relation, key=lambda x: (str(x[0]), x[1])):
        key = (room, closed_at)
        if key not in next_open or reopens_at < next_open[key]:
            next_open[key] = reopens_at
    for (room, closed_at), reopens_at in sorted(next_open.items()):
        print(f"  {room}: closed at hour {closed_at:2d} -> next available at hour {reopens_at:2d}")
    if not next_open:
        print("  every room is always available")

    # How long is each room unavailable in total?  Derived from the same
    # formal machinery: count time points where (Room ∧ ¬∃) holds.
    closed = engine.evaluate_path(ast.test(ast.and_(ast.label("Room"), ast.not_(ast.exists()))))
    print("\nTotal closed hours per room")
    print("---------------------------")
    totals: dict[str, int] = {}
    for room, _t, _r, _t2 in closed:
        totals[room] = totals.get(room, 0) + 1
    for room in sorted(totals):
        print(f"  {room}: {totals[room]} hours closed")
    always_open = [r for r in ("room_a", "room_b", "room_c") if r not in totals]
    for room in always_open:
        print(f"  {room}: never closed")


if __name__ == "__main__":
    main()
