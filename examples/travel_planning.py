"""Travel planning over a temporal transport network.

Section V-C of the paper argues that TRPQs can express itineraries that
T-GQL's "consecutive paths" cannot: journeys that combine different
transportation services, and journeys that mix movements forward and
backward in time.  This example builds a small temporal graph of
flights, trains and buses between cities and demonstrates:

* the minimum temporal path queries of prior work (earliest arrival,
  latest departure, fastest, fewest hops) via the baseline substrate;
* a TRPQ that finds multi-modal connections (flight + train + bus),
  which a single-service consecutive path cannot express;
* a TRPQ mixing future and past navigation: cities reachable tomorrow
  from somewhere we could have been yesterday.

Run it with::

    python examples/travel_planning.py
"""

from __future__ import annotations

from repro import DataflowEngine, GraphBuilder
from repro.baselines import TemporalPathFinder


def build_network():
    """One day of service between five cities, one time unit = one hour."""
    builder = GraphBuilder(domain=(0, 23))
    for city in ("tokyo", "seoul", "dubai", "paris", "buenos_aires"):
        builder.node(city, "City").version(0, 23, name=city)

    # Edge validity = the span during which the service can be boarded.
    builder.edge("fl_ts", "flight", "tokyo", "seoul").version(2, 5, carrier="NH")
    builder.edge("fl_sd", "flight", "seoul", "dubai").version(7, 10, carrier="KE")
    builder.edge("tr_dp", "train", "dubai", "paris").version(11, 15, carrier="rail")
    builder.edge("bu_pb", "bus", "paris", "buenos_aires").version(16, 20, carrier="bus")
    builder.edge("fl_tp", "flight", "tokyo", "paris").version(9, 11, carrier="AF")
    builder.edge("fl_pb", "flight", "paris", "buenos_aires").version(13, 17, carrier="AF")
    return builder.build()


def main() -> None:
    graph = build_network()
    engine = DataflowEngine(graph)
    finder = TemporalPathFinder(graph)

    print("Minimum temporal path queries (prior-work substrate, Wu et al.)")
    print("----------------------------------------------------------------")
    journey = finder.earliest_arrival("tokyo", "buenos_aires")
    print("earliest arrival tokyo -> buenos_aires:",
          [e.edge_id for e in journey.edges], f"arrives at hour {journey.arrival}")
    journey = finder.fastest("tokyo", "buenos_aires")
    print("fastest tokyo -> buenos_aires:         ",
          [e.edge_id for e in journey.edges], f"duration {journey.duration}h")
    journey = finder.latest_departure("tokyo", "paris")
    print("latest departure tokyo -> paris:       ",
          [e.edge_id for e in journey.edges], f"departs at hour {journey.departure}")
    journey = finder.shortest("tokyo", "buenos_aires")
    print("fewest hops tokyo -> buenos_aires:     ",
          [e.edge_id for e in journey.edges], f"{journey.hops} hops\n")

    print("TRPQ: multi-modal journeys (flight, then any service, arbitrary waits)")
    print("----------------------------------------------------------------------")
    # From Tokyo: take a flight, wait any number of hours, take any service,
    # wait again, take any service — the kind of mixed-service itinerary
    # Section V-C uses to separate TRPQs from T-GQL consecutive paths.
    query = (
        "MATCH (x:City {name = 'tokyo'})-"
        "/FWD/:flight/FWD/NEXT*/FWD/NEXT*/FWD/NEXT*/-(y:City) ON transport"
    )
    table = engine.match(query)
    destinations = sorted({obj for _x, (obj, _t) in table.rows})
    print("cities reachable from tokyo with a flight followed by one more leg:")
    print(" ", destinations, "\n")

    print("TRPQ: mixing future and past temporal navigation")
    print("------------------------------------------------")
    # Where could a traveller seen in Paris at hour 12 have come from (past
    # navigation), and where could they still go afterwards (future navigation)?
    query = (
        "MATCH (x:City {name = 'paris' AND time = '12'})-"
        "/PREV*/BWD/:flight/BWD/-(origin:City) ON transport"
    )
    origins = engine.match(query)
    query = (
        "MATCH (x:City {name = 'paris' AND time = '12'})-"
        "/NEXT*/FWD/:flight/FWD/-(destination:City) ON transport"
    )
    onward = engine.match(query)
    print("possible origins of a traveller in Paris at hour 12: ",
          sorted({obj for _x, (obj, _t) in origins.rows}))
    print("possible onward flights after hour 12:               ",
          sorted({obj for _x, (obj, _t) in onward.rows}))


if __name__ == "__main__":
    main()
