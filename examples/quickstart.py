"""Quickstart: build the paper's running example and ask it temporal questions.

This script reconstructs the Figure-1 contact-tracing graph, runs a few
of the paper's queries through the dataflow engine and prints the
resulting temporal binding tables.  Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DataflowEngine, ReferenceEngine, contact_tracing_example, graph_statistics


def main() -> None:
    graph = contact_tracing_example()
    stats = graph_statistics(graph)
    print("Loaded the Figure-1 contact-tracing graph:")
    print(f"  {stats.num_nodes} nodes, {stats.num_edges} edges, "
          f"{stats.num_temporal_nodes} temporal node versions, "
          f"domain of {stats.num_time_points} time points\n")

    engine = DataflowEngine(graph)

    print("Q2 — low-risk people (snapshot-reducible, no temporal navigation):")
    table = engine.match("MATCH (x:Person {risk = 'low'}) ON contact_tracing")
    print(table.pretty(limit=6), "\n")

    print("Q6 — who tested positive, and the same person one time point earlier:")
    table = engine.match(
        "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person) ON contact_tracing"
    )
    print(table.pretty(), "\n")

    print("Q8 — rooms visited at or before the time of the positive test:")
    table = engine.match(
        "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) "
        "ON contact_tracing"
    )
    print(table.pretty(), "\n")

    print("Q9 — high-risk people who met someone who later tested positive:")
    query = (
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) "
        "ON contact_tracing"
    )
    table = engine.match(query)
    print(table.pretty(), "\n")

    # The reference engine implements the full language; it must agree.
    reference = ReferenceEngine(graph)
    assert reference.match(query).as_set() == table.as_set()
    print("Cross-check passed: the reference engine returns the same bindings.")


if __name__ == "__main__":
    main()
