"""Contact tracing at scale: exposure analysis over a synthetic campus.

This example mirrors the paper's motivating scenario (Section I): given a
temporal property graph of people visiting rooms and meeting each other,
find high-risk individuals who may have been exposed to an infectious
disease, either by meeting an infected person or by sharing a room with
one shortly before that person tested positive.

Run it with::

    python examples/contact_tracing.py [num_persons]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import DataflowEngine
from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.model import graph_statistics


def build_graph(num_persons: int):
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=num_persons,
            num_locations=max(20, num_persons // 3),
            num_rooms=max(5, num_persons // 12),
            num_windows=48,
            seed=42,
        ),
        positivity_rate=0.06,
        seed=42,
    )
    return generate_contact_tracing_graph(config)


def main() -> None:
    num_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    graph = build_graph(num_persons)
    stats = graph_statistics(graph)
    print(
        f"Synthetic campus day: {stats.num_nodes} nodes, {stats.num_temporal_edges} "
        f"temporal edges over {stats.num_time_points} five-minute windows\n"
    )

    engine = DataflowEngine(graph)

    # Direct exposure: met someone who subsequently tested positive (Q9).
    met_infected = engine.match_with_stats(
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) "
        "ON campus"
    )
    # Indirect exposure: shared a room with someone who tested positive within
    # an hour (Q11 with a 12-window bound).
    shared_room = engine.match_with_stats(
        "MATCH (x:Person {risk = 'high'})-"
        "/FWD/:visits/FWD/:Room/BWD/:visits/BWD/NEXT[0,12]/-({test = 'pos'}) "
        "ON campus"
    )

    print("Exposure analysis for high-risk individuals")
    print("-------------------------------------------")
    print(f"direct contacts (met an infected person):   {met_infected.output_size:6d} "
          f"temporal bindings in {met_infected.total_seconds:.3f}s")
    print(f"indirect contacts (shared a room):          {shared_room.output_size:6d} "
          f"temporal bindings in {shared_room.total_seconds:.3f}s\n")

    exposures = Counter()
    for ((person, _time),) in met_infected.table.rows:
        exposures[person] += 1
    for ((person, _time),) in shared_room.table.rows:
        exposures[person] += 1

    print("Most exposed high-risk individuals (by number of exposure windows):")
    for person, count in exposures.most_common(10):
        risk_windows = graph.property_family(person, "risk").when_equals("high")
        print(f"  {person:>6}  exposure windows: {count:4d}   "
              f"high-risk during {risk_windows}")

    if not exposures:
        print("  (no exposures found — try a larger population or positivity rate)")


if __name__ == "__main__":
    main()
