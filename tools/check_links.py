#!/usr/bin/env python3
"""Intra-repo markdown link checker (the CI docs job).

Scans the repository's markdown documentation for inline links
(``[text](target)``) and verifies that every *relative* target
resolves: the file exists, and — when the link carries a
``#fragment`` — the target file contains a heading whose GitHub-style
anchor slug matches. External links (``http(s)://``, ``mailto:``) are
ignored: CI must not fail on somebody else's outage.

Usage::

    python tools/check_links.py                  # default doc set
    python tools/check_links.py README.md docs   # explicit files/dirs

Exits non-zero listing every broken link as ``file:line: message``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surface the docs CI job guards.
DEFAULT_TARGETS = (
    "README.md",
    "docs",
    "PERFORMANCE.md",
    "RELIABILITY.md",
    "ROADMAP.md",
)

#: Inline markdown links; images share the syntax behind a ``!``.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep the label
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def display(path: Path) -> str:
    """Repo-relative when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def anchors_of(path: Path) -> set[str]:
    """All heading anchors of one markdown file (fenced code excluded)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def collect_files(arguments: list[str]) -> list[Path]:
    targets = arguments or list(DEFAULT_TARGETS)
    files: list[Path] = []
    for target in targets:
        path = (REPO_ROOT / target).resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"WARNING: {target} does not exist; skipping", file=sys.stderr)
    return files


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{display(path)}:{number}"
            file_part, _, fragment = target.partition("#")
            resolved = (
                path if not file_part else (path.parent / file_part).resolve()
            )
            if not resolved.exists():
                errors.append(f"{where}: broken link {target!r} ({file_part} missing)")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    errors.append(
                        f"{where}: anchor #{fragment} not found in "
                        f"{display(resolved)}"
                    )
    return errors


def main(argv: list[str] | None = None) -> int:
    files = collect_files(list(sys.argv[1:] if argv is None else argv))
    if not files:
        print("ERROR: no markdown files to check", file=sys.stderr)
        return 1
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
