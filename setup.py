"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` /
``python setup.py develop``) work on environments whose setuptools
predates PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
