"""Naive point-based evaluation baseline.

The paper's implementation keeps intermediate results in the interval
representation for as long as possible (Steps 1 and 2) and only expands
to time points at the very end.  The obvious alternative — expand the
whole ITPG to its point-based TPG upfront and evaluate there — is the
baseline implemented here.  It produces identical answers (used as a
cross-check) and is the comparison point of the interval-vs-point
ablation benchmark (``benchmarks/bench_ablation_interval_vs_point.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Union as TypingUnion

from repro.eval.bindings import BindingTable
from repro.eval.engine import ReferenceEngine
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch
from repro.model.convert import itpg_to_tpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph


@dataclass(frozen=True)
class NaiveMatchResult:
    """Result of a naive evaluation, with the expansion cost isolated."""

    table: BindingTable
    expansion_seconds: float
    evaluation_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.expansion_seconds + self.evaluation_seconds


class NaivePointEngine:
    """Evaluate MATCH queries by expanding the graph to time points first."""

    def __init__(self, graph: TypingUnion[TemporalPropertyGraph, IntervalTPG]) -> None:
        start = time.perf_counter()
        if isinstance(graph, IntervalTPG):
            expanded = itpg_to_tpg(graph)
        else:
            expanded = graph
        self._expansion_seconds = time.perf_counter() - start
        self._engine = ReferenceEngine(expanded)

    @property
    def expansion_seconds(self) -> float:
        """Time spent expanding the interval representation to time points."""
        return self._expansion_seconds

    def match(self, query: TypingUnion[str, MatchQuery, CompiledMatch]) -> BindingTable:
        return self._engine.match(query)

    def match_with_stats(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch]
    ) -> NaiveMatchResult:
        start = time.perf_counter()
        table = self._engine.match(query)
        evaluation = time.perf_counter() - start
        return NaiveMatchResult(
            table=table,
            expansion_seconds=self._expansion_seconds,
            evaluation_seconds=evaluation,
        )
