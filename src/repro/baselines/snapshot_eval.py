"""Per-snapshot evaluation of structural path expressions.

Snapshot reducibility (Section I-B / II) states that a temporal query
without explicit references to time must agree with evaluating its
non-temporal counterpart on every snapshot of the graph.  This module
provides exactly that baseline: a tiny conventional RPQ evaluator over a
single :class:`~repro.model.snapshot.Snapshot`, plus the union over all
snapshots.  The test suite uses it to validate the temporal engines on
structural-only queries; the benchmark suite uses it as the snapshot-
sequence baseline.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import UnsupportedFragmentError
from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.model.snapshot import Snapshot, snapshot_sequence
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph

ObjectId = Hashable
Pair = tuple[ObjectId, ObjectId]


def contains_temporal_operator(path: PathExpr) -> bool:
    """True if the expression navigates through time or mentions time explicitly."""
    if isinstance(path, Axis):
        return path.is_temporal
    if isinstance(path, TestPath):
        return _test_mentions_time(path.condition)
    if isinstance(path, (Concat, Union)):
        return any(contains_temporal_operator(part) for part in path.parts)
    if isinstance(path, Repeat):
        return contains_temporal_operator(path.body)
    raise TypeError(f"unknown path expression {path!r}")


def _test_mentions_time(condition: Test) -> bool:
    if isinstance(condition, TimeLt):
        return True
    if isinstance(condition, (AndTest, OrTest)):
        return any(_test_mentions_time(part) for part in condition.parts)
    if isinstance(condition, NotTest):
        return _test_mentions_time(condition.inner)
    if isinstance(condition, PathTest):
        return contains_temporal_operator(condition.path)
    return False


def snapshot_rpq(snapshot: Snapshot, path: PathExpr) -> frozenset[Pair]:
    """Evaluate a structural path expression over a single snapshot.

    The semantics is the non-temporal restriction of the paper's
    semantics: ``F``/``B`` move along edges present in the snapshot,
    tests check labels and the snapshot's property values, and ``∃``
    means membership in the snapshot.
    """
    if contains_temporal_operator(path):
        raise UnsupportedFragmentError(
            "snapshot evaluation is only defined for structural (time-free) expressions"
        )
    objects = list(snapshot.nodes()) + list(snapshot.edges())
    return frozenset(_evaluate(snapshot, path, objects))


def _evaluate(snapshot: Snapshot, path: PathExpr, objects: list[ObjectId]) -> set[Pair]:
    if isinstance(path, Axis):
        pairs: set[Pair] = set()
        for edge, (src, tgt) in snapshot.edge_endpoints.items():
            if path.kind == "F":
                pairs.add((src, edge))
                pairs.add((edge, tgt))
            else:
                pairs.add((tgt, edge))
                pairs.add((edge, src))
        return pairs
    if isinstance(path, TestPath):
        return {(o, o) for o in objects if _satisfies(snapshot, o, path.condition)}
    if isinstance(path, Concat):
        result = _evaluate(snapshot, path.parts[0], objects)
        for part in path.parts[1:]:
            right = _evaluate(snapshot, part, objects)
            index: dict[ObjectId, list[ObjectId]] = {}
            for a, b in right:
                index.setdefault(a, []).append(b)
            result = {(a, c) for a, b in result for c in index.get(b, ())}
        return result
    if isinstance(path, Union):
        out: set[Pair] = set()
        for part in path.parts:
            out |= _evaluate(snapshot, part, objects)
        return out
    if isinstance(path, Repeat):
        base = _evaluate(snapshot, path.body, objects)
        identity = {(o, o) for o in objects}
        powers = identity
        result: set[Pair] = set()
        upper = path.upper if path.upper is not None else len(objects) ** 2
        for step in range(0, upper + 1):
            if step >= path.lower:
                result |= powers
            index: dict[ObjectId, list[ObjectId]] = {}
            for a, b in base:
                index.setdefault(a, []).append(b)
            new_powers = {(a, c) for a, b in powers for c in index.get(b, ())}
            if new_powers <= powers and step >= path.lower:
                break
            powers = new_powers
        return result
    raise TypeError(f"unknown path expression {path!r}")


def _satisfies(snapshot: Snapshot, obj: ObjectId, condition: Test) -> bool:
    if isinstance(condition, NodeTest):
        return snapshot.has_node(obj)
    if isinstance(condition, EdgeTest):
        return snapshot.has_edge(obj)
    if isinstance(condition, LabelTest):
        return snapshot.label(obj) == condition.label
    if isinstance(condition, PropEq):
        return snapshot.property_value(obj, condition.prop) == condition.value
    if isinstance(condition, ExistsTest):
        return snapshot.has_node(obj) or snapshot.has_edge(obj)
    if isinstance(condition, TrueTest):
        return True
    if isinstance(condition, AndTest):
        return all(_satisfies(snapshot, obj, part) for part in condition.parts)
    if isinstance(condition, OrTest):
        return any(_satisfies(snapshot, obj, part) for part in condition.parts)
    if isinstance(condition, NotTest):
        return not _satisfies(snapshot, obj, condition.inner)
    raise UnsupportedFragmentError(f"test {condition!r} is not snapshot-evaluable")


def snapshot_reducible_evaluation(
    graph: TemporalPropertyGraph | IntervalTPG, path: PathExpr
) -> frozenset[tuple[ObjectId, int, ObjectId, int]]:
    """Union over snapshots of the non-temporal evaluation, lifted to temporal objects.

    For a structural-only expression this must equal the temporal
    semantics ``JpathK_G`` restricted to existing objects — the snapshot
    reducibility property tested in ``tests/test_snapshot_reducibility.py``.
    """
    result: set[tuple[ObjectId, int, ObjectId, int]] = set()
    for snapshot in snapshot_sequence(graph):
        for a, b in snapshot_rpq(snapshot, path):
            result.add((a, snapshot.time, b, snapshot.time))
    return frozenset(result)
