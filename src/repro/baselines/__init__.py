"""Baseline algorithms used for comparison and cross-checking.

* :mod:`repro.baselines.snapshot_eval` — non-temporal RPQ evaluation on
  each snapshot of a temporal graph.  Used to verify snapshot
  reducibility: structural-only TRPQs must coincide with the union of the
  per-snapshot evaluations.
* :mod:`repro.baselines.naive_point` — evaluation by expanding the ITPG
  to its point-based TPG and running the reference bottom-up algorithm.
  This is the "no interval reasoning" ablation baseline.
* :mod:`repro.baselines.temporal_paths` — the minimum temporal path
  queries of Wu et al. (earliest-arrival, latest-departure, fastest,
  shortest), the prior-work substrate the paper compares against
  conceptually in Section II.
"""

from repro.baselines.snapshot_eval import snapshot_rpq, snapshot_reducible_evaluation
from repro.baselines.naive_point import NaivePointEngine
from repro.baselines.temporal_paths import (
    TemporalPathFinder,
    earliest_arrival_path,
    latest_departure_path,
    fastest_path,
    shortest_temporal_path,
)

__all__ = [
    "snapshot_rpq",
    "snapshot_reducible_evaluation",
    "NaivePointEngine",
    "TemporalPathFinder",
    "earliest_arrival_path",
    "latest_departure_path",
    "fastest_path",
    "shortest_temporal_path",
]
