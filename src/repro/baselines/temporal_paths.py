"""Minimum temporal path queries (Wu et al.), as a prior-work substrate.

Section II of the paper situates TRPQs against "minimum temporal path"
queries over temporal graphs in which edges carry a starting and an
ending time: earliest-arrival, latest-departure, fastest and shortest
paths.  These algorithms operate on *temporal journeys*: sequences of
edge traversals whose times never move backwards.  This module implements
the four variants by one-pass scans over the time-ordered edge stream
(the algorithmic idea of Wu et al.), operating on an ITPG by interpreting
each edge version as an edge available from the start to the end of its
validity interval, with a traversal duration of one time unit.

They are used by the travel-planning example (the scenario the paper
uses to argue that T-GQL's "consecutive paths" are less expressive than
TRPQs) and by the baseline benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.model.itpg import IntervalTPG

ObjectId = Hashable


@dataclass(frozen=True)
class TemporalEdge:
    """One traversable edge occurrence: available during [start, end], duration 1."""

    edge_id: ObjectId
    source: ObjectId
    target: ObjectId
    start: int
    end: int

    @property
    def earliest_arrival(self) -> int:
        """Arrival time when the edge is taken as early as possible."""
        return self.start + 1

    @property
    def latest_departure(self) -> int:
        return self.end


@dataclass(frozen=True)
class Journey:
    """A temporal journey: edges taken at non-decreasing times."""

    edges: tuple[TemporalEdge, ...]
    departure: int
    arrival: int

    @property
    def duration(self) -> int:
        return self.arrival - self.departure

    @property
    def hops(self) -> int:
        return len(self.edges)


class TemporalPathFinder:
    """Minimum temporal path queries over an ITPG."""

    def __init__(self, graph: IntervalTPG, labels: Optional[Iterable[str]] = None) -> None:
        self._graph = graph
        wanted = set(labels) if labels is not None else None
        self._edges: list[TemporalEdge] = []
        for edge_id in graph.edges():
            if wanted is not None and graph.label(edge_id) not in wanted:
                continue
            src, tgt = graph.endpoints(edge_id)
            for interval in graph.existence(edge_id):
                self._edges.append(
                    TemporalEdge(edge_id, src, tgt, interval.start, interval.end)
                )
        self._edges.sort(key=lambda e: (e.start, e.end))

    # ------------------------------------------------------------------ #
    # The four minimum temporal path variants
    # ------------------------------------------------------------------ #
    def earliest_arrival(
        self, source: ObjectId, target: ObjectId, depart_after: Optional[int] = None
    ) -> Optional[Journey]:
        """The journey reaching ``target`` as early as possible."""
        depart_after = self._graph.domain.start if depart_after is None else depart_after
        best_arrival: dict[ObjectId, int] = {source: depart_after}
        parent: dict[ObjectId, TemporalEdge] = {}
        for edge in self._edges:
            ready = best_arrival.get(edge.source)
            if ready is None:
                continue
            depart = max(ready, edge.start)
            if depart > edge.end:
                continue
            arrival = depart + 1
            if arrival < best_arrival.get(edge.target, math.inf):
                best_arrival[edge.target] = arrival
                parent[edge.target] = edge
        if target not in best_arrival or target == source:
            if target == source:
                return Journey((), depart_after, depart_after)
            return None
        return self._reconstruct(source, target, parent, depart_after, best_arrival[target])

    def latest_departure(
        self, source: ObjectId, target: ObjectId, arrive_by: Optional[int] = None
    ) -> Optional[Journey]:
        """The journey leaving ``source`` as late as possible while arriving by ``arrive_by``."""
        arrive_by = self._graph.domain.end if arrive_by is None else arrive_by
        best_departure: dict[ObjectId, int] = {target: arrive_by}
        parent: dict[ObjectId, TemporalEdge] = {}
        for edge in sorted(self._edges, key=lambda e: (e.end, e.start), reverse=True):
            needed = best_departure.get(edge.target)
            if needed is None:
                continue
            depart = min(needed - 1, edge.end)
            if depart < edge.start:
                continue
            if depart > best_departure.get(edge.source, -math.inf):
                best_departure[edge.source] = depart
                parent[edge.source] = edge
        if source not in best_departure:
            return None
        departure = best_departure[source]
        edges: list[TemporalEdge] = []
        node = source
        while node != target:
            edge = parent[node]
            edges.append(edge)
            node = edge.target
        arrival = edges[-1].end + 1 if edges else departure
        return Journey(tuple(edges), departure, min(arrival, arrive_by))

    def fastest(self, source: ObjectId, target: ObjectId) -> Optional[Journey]:
        """The journey minimizing (arrival − departure)."""
        best: Optional[Journey] = None
        departures = sorted({edge.start for edge in self._edges if edge.source == source})
        for depart in departures:
            journey = self.earliest_arrival(source, target, depart_after=depart)
            if journey is None or journey.hops == 0:
                continue
            anchored = Journey(journey.edges, max(depart, journey.edges[0].start), journey.arrival)
            if best is None or anchored.duration < best.duration:
                best = anchored
        if best is None and source == target:
            return Journey((), self._graph.domain.start, self._graph.domain.start)
        return best

    def shortest(self, source: ObjectId, target: ObjectId) -> Optional[Journey]:
        """The journey minimizing the number of hops (breaking ties by arrival)."""
        frontier: dict[ObjectId, tuple[int, int, tuple[TemporalEdge, ...]]] = {
            source: (0, self._graph.domain.start, ())
        }
        best: Optional[Journey] = None
        if source == target:
            return Journey((), self._graph.domain.start, self._graph.domain.start)
        changed = True
        while changed:
            changed = False
            for edge in self._edges:
                state = frontier.get(edge.source)
                if state is None:
                    continue
                hops, ready, edges = state
                depart = max(ready, edge.start)
                if depart > edge.end:
                    continue
                arrival = depart + 1
                candidate = (hops + 1, arrival, edges + (edge,))
                current = frontier.get(edge.target)
                if current is None or candidate[:2] < current[:2]:
                    frontier[edge.target] = candidate
                    changed = True
        state = frontier.get(target)
        if state is None:
            return best
        hops, arrival, edges = state
        departure = edges[0].start if edges else arrival
        return Journey(tuple(edges), departure, arrival)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _reconstruct(
        self,
        source: ObjectId,
        target: ObjectId,
        parent: dict[ObjectId, TemporalEdge],
        departure_hint: int,
        arrival: int,
    ) -> Journey:
        edges: list[TemporalEdge] = []
        node = target
        while node != source:
            edge = parent[node]
            edges.append(edge)
            node = edge.source
        edges.reverse()
        departure = max(departure_hint, edges[0].start) if edges else departure_hint
        return Journey(tuple(edges), departure, arrival)


def earliest_arrival_path(
    graph: IntervalTPG, source: ObjectId, target: ObjectId, labels: Optional[Iterable[str]] = None
) -> Optional[Journey]:
    """Convenience wrapper: earliest-arrival journey between two nodes."""
    return TemporalPathFinder(graph, labels).earliest_arrival(source, target)


def latest_departure_path(
    graph: IntervalTPG, source: ObjectId, target: ObjectId, labels: Optional[Iterable[str]] = None
) -> Optional[Journey]:
    """Convenience wrapper: latest-departure journey between two nodes."""
    return TemporalPathFinder(graph, labels).latest_departure(source, target)


def fastest_path(
    graph: IntervalTPG, source: ObjectId, target: ObjectId, labels: Optional[Iterable[str]] = None
) -> Optional[Journey]:
    """Convenience wrapper: fastest journey between two nodes."""
    return TemporalPathFinder(graph, labels).fastest(source, target)


def shortest_temporal_path(
    graph: IntervalTPG, source: ObjectId, target: ObjectId, labels: Optional[Iterable[str]] = None
) -> Optional[Journey]:
    """Convenience wrapper: fewest-hop journey between two nodes."""
    return TemporalPathFinder(graph, labels).shortest(source, target)
