"""Contact-tracing graph construction from synthetic trajectories.

This mirrors Section VII-A of the paper:

* every tracked individual becomes a ``Person`` node whose periods of
  validity are the union of their room visits (plus their co-location
  contacts);
* the most frequently visited locations become ``Room`` nodes whose
  validity spans first entrance to last exit;
* every stay in a room adds a ``visits`` edge person → room;
* co-location at a non-room location adds a bi-directional ``meets``
  relationship (stored as two directed edges, one per direction);
* 18% of the persons are marked high-risk for their whole lifespan
  (the share of the population aged 65+);
* a configurable share of persons receives a positive test at a time
  drawn uniformly from the temporal domain and stays positive for the
  rest of their lifespan (the positivity-rate knob of Figure 5).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field

from repro.datagen.trajectory import TrajectoryConfig, TrajectorySimulator, VisitRecord, co_location_contacts
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet


@dataclass
class ContactTracingConfig:
    """Configuration of the contact-tracing graph generator."""

    trajectory: TrajectoryConfig = field(default_factory=TrajectoryConfig)
    high_risk_share: float = 0.18
    positivity_rate: float = 0.05
    seed: int = 11

    def with_positivity(self, rate: float) -> "ContactTracingConfig":
        """Copy of the configuration with a different positivity rate."""
        return ContactTracingConfig(
            trajectory=self.trajectory,
            high_risk_share=self.high_risk_share,
            positivity_rate=rate,
            seed=self.seed,
        )


def generate_contact_tracing_graph(config: ContactTracingConfig | None = None) -> IntervalTPG:
    """Generate a contact-tracing ITPG according to ``config``."""
    config = config or ContactTracingConfig()
    trajectory_cfg = config.trajectory
    rng = random.Random(config.seed)

    simulator = TrajectorySimulator(trajectory_cfg)
    visits = simulator.generate()
    domain = Interval(0, trajectory_cfg.num_windows - 1)
    graph = IntervalTPG(domain)

    room_ids = _select_rooms(visits, trajectory_cfg.num_rooms)
    room_visits = [v for v in visits if v.location in room_ids]
    other_visits = [v for v in visits if v.location not in room_ids]

    person_presence = _presence_by_person(visits)
    risk = _assign_risk(sorted(person_presence), config.high_risk_share, rng)
    positives = _assign_positivity(person_presence, config.positivity_rate, rng)

    # ----------------------------- Person nodes ----------------------------- #
    for person, presence in sorted(person_presence.items()):
        node_id = f"p{person}"
        graph.add_node(node_id, "Person", presence)
        for interval in presence:
            graph.set_property(node_id, "name", f"person_{person}", interval.start, interval.end)
            graph.set_property(node_id, "risk", risk[person], interval.start, interval.end)
        positive_from = positives.get(person)
        if positive_from is not None:
            for interval in presence.intersect_interval(Interval(positive_from, domain.end)):
                graph.set_property(node_id, "test", "pos", interval.start, interval.end)

    # ----------------------------- Room nodes ----------------------------- #
    room_spans = _room_spans(room_visits)
    for room, span in sorted(room_spans.items()):
        node_id = f"r{room}"
        graph.add_node(node_id, "Room", IntervalSet((span,)))
        graph.set_property(node_id, "num", room, span.start, span.end)
        graph.set_property(node_id, "bldg", f"B{room % 7}", span.start, span.end)

    # ----------------------------- visits edges ----------------------------- #
    for index, visit in enumerate(room_visits):
        edge_id = f"v{index}"
        person_id = f"p{visit.person}"
        room_id = f"r{visit.location}"
        interval = Interval(visit.start, visit.end)
        graph.add_edge(edge_id, "visits", person_id, room_id, IntervalSet((interval,)))

    # ----------------------------- meets edges ----------------------------- #
    meet_index = 0
    for a, b, location, start, end in co_location_contacts(other_visits):
        interval = IntervalSet(((start, end),))
        loc_name = f"loc_{location}"
        forward_id = f"m{meet_index}"
        backward_id = f"m{meet_index}_rev"
        meet_index += 1
        graph.add_edge(forward_id, "meets", f"p{a}", f"p{b}", interval)
        graph.set_property(forward_id, "loc", loc_name, start, end)
        graph.add_edge(backward_id, "meets", f"p{b}", f"p{a}", interval)
        graph.set_property(backward_id, "loc", loc_name, start, end)

    graph.validate()
    return graph


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def _select_rooms(visits: list[VisitRecord], num_rooms: int) -> set[int]:
    """The ``num_rooms`` most frequently visited locations become Room nodes."""
    counts: dict[int, int] = defaultdict(int)
    for visit in visits:
        counts[visit.location] += 1
    ranked = sorted(counts, key=lambda loc: (-counts[loc], loc))
    return set(ranked[:num_rooms])


def _presence_by_person(visits: list[VisitRecord]) -> dict[int, IntervalSet]:
    """Each person exists during the coalesced union of their stays.

    This mirrors the paper's construction, where a Person node's periods
    of validity correspond to their location visits: a person with
    several separated stays becomes several temporal node versions, which
    is what drives the "# temp. nodes" column of Table I above the
    "# nodes" column.  Every ``visits``/``meets`` edge is derived from a
    stay, so edge validity is always contained in both endpoints'
    presence (the ITPG integrity condition).
    """
    spans: dict[int, list[VisitRecord]] = defaultdict(list)
    for visit in visits:
        spans[visit.person].append(visit)
    presence: dict[int, IntervalSet] = {}
    for person, stays in spans.items():
        presence[person] = IntervalSet(
            Interval(v.start, v.end) for v in stays
        )
    return presence


def _assign_risk(persons: list[int], share: float, rng: random.Random) -> dict[int, str]:
    num_high = int(round(len(persons) * share))
    high = set(rng.sample(persons, num_high)) if num_high else set()
    return {p: ("high" if p in high else "low") for p in persons}


def _assign_positivity(
    presence: dict[int, IntervalSet], rate: float, rng: random.Random
) -> dict[int, int]:
    """Persons testing positive, mapped to the window of their positive test.

    The test time is drawn uniformly from the person's own periods of
    validity, so that every selected person actually carries the
    ``test = 'pos'`` property in the graph (the paper keeps selected
    nodes positive for the remainder of their lifespan).
    """
    persons = sorted(presence)
    num_positive = int(round(len(persons) * rate))
    chosen = rng.sample(persons, num_positive) if num_positive else []
    times: dict[int, int] = {}
    for person in chosen:
        points = list(presence[person].points())
        times[person] = rng.choice(points)
    return times


def _room_spans(room_visits: list[VisitRecord]) -> dict[int, Interval]:
    spans: dict[int, Interval] = {}
    for visit in room_visits:
        current = spans.get(visit.location)
        if current is None:
            spans[visit.location] = Interval(visit.start, visit.end)
        else:
            spans[visit.location] = current.hull(Interval(visit.start, visit.end))
    return spans
