"""Random temporal graphs and random expressions for property-based tests.

These generators produce *small* instances (a handful of nodes, a short
temporal domain) on which the reference bottom-up engine is fast, so the
test suite can cross-check every engine against it on many random cases.
They are deterministic given a seed, which keeps hypothesis shrinking and
failure reproduction stable.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.lang import ast
from repro.lang.ast import PathExpr, Test
from repro.lang.parser import EdgePattern, MatchQuery, NodePattern, PathPattern
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

_LABELS = ("Person", "Room", "Device")
_EDGE_LABELS = ("knows", "visits", "meets")
_PROPS = ("risk", "color")
_VALUES = ("low", "high", "red", "blue")


def random_itpg(
    seed: int,
    num_nodes: int = 5,
    num_edges: int = 7,
    num_windows: int = 8,
) -> IntervalTPG:
    """A small random ITPG with random existence intervals and properties."""
    rng = random.Random(seed)
    domain = Interval(0, num_windows - 1)
    graph = IntervalTPG(domain)
    node_ids = [f"n{i}" for i in range(num_nodes)]
    for node_id in node_ids:
        existence = _random_intervalset(rng, domain)
        graph.add_node(node_id, rng.choice(_LABELS), existence)
        for interval in existence:
            if rng.random() < 0.7:
                graph.set_property(
                    node_id, rng.choice(_PROPS), rng.choice(_VALUES), interval.start, interval.end
                )
    edge_count = 0
    attempts = 0
    while edge_count < num_edges and attempts < num_edges * 10:
        attempts += 1
        src = rng.choice(node_ids)
        tgt = rng.choice(node_ids)
        shared = graph.existence(src).intersect(graph.existence(tgt))
        if shared.is_empty():
            continue
        pieces = [iv for iv in shared]
        interval = rng.choice(pieces)
        if len(interval) > 1 and rng.random() < 0.5:
            start = rng.randint(interval.start, interval.end)
            end = rng.randint(start, interval.end)
            interval = Interval(start, end)
        edge_id = f"e{edge_count}"
        graph.add_edge(edge_id, rng.choice(_EDGE_LABELS), src, tgt, IntervalSet((interval,)))
        if rng.random() < 0.5:
            graph.set_property(
                edge_id, "loc", rng.choice(("cafe", "park")), interval.start, interval.end
            )
        edge_count += 1
    graph.validate()
    return graph


def _random_intervalset(rng: random.Random, domain: Interval) -> IntervalSet:
    pieces = []
    for _ in range(rng.randint(1, 2)):
        start = rng.randint(domain.start, domain.end)
        end = min(domain.end, start + rng.randint(0, len(domain) // 2))
        pieces.append(Interval(start, end))
    return IntervalSet(pieces)


def random_delta_batches(
    graph: IntervalTPG,
    seed: int,
    num_batches: int = 3,
    start_sequence: int = 1,
) -> list:
    """A valid sequence of random delta batches for ``graph``.

    Used by the streaming differential oracle: batches mix new nodes
    (with properties), new edges between nodes whose existence overlaps,
    existence extensions, property writes on fresh existence, and
    occasional horizon advances.  Every batch is constructed to pass
    :func:`repro.streaming.delta.apply_delta` validation against the
    graph grown by its predecessors, so the caller can apply the whole
    sequence; the construction only reads ``graph`` (it tracks the
    prospective existence itself) and is deterministic given ``seed``.
    """
    from repro.streaming.delta import DeltaBatch

    rng = random.Random(0xDE17A + seed)
    horizon = graph.domain.end
    existence: dict = {obj: graph.existence(obj) for obj in graph.nodes()}
    next_id = 0
    batches = []
    for position in range(num_batches):
        batch = DeltaBatch(sequence=start_sequence + position)
        if rng.random() < 0.3:
            horizon += rng.randint(1, 3)
            batch.extend_domain(horizon)
        domain = Interval(graph.domain.start, horizon)
        for _ in range(rng.randint(0, 2)):
            node_id = f"sn{next_id}"
            next_id += 1
            start = rng.randint(domain.start, domain.end)
            end = min(domain.end, start + rng.randint(0, 3))
            batch.add_node(node_id, rng.choice(_LABELS), [(start, end)])
            existence[node_id] = IntervalSet(((start, end),))
            if rng.random() < 0.6:
                batch.set_property(
                    node_id, rng.choice(_PROPS), rng.choice(_VALUES), start, end
                )
        nodes = sorted(existence, key=repr)
        for _ in range(rng.randint(0, 3)):
            src, tgt = rng.choice(nodes), rng.choice(nodes)
            shared = existence[src].intersect(existence[tgt])
            if shared.is_empty():
                continue
            piece = rng.choice(list(shared))
            start = rng.randint(piece.start, piece.end)
            end = rng.randint(start, piece.end)
            edge_id = f"se{next_id}"
            next_id += 1
            batch.add_edge(
                edge_id, rng.choice(_EDGE_LABELS), src, tgt, [(start, end)]
            )
            if rng.random() < 0.4:
                batch.set_property(edge_id, "loc", rng.choice(("cafe", "park")), start, end)
        for _ in range(rng.randint(0, 2)):
            obj = rng.choice(nodes)
            start = rng.randint(domain.start, domain.end)
            end = min(domain.end, start + rng.randint(0, 2))
            batch.add_existence(obj, start, end)
            grown = IntervalSet(((start, end),))
            existence[obj] = existence[obj].union(grown)
            if rng.random() < 0.5:
                # A property on the freshly added existence (new values
                # could conflict with stored ones, so fresh-only writes
                # use a dedicated name that the random graphs never set).
                batch.set_property(obj, "seen", "yes", start, end)
        batches.append(batch)
    return batches


def random_path_expression(
    seed: int,
    max_depth: int = 3,
    allow_occurrence_indicators: bool = True,
    allow_path_conditions: bool = False,
) -> PathExpr:
    """A random NavL expression of bounded depth.

    The distribution favours expressions that actually traverse the graph
    (axes and concatenations) so that random cross-checks exercise more
    than empty relations.
    """
    rng = random.Random(seed)
    return _random_path(rng, max_depth, allow_occurrence_indicators, allow_path_conditions)


def _random_path(
    rng: random.Random,
    depth: int,
    allow_noi: bool,
    allow_pc: bool,
) -> PathExpr:
    if depth <= 0:
        return _random_leaf(rng, allow_pc)
    choice = rng.random()
    if choice < 0.35:
        return ast.concat(
            _random_path(rng, depth - 1, allow_noi, allow_pc),
            _random_path(rng, depth - 1, allow_noi, allow_pc),
        )
    if choice < 0.5:
        return ast.union(
            _random_path(rng, depth - 1, allow_noi, allow_pc),
            _random_path(rng, depth - 1, allow_noi, allow_pc),
        )
    if choice < 0.65 and allow_noi:
        lower = rng.randint(0, 2)
        upper: Optional[int] = lower + rng.randint(0, 3)
        if rng.random() < 0.25:
            upper = None
        return ast.repeat(_random_path(rng, depth - 1, allow_noi, allow_pc), lower, upper)
    return _random_leaf(rng, allow_pc)


def random_match_query(seed: int, max_connectors: int = 2) -> MatchQuery:
    """A random MATCH clause inside the dataflow-supported fragment.

    Used by the differential fuzzing harness: the generated queries
    combine node/edge patterns with path connectors whose occurrence
    indicators sit only on temporal axes, so every engine (dataflow in
    both frontier modes, reference, bottom-up) accepts them.  The
    construction is deterministic given ``seed`` and always binds at
    least one variable.
    """
    rng = random.Random(0x5EED_0000 + seed)
    names = iter(f"v{i}" for i in range(16))
    elements = [_random_node_pattern(rng, next(names), bind=True)]
    connectors: list[EdgePattern | PathPattern] = []
    for _ in range(rng.randint(0, max_connectors)):
        connectors.append(_random_connector(rng, next(names)))
        elements.append(
            _random_node_pattern(rng, next(names), bind=rng.random() < 0.6)
        )
    return MatchQuery(
        elements=tuple(elements),
        connectors=tuple(connectors),
        graph_name="g",
        text=f"<random_match_query({seed})>",
    )


def _random_node_pattern(rng: random.Random, name: str, bind: bool) -> NodePattern:
    label = rng.choice(_LABELS) if rng.random() < 0.4 else None
    condition = _random_static_test(rng) if rng.random() < 0.4 else None
    return NodePattern(
        variable=name if bind else None, label=label, condition=condition
    )


def _random_connector(rng: random.Random, name: str) -> EdgePattern | PathPattern:
    if rng.random() < 0.45:
        direction = rng.choice(("out", "in", "both"))
        bind = direction != "both" and rng.random() < 0.4
        return EdgePattern(
            variable=name if bind else None,
            label=rng.choice(_EDGE_LABELS) if rng.random() < 0.5 else None,
            condition=None,
            direction=direction,
        )
    path = _random_dataflow_path(rng, depth=2)
    return PathPattern(path=path, source_text="<random>")


def _random_dataflow_path(rng: random.Random, depth: int) -> PathExpr:
    parts: list[PathExpr] = []
    for _ in range(rng.randint(1, 3)):
        choice = rng.random()
        if choice < 0.3:
            parts.append(rng.choice((ast.F, ast.B)))
        elif choice < 0.6:
            axis: PathExpr = rng.choice((ast.N, ast.P))
            if rng.random() < 0.5:
                # Practical-syntax style: every visited point must exist
                # ((N/∃) and its repetitions — the contiguous fragment).
                axis = ast.concat(axis, ast.test(ast.exists()))
            if rng.random() < 0.6:
                lower = rng.randint(0, 2)
                upper: Optional[int] = lower + rng.randint(0, 3)
                if rng.random() < 0.2:
                    upper = None
                axis = ast.repeat(axis, lower, upper)
            parts.append(axis)
        elif choice < 0.85 or depth <= 0:
            parts.append(ast.test(_random_static_test(rng)))
        else:
            parts.append(
                ast.union(
                    _random_dataflow_path(rng, depth - 1),
                    _random_dataflow_path(rng, depth - 1),
                )
            )
    if len(parts) == 1:
        return parts[0]
    return ast.concat(*parts)


def _random_static_test(rng: random.Random) -> Test:
    choice = rng.random()
    if choice < 0.3:
        return ast.exists()
    if choice < 0.5:
        return ast.label(rng.choice(_LABELS + _EDGE_LABELS))
    if choice < 0.7:
        return ast.prop_eq(rng.choice(_PROPS), rng.choice(_VALUES))
    if choice < 0.85:
        return ast.time_lt(rng.randint(1, 8))
    return ast.and_(ast.exists(), ast.prop_eq(rng.choice(_PROPS), rng.choice(_VALUES)))


def _random_leaf(rng: random.Random, allow_pc: bool) -> PathExpr:
    choice = rng.random()
    if choice < 0.4:
        return rng.choice((ast.F, ast.B, ast.N, ast.P))
    if choice < 0.55:
        return ast.test(ast.exists())
    if choice < 0.65:
        return ast.test(ast.label(rng.choice(_LABELS + _EDGE_LABELS)))
    if choice < 0.75:
        return ast.test(ast.prop_eq(rng.choice(_PROPS), rng.choice(_VALUES)))
    if choice < 0.85:
        return ast.test(rng.choice((ast.is_node(), ast.is_edge())))
    if choice < 0.95 or not allow_pc:
        return ast.test(ast.time_lt(rng.randint(1, 8)))
    return ast.test(ast.path_test(ast.concat(ast.F, ast.test(ast.exists()))))
