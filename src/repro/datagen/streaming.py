"""Streaming contact-tracing workloads: a prefix graph plus delta batches.

The contact-tracing generator (:mod:`repro.datagen.contact_tracing`) is
naturally append-only: visits and co-location contacts are events with a
start time, so a tracked population *is* a stream.  This module replays
the same synthetic trajectories as a stream:

* events (room visits, presence stays, co-location contacts) are sorted
  by start time;
* a configurable prefix becomes the **initial graph** — built by
  applying one unsequenced :class:`~repro.streaming.delta.DeltaBatch`
  to an empty :class:`~repro.model.itpg.IntervalTPG`, so the stream
  machinery constructs its own starting point;
* the remaining events are chunked into sequenced delta batches that
  append person/room existence, ``visits``/``meets`` edges and the
  derived properties (``name``/``risk``/``bldg``, the positivity mark).

Person/room identities, risk assignment and positivity times are drawn
from the *full* trajectory set up front, so an entity keeps its
properties as it grows across batches.  By default the temporal domain
spans the whole study horizon from the start (the natural streaming
shape: a fixed horizon filled in by arriving events), which keeps every
batch on the incremental evaluation path; ``advance_horizon=True``
instead starts the domain at the prefix's last event and extends it
batch by batch, exercising the
:meth:`~repro.model.itpg.IntervalTPG.extend_domain` path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.contact_tracing import (
    ContactTracingConfig,
    _assign_positivity,
    _assign_risk,
    _presence_by_person,
    _select_rooms,
)
from repro.datagen.trajectory import TrajectorySimulator, VisitRecord, co_location_contacts
from repro.model.itpg import IntervalTPG
from repro.streaming.delta import DeltaBatch, apply_delta

import random


@dataclass(frozen=True)
class ContactTracingStream:
    """A streaming workload: initial graph plus ordered delta batches.

    ``initial`` is a live graph the caller may feed to an incremental
    engine (and thereby mutate); ``initial_payload`` is the pristine
    JSON snapshot taken at construction, from which
    :meth:`fresh_initial` and :meth:`replay` rebuild independent copies.
    """

    initial: IntervalTPG
    initial_payload: dict
    batches: tuple[DeltaBatch, ...]
    config: ContactTracingConfig
    total_events: int
    initial_events: int

    def fresh_initial(self) -> IntervalTPG:
        """An independent copy of the initial graph (pre-stream state)."""
        from repro.model.io import from_json_dict

        return from_json_dict(self.initial_payload)

    def replay(self, upto: int | None = None) -> IntervalTPG:
        """Materialize the graph after the first ``upto`` batches (all by default)."""
        graph = self.fresh_initial()
        batches = self.batches if upto is None else self.batches[:upto]
        for batch in batches:
            apply_delta(graph, batch)
        return graph


def contact_tracing_stream(
    config: ContactTracingConfig | None = None,
    *,
    num_batches: int | None = None,
    batch_size: int | None = None,
    initial_fraction: float = 0.5,
    advance_horizon: bool = False,
) -> ContactTracingStream:
    """Build a streaming contact-tracing workload.

    Exactly one of ``num_batches`` / ``batch_size`` sizes the stream
    (default: 8 batches).  ``initial_fraction`` of the events form the
    initial graph; the rest arrive in start-time order.
    """
    if num_batches is not None and batch_size is not None:
        raise ValueError("pass either num_batches or batch_size, not both")
    config = config or ContactTracingConfig()
    trajectory_cfg = config.trajectory
    rng = random.Random(config.seed)

    visits = TrajectorySimulator(trajectory_cfg).generate()
    room_ids = _select_rooms(visits, trajectory_cfg.num_rooms)
    other_visits = [v for v in visits if v.location not in room_ids]
    person_presence = _presence_by_person(visits)
    risk = _assign_risk(sorted(person_presence), config.high_risk_share, rng)
    positives = _assign_positivity(person_presence, config.positivity_rate, rng)

    # One event per visit (room visits also create the edge) plus one per
    # co-location contact; visits sort before contacts at equal start so
    # a contact's presence prerequisites always precede it.
    events: list[tuple[tuple[int, int, int], str, object]] = []
    for position, visit in enumerate(visits):
        kind = "visit" if visit.location in room_ids else "presence"
        events.append(((visit.start, 0, position), kind, visit))
    for position, contact in enumerate(co_location_contacts(other_visits)):
        events.append(((contact[3], 1, position), "meet", contact))
    events.sort(key=lambda event: event[0])

    if num_batches is None and batch_size is None:
        num_batches = 8
    initial_count = max(1, min(len(events) - 1, round(len(events) * initial_fraction)))
    remaining = len(events) - initial_count
    if batch_size is not None:
        batch_size = max(1, batch_size)
    else:
        batch_size = max(1, -(-remaining // max(1, num_batches)))

    full_end = trajectory_cfg.num_windows - 1
    if advance_horizon:
        domain_end = max(
            _event_end(event) for event in events[:initial_count]
        )
    else:
        domain_end = full_end
    graph = IntervalTPG((0, domain_end))

    builder = _StreamBuilder(room_ids, risk, positives)
    initial_batch = DeltaBatch()
    for event in events[:initial_count]:
        builder.emit(initial_batch, event)
    apply_delta(graph, initial_batch)

    batches: list[DeltaBatch] = []
    horizon = domain_end
    position = initial_count
    sequence = 1
    while position < len(events):
        chunk = events[position : position + batch_size]
        position += batch_size
        batch = DeltaBatch(sequence=sequence)
        sequence += 1
        if advance_horizon:
            chunk_end = max(_event_end(event) for event in chunk)
            if chunk_end > horizon:
                horizon = chunk_end
                batch.extend_domain(horizon)
        for event in chunk:
            builder.emit(batch, event)
        batches.append(batch)
    from repro.model.io import to_json_dict

    return ContactTracingStream(
        initial=graph,
        initial_payload=to_json_dict(graph),
        batches=tuple(batches),
        config=config,
        total_events=len(events),
        initial_events=initial_count,
    )


def _event_end(event: tuple) -> int:
    _key, kind, payload = event
    if kind == "meet":
        return payload[4]
    return payload.end


class _StreamBuilder:
    """Emits graph updates for one event into the current batch.

    Tracks which persons/rooms have already appeared so the first event
    of an entity adds the node (with its properties over the new
    interval) and later events only extend it.  Identifier scheme
    matches the batch generator (``p…``/``r…`` nodes, ``v…`` visit
    edges, ``m…``/``m…_rev`` meet edges) with counters in event order.
    """

    def __init__(
        self,
        room_ids: set[int],
        risk: dict[int, str],
        positives: dict[int, int],
    ) -> None:
        self._room_ids = room_ids
        self._risk = risk
        self._positives = positives
        self._persons_seen: set[int] = set()
        #: Room → start of its first visit (the fixed left edge of the
        #: running hull span).
        self._room_first_start: dict[int, int] = {}
        self._visit_count = 0
        self._meet_count = 0

    def emit(self, batch: DeltaBatch, event: tuple) -> None:
        _key, kind, payload = event
        if kind == "meet":
            self._emit_meet(batch, payload)
            return
        visit = payload
        self._emit_presence(batch, visit.person, visit.start, visit.end)
        if kind == "visit":
            self._emit_room_visit(batch, visit)

    def _emit_presence(self, batch: DeltaBatch, person: int, start: int, end: int) -> None:
        node_id = f"p{person}"
        if person not in self._persons_seen:
            self._persons_seen.add(person)
            batch.add_node(node_id, "Person", [(start, end)])
        else:
            batch.add_existence(node_id, start, end)
        batch.set_property(node_id, "name", f"person_{person}", start, end)
        batch.set_property(node_id, "risk", self._risk[person], start, end)
        positive_from = self._positives.get(person)
        if positive_from is not None and positive_from <= end:
            batch.set_property(node_id, "test", "pos", max(start, positive_from), end)

    def _emit_room_visit(self, batch: DeltaBatch, visit: VisitRecord) -> None:
        # Rooms carry the *running hull* span (first entrance to latest
        # exit, gaps covered), matching the one-shot generator's
        # first-to-last-visit span — so a fully replayed stream answers
        # room-existence-sensitive queries identically to
        # generate_contact_tracing_graph on the same trajectories.
        # Events arrive in start order, so the hull's left edge is fixed
        # at the first visit's start and each later visit extends the
        # span to its own end.
        room_id = f"r{visit.location}"
        first_start = self._room_first_start.get(visit.location)
        if first_start is None:
            first_start = self._room_first_start[visit.location] = visit.start
            batch.add_node(room_id, "Room", [(visit.start, visit.end)])
        else:
            batch.add_existence(room_id, first_start, visit.end)
        batch.set_property(room_id, "num", visit.location, first_start, visit.end)
        batch.set_property(
            room_id, "bldg", f"B{visit.location % 7}", first_start, visit.end
        )
        edge_id = f"v{self._visit_count}"
        self._visit_count += 1
        batch.add_edge(
            edge_id, "visits", f"p{visit.person}", room_id,
            [(visit.start, visit.end)],
        )

    def _emit_meet(self, batch: DeltaBatch, contact: tuple) -> None:
        a, b, location, start, end = contact
        loc_name = f"loc_{location}"
        forward_id = f"m{self._meet_count}"
        backward_id = f"m{self._meet_count}_rev"
        self._meet_count += 1
        batch.add_edge(forward_id, "meets", f"p{a}", f"p{b}", [(start, end)])
        batch.set_property(forward_id, "loc", loc_name, start, end)
        batch.add_edge(backward_id, "meets", f"p{b}", f"p{a}", [(start, end)])
        batch.set_property(backward_id, "loc", loc_name, start, end)
