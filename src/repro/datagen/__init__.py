"""Synthetic workload generation.

The paper builds its experimental graphs from a COVID-19 contact-tracing
trajectory data set (Ojagh et al.) expanded to 100,000 individuals.  That
data set is not redistributable, so this package implements the closest
synthetic equivalent (see DESIGN.md, Substitutions):

* :mod:`repro.datagen.trajectory` — a trajectory simulator producing
  room-visit records per person over a configurable number of 5-minute
  windows;
* :mod:`repro.datagen.contact_tracing` — conversion of trajectories into
  an interval-timestamped TPG with ``Person``/``Room`` nodes and
  ``visits``/``meets`` edges, the 18% high-risk assignment and the
  positivity-rate control used in the experiments;
* :mod:`repro.datagen.streaming` — the same workload replayed as a
  stream: an initial prefix graph plus time-ordered
  :class:`~repro.streaming.delta.DeltaBatch` sequences for the
  incremental evaluation harnesses;
* :mod:`repro.datagen.scale` — the scale factors (S1…S6) standing in for
  the paper's G1…G10;
* :mod:`repro.datagen.random_graphs` — small random TPGs and random
  NavL expressions used by the property-based tests.
"""

from repro.datagen.trajectory import TrajectoryConfig, TrajectorySimulator, VisitRecord
from repro.datagen.contact_tracing import ContactTracingConfig, generate_contact_tracing_graph
from repro.datagen.streaming import ContactTracingStream, contact_tracing_stream
from repro.datagen.scale import ScaleFactor, SCALE_FACTORS, scale_factor, default_scale_name
from repro.datagen.random_graphs import random_itpg, random_path_expression

__all__ = [
    "TrajectoryConfig",
    "TrajectorySimulator",
    "VisitRecord",
    "ContactTracingConfig",
    "generate_contact_tracing_graph",
    "ContactTracingStream",
    "contact_tracing_stream",
    "ScaleFactor",
    "SCALE_FACTORS",
    "scale_factor",
    "default_scale_name",
    "random_itpg",
    "random_path_expression",
]
