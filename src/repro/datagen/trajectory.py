"""Synthetic campus-trajectory simulation.

The paper's experimental graphs are derived from the trajectory data set
of Ojagh et al.: individuals moving between locations on a university
campus, with entry and exit times.  This module provides the synthetic
substitute: a :class:`TrajectorySimulator` that produces, for each
person, a sequence of room visits over a day divided into 5-minute
windows.  The post-processing the paper applies is reproduced:

* time is discretized into windows (48 windows of 5 minutes by default);
* only stays of at least half a window (2.5 minutes → one full window
  after discretization) produce a visit;
* a configurable subset of locations is designated as *rooms* (classroom
  nodes); the remaining locations only generate ``meets`` co-location
  contacts.

Room popularity follows a Zipf-like distribution so that a few rooms are
much busier than the rest, which is what produces the super-linear growth
of join results observed in the paper's Figure 2 for Q5/Q9–Q12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class VisitRecord:
    """One stay of a person at a location, in discretized window units."""

    person: int
    location: int
    start: int
    end: int

    def overlaps(self, other: "VisitRecord") -> bool:
        return self.start <= other.end and other.start <= self.end


@dataclass
class TrajectoryConfig:
    """Knobs of the trajectory simulator.

    Attributes
    ----------
    num_persons:
        Number of tracked individuals.
    num_locations:
        Total number of campus locations (410 in the source data set).
    num_rooms:
        Number of locations promoted to ``Room`` nodes (the 100 most
        visited in the paper).
    num_windows:
        Number of 5-minute windows in the temporal domain (48 in the
        paper's graphs).
    visits_per_person:
        Mean number of distinct stays per person over the day.
    mean_visit_windows:
        Mean stay length, in windows.
    zipf_s:
        Skew of the room-popularity distribution (higher → more skew).
    seed:
        Seed of the pseudo-random generator; the simulator is fully
        deterministic given a seed.
    """

    num_persons: int = 100
    num_locations: int = 60
    num_rooms: int = 15
    num_windows: int = 48
    visits_per_person: float = 8.0
    mean_visit_windows: float = 5.0
    zipf_s: float = 0.9
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_rooms > self.num_locations:
            raise ValueError("num_rooms cannot exceed num_locations")
        if self.num_persons <= 0 or self.num_windows <= 1:
            raise ValueError("num_persons must be positive and num_windows at least 2")


@dataclass
class TrajectorySimulator:
    """Deterministic generator of per-person visit records."""

    config: TrajectoryConfig = field(default_factory=TrajectoryConfig)

    def location_weights(self) -> list[float]:
        """Zipf-like popularity weights, one per location."""
        s = self.config.zipf_s
        return [1.0 / (rank + 1) ** s for rank in range(self.config.num_locations)]

    def generate(self) -> list[VisitRecord]:
        """Generate every visit record for the configured population."""
        return list(self.iter_visits())

    def iter_visits(self) -> Iterator[VisitRecord]:
        cfg = self.config
        rng = random.Random(cfg.seed)
        weights = self.location_weights()
        locations = list(range(cfg.num_locations))
        for person in range(cfg.num_persons):
            # Each person is on campus during a contiguous stretch of the day.
            day_span = max(2, int(rng.gauss(cfg.num_windows * 0.6, cfg.num_windows * 0.15)))
            day_span = min(day_span, cfg.num_windows)
            day_start = rng.randint(0, cfg.num_windows - day_span)
            cursor = day_start
            visits = max(1, int(rng.gauss(cfg.visits_per_person, 1.0)))
            for _ in range(visits):
                if cursor >= day_start + day_span - 1:
                    break
                gap = rng.randint(0, 2)
                start = min(cursor + gap, day_start + day_span - 1)
                length = max(1, int(rng.expovariate(1.0 / cfg.mean_visit_windows)))
                end = min(start + length - 1, day_start + day_span - 1, cfg.num_windows - 1)
                if end < start:
                    break
                location = rng.choices(locations, weights=weights, k=1)[0]
                yield VisitRecord(person=person, location=location, start=start, end=end)
                cursor = end + 1


def co_location_contacts(
    visits: list[VisitRecord],
) -> Iterator[tuple[int, int, int, int, int]]:
    """Pairs of persons present at the same location at the same time.

    Yields ``(person_a, person_b, location, start, end)`` with
    ``person_a < person_b`` and ``[start, end]`` the overlap of the two
    stays.  This is how the paper derives ``meets`` edges from the
    non-room locations.
    """
    by_location: dict[int, list[VisitRecord]] = {}
    for visit in visits:
        by_location.setdefault(visit.location, []).append(visit)
    for location, stays in by_location.items():
        stays.sort(key=lambda v: (v.start, v.end))
        for i, left in enumerate(stays):
            for right in stays[i + 1 :]:
                if right.start > left.end:
                    break
                if left.person == right.person:
                    continue
                start = max(left.start, right.start)
                end = min(left.end, right.end)
                a, b = sorted((left.person, right.person))
                yield a, b, location, start, end
