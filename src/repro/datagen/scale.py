"""Scale factors for the experimental graphs.

The paper's graphs G1–G10 range from 1,000 to 100,000 Person nodes and
up to 32 million temporal edges (Table I), produced on a 64 GB cluster
node by a Rust implementation.  A pure-Python reproduction cannot process
graphs of that size within the benchmark time budget, so the harnesses
use the scale factors below (S1–S6) whose *relative* sizes sweep the same
range of growth; the absolute counts are smaller.  EXPERIMENTS.md records
the mapping and the resulting paper-vs-measured comparison.

The environment variable ``REPRO_SCALE`` selects the largest scale used
by the benchmarks (default ``S4`` to keep a full benchmark run in the
order of minutes); set it to ``S6`` for the most faithful sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.datagen.contact_tracing import ContactTracingConfig
from repro.datagen.trajectory import TrajectoryConfig


@dataclass(frozen=True)
class ScaleFactor:
    """One experimental scale: a name plus the generator configuration."""

    name: str
    num_persons: int
    num_locations: int
    num_rooms: int

    def config(self, positivity_rate: float = 0.05, seed: int = 11) -> ContactTracingConfig:
        """Generator configuration for this scale factor."""
        return ContactTracingConfig(
            trajectory=TrajectoryConfig(
                num_persons=self.num_persons,
                num_locations=self.num_locations,
                num_rooms=self.num_rooms,
                num_windows=48,
                seed=seed,
            ),
            positivity_rate=positivity_rate,
            seed=seed,
        )


#: Scale factors standing in for the paper's G1…G10 (see module docstring).
SCALE_FACTORS: dict[str, ScaleFactor] = {
    "S1": ScaleFactor("S1", num_persons=100, num_locations=60, num_rooms=15),
    "S2": ScaleFactor("S2", num_persons=200, num_locations=80, num_rooms=20),
    "S3": ScaleFactor("S3", num_persons=400, num_locations=100, num_rooms=25),
    "S4": ScaleFactor("S4", num_persons=600, num_locations=120, num_rooms=30),
    "S5": ScaleFactor("S5", num_persons=800, num_locations=140, num_rooms=35),
    "S6": ScaleFactor("S6", num_persons=1000, num_locations=160, num_rooms=40),
}


def scale_factor(name: str) -> ScaleFactor:
    """Look up a scale factor by name (``S1`` … ``S6``)."""
    try:
        return SCALE_FACTORS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scale factor {name!r}; available: {', '.join(SCALE_FACTORS)}"
        ) from exc


def default_scale_name() -> str:
    """The largest scale the benchmarks use, controlled by ``REPRO_SCALE``."""
    name = os.environ.get("REPRO_SCALE", "S4")
    if name not in SCALE_FACTORS:
        raise KeyError(
            f"REPRO_SCALE={name!r} is not a known scale factor; "
            f"available: {', '.join(SCALE_FACTORS)}"
        )
    return name


def scales_up_to(name: str) -> list[ScaleFactor]:
    """All scale factors from S1 up to (and including) ``name``."""
    names = list(SCALE_FACTORS)
    index = names.index(name)
    return [SCALE_FACTORS[n] for n in names[: index + 1]]
