"""Temporal binding tables: the result format of MATCH evaluation.

A binding table has one column pair per variable: the object bound to
the variable and the time point at which it is bound (the ``x`` /
``x_time`` columns of Section IV).  Rows are deduplicated and kept in a
canonical sorted order so tables can be compared directly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.temporal.coalesce import coalesce_point_rows
from repro.temporal.interval import Interval

ObjectId = Hashable
Binding = tuple[ObjectId, int]
Row = tuple[Binding, ...]


@dataclass(frozen=True)
class BindingTable:
    """An immutable table of temporal bindings.

    Attributes
    ----------
    variables:
        Column (variable) names in binding order.
    rows:
        Sorted, deduplicated rows; each row has one ``(object, time)``
        pair per variable.
    """

    variables: tuple[str, ...]
    rows: tuple[Row, ...]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def build(variables: Sequence[str], rows: Iterable[Row]) -> "BindingTable":
        """Normalize (dedupe + sort) and wrap a set of rows."""
        unique = {tuple(row) for row in rows}
        ordered = tuple(sorted(unique, key=_row_sort_key))
        return BindingTable(tuple(variables), ordered)

    @staticmethod
    def empty(variables: Sequence[str]) -> "BindingTable":
        return BindingTable(tuple(variables), ())

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def is_empty(self) -> bool:
        return not self.rows

    def to_records(self) -> list[dict[str, ObjectId | int]]:
        """Rows as dictionaries with ``var`` and ``var_time`` keys (Section IV format)."""
        records: list[dict[str, ObjectId | int]] = []
        for row in self.rows:
            record: dict[str, ObjectId | int] = {}
            for variable, (obj, t) in zip(self.variables, row):
                record[variable] = obj
                record[f"{variable}_time"] = t
            records.append(record)
        return records

    def as_set(self) -> frozenset[Row]:
        """Rows as a frozenset, convenient for order-insensitive comparisons."""
        return frozenset(self.rows)

    def column(self, variable: str) -> list[Binding]:
        """All bindings of one variable (with duplicates, in row order)."""
        index = self._column_index(variable)
        return [row[index] for row in self.rows]

    def _column_index(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError as exc:
            raise KeyError(f"unknown variable {variable!r}") from exc

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def project(self, variables: Sequence[str]) -> "BindingTable":
        """Keep only the given variables (duplicates introduced by projection are removed)."""
        indexes = [self._column_index(v) for v in variables]
        rows = (tuple(row[i] for i in indexes) for row in self.rows)
        return BindingTable.build(variables, rows)

    def select(self, predicate) -> "BindingTable":
        """Keep only the rows for which ``predicate(record)`` is true."""
        keep: list[Row] = []
        for row, record in zip(self.rows, self.to_records()):
            if predicate(record):
                keep.append(row)
        return BindingTable.build(self.variables, keep)

    def rename(self, mapping: Mapping[str, str]) -> "BindingTable":
        """Rename variables according to ``mapping`` (missing names are kept)."""
        renamed = tuple(mapping.get(v, v) for v in self.variables)
        return BindingTable(renamed, self.rows)

    def coalesced(self, variable: str) -> list[tuple[tuple[Binding, ...], ObjectId, Interval]]:
        """Coalesce rows over the time of ``variable``.

        Returns triples ``(other bindings, object bound to variable,
        maximal interval of consecutive binding times)`` — the compact
        output representation the paper uses for single-variable results
        (Section VI, Step 3 discussion).
        """
        index = self._column_index(variable)
        keyed: list[tuple[tuple, int]] = []
        for row in self.rows:
            others = tuple(b for i, b in enumerate(row) if i != index)
            obj, t = row[index]
            keyed.append(((others, obj), t))
        coalesced_rows = coalesce_point_rows(keyed)
        return [(others, obj, interval) for (others, obj), interval in coalesced_rows]

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def pretty(self, limit: int | None = 20) -> str:
        """A fixed-width text rendering of the table (``limit`` rows)."""
        headers: list[str] = []
        for variable in self.variables:
            headers.extend([variable, f"{variable}_time"])
        shown = self.rows if limit is None else self.rows[:limit]
        body: list[list[str]] = []
        for row in shown:
            cells: list[str] = []
            for obj, t in row:
                cells.extend([str(obj), str(t)])
            body.append(cells)
        widths = [len(h) for h in headers]
        for cells in body:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for cells in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def _row_sort_key(row: Row) -> tuple:
    return tuple((repr(obj), t) for obj, t in row)
