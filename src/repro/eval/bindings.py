"""Temporal binding tables: the result format of MATCH evaluation.

A binding table has one column pair per variable: the object bound to
the variable and the time point at which it is bound (the ``x`` /
``x_time`` columns of Section IV).  Rows are deduplicated and kept in a
canonical sorted order so tables can be compared directly in tests.

Two implementations share that contract:

* :class:`BindingTable` — rows materialized eagerly as point tuples;
* :class:`IntervalBindingTable` — rows *derived* from coalesced
  ``(bindings, IntervalSet)`` families, the interval-native output of
  the coalescing dataflow engine.  Point expansion happens only on
  demand (iteration, ``rows``, limited pretty-printing expands just the
  requested prefix) and never during query evaluation, which is what
  keeps the Q1/Q2-style full-scan output path interval-native end to
  end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from typing import Hashable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.temporal.coalesce import coalesce_point_rows
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
Binding = tuple[ObjectId, int]
Row = tuple[Binding, ...]
#: One coalesced output family: variable bindings plus shared validity times.
Family = tuple[tuple[tuple[str, ObjectId], ...], IntervalSet]


@dataclass(frozen=True)
class BindingTable:
    """An immutable table of temporal bindings.

    Attributes
    ----------
    variables:
        Column (variable) names in binding order.
    rows:
        Sorted, deduplicated rows; each row has one ``(object, time)``
        pair per variable.
    """

    variables: tuple[str, ...]
    rows: tuple[Row, ...]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def build(variables: Sequence[str], rows: Iterable[Row]) -> "BindingTable":
        """Normalize (dedupe + sort) and wrap a set of rows."""
        unique = {tuple(row) for row in rows}
        ordered = tuple(sorted(unique, key=_row_sort_key))
        return BindingTable(tuple(variables), ordered)

    @staticmethod
    def empty(variables: Sequence[str]) -> "BindingTable":
        return BindingTable(tuple(variables), ())

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def is_empty(self) -> bool:
        return not self.rows

    def to_records(self) -> list[dict[str, ObjectId | int]]:
        """Rows as dictionaries with ``var`` and ``var_time`` keys (Section IV format)."""
        records: list[dict[str, ObjectId | int]] = []
        for row in self.rows:
            record: dict[str, ObjectId | int] = {}
            for variable, (obj, t) in zip(self.variables, row):
                record[variable] = obj
                record[f"{variable}_time"] = t
            records.append(record)
        return records

    def as_set(self) -> frozenset[Row]:
        """Rows as a frozenset, convenient for order-insensitive comparisons."""
        return frozenset(self.rows)

    def column(self, variable: str) -> list[Binding]:
        """All bindings of one variable (with duplicates, in row order)."""
        index = self._column_index(variable)
        return [row[index] for row in self.rows]

    def _column_index(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError as exc:
            raise KeyError(f"unknown variable {variable!r}") from exc

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def project(self, variables: Sequence[str]) -> "BindingTable":
        """Keep only the given variables (duplicates introduced by projection are removed)."""
        indexes = [self._column_index(v) for v in variables]
        rows = (tuple(row[i] for i in indexes) for row in self.rows)
        return BindingTable.build(variables, rows)

    def select(self, predicate) -> "BindingTable":
        """Keep only the rows for which ``predicate(record)`` is true."""
        keep: list[Row] = []
        for row, record in zip(self.rows, self.to_records()):
            if predicate(record):
                keep.append(row)
        return BindingTable.build(self.variables, keep)

    def rename(self, mapping: Mapping[str, str]) -> "BindingTable":
        """Rename variables according to ``mapping`` (missing names are kept)."""
        renamed = tuple(mapping.get(v, v) for v in self.variables)
        return BindingTable(renamed, self.rows)

    def coalesced(self, variable: str) -> list[tuple[tuple[Binding, ...], ObjectId, Interval]]:
        """Coalesce rows over the time of ``variable``.

        Returns triples ``(other bindings, object bound to variable,
        maximal interval of consecutive binding times)`` — the compact
        output representation the paper uses for single-variable results
        (Section VI, Step 3 discussion).
        """
        index = self._column_index(variable)
        keyed: list[tuple[tuple, int]] = []
        for row in self.rows:
            others = tuple(b for i, b in enumerate(row) if i != index)
            obj, t = row[index]
            keyed.append(((others, obj), t))
        coalesced_rows = coalesce_point_rows(keyed)
        return [(others, obj, interval) for (others, obj), interval in coalesced_rows]

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def pretty(self, limit: int | None = 20) -> str:
        """A fixed-width text rendering of the table (``limit`` rows)."""
        shown = self.rows if limit is None else self.rows[:limit]
        return _render_table(self.variables, shown, len(self.rows), limit)

    def __str__(self) -> str:
        return self.pretty()


class IntervalBindingTable:
    """A binding table backed by coalesced per-binding interval families.

    The coalescing dataflow engine's Step 3 produces, for every distinct
    binding tuple, one coalesced :class:`IntervalSet` of matching times
    (:meth:`repro.dataflow.executor.DataflowEngine.match_intervals`).
    This table stores exactly that representation and derives the
    point-based rows lazily: ``len`` and emptiness are answered from the
    interval families, ``pretty(limit)`` expands only the requested
    prefix through a lazy k-way merge, and the full sorted row tuple is
    expanded (then cached) only when actually read — so producing the
    table never costs more than the number of maximal intervals.

    The constructor requires the families to already be keyed by
    *distinct* binding tuples, each with nonempty times — the invariant
    the materializer's family merge guarantees; under it the expanded
    rows are duplicate-free, which is what makes ``len`` a pure interval
    count.  Expansion is cross-checked against the eager tables in the
    differential fuzz suite.
    """

    __slots__ = ("variables", "_families", "_table")

    def __init__(self, variables: Sequence[str], families: Iterable[Family]) -> None:
        self.variables = tuple(variables)
        self._families: tuple[Family, ...] = tuple(
            (tuple(bindings), times) for bindings, times in families
            if not times.is_empty()
        )
        self._table: Optional[BindingTable] = None

    # ------------------------------------------------------------------ #
    # Interval-native accessors (never expand)
    # ------------------------------------------------------------------ #
    @property
    def families(self) -> tuple[Family, ...]:
        """The coalesced ``(bindings, times)`` families backing the table."""
        return self._families

    def num_families(self) -> int:
        """Number of distinct binding tuples (the compact row count)."""
        return len(self._families)

    def num_intervals(self) -> int:
        """Number of stored maximal intervals across all families."""
        return sum(len(times) for _bindings, times in self._families)

    def __len__(self) -> int:
        if not self.variables:
            # A variable-free MATCH yields a single empty row when it
            # holds anywhere (mirrors the eager tables).
            return 1 if self._families else 0
        return sum(times.total_points() for _bindings, times in self._families)

    def is_empty(self) -> bool:
        return not self._families

    def __bool__(self) -> bool:
        return bool(self._families)

    # ------------------------------------------------------------------ #
    # Point-row protocol (expands on demand, cached)
    # ------------------------------------------------------------------ #
    def _expand(self) -> Iterator[Row]:
        for bindings, times in self._families:
            if not bindings:
                yield ()
                continue
            objects = tuple(obj for _name, obj in bindings)
            for t in times.points():
                yield tuple((obj, t) for obj in objects)

    def materialized(self) -> BindingTable:
        """The equivalent eager :class:`BindingTable` (expanded once, cached)."""
        if self._table is None:
            self._table = BindingTable.build(self.variables, self._expand())
        return self._table

    @property
    def rows(self) -> tuple[Row, ...]:
        return self.materialized().rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.materialized().rows)

    def as_set(self) -> frozenset[Row]:
        return self.materialized().as_set()

    def to_records(self) -> list[dict[str, ObjectId | int]]:
        return self.materialized().to_records()

    def column(self, variable: str) -> list[Binding]:
        return self.materialized().column(variable)

    def project(self, variables: Sequence[str]) -> BindingTable:
        return self.materialized().project(variables)

    def select(self, predicate) -> BindingTable:
        return self.materialized().select(predicate)

    def rename(self, mapping: Mapping[str, str]) -> "IntervalBindingTable":
        renamed_vars = tuple(mapping.get(v, v) for v in self.variables)
        renamed = IntervalBindingTable(
            renamed_vars,
            (
                (
                    tuple((mapping.get(name, name), obj) for name, obj in bindings),
                    times,
                )
                for bindings, times in self._families
            ),
        )
        return renamed

    def coalesced(self, variable: str):
        return self.materialized().coalesced(variable)

    # ------------------------------------------------------------------ #
    # Presentation and comparison
    # ------------------------------------------------------------------ #
    def pretty(self, limit: int | None = 20) -> str:
        """Fixed-width rendering; with a ``limit``, only that prefix expands.

        Negative limits keep Python slice semantics by delegating to the
        eager table (they need the full row set anyway).
        """
        if limit is None or limit < 0 or self._table is not None:
            return self.materialized().pretty(limit)
        shown = list(islice(self._sorted_prefix(), limit))
        return _render_table(self.variables, shown, len(self), limit)

    def _sorted_prefix(self) -> Iterator[Row]:
        """Rows in canonical sort order via a lazy merge over the families.

        Within one family the sort key is increasing in ``t`` (the
        object reprs are fixed), so each family yields a sorted stream
        and ``heapq.merge`` interleaves them without expanding any
        family past the requested prefix.
        """

        def stream(family: Family) -> Iterator[tuple[tuple, Row]]:
            bindings, times = family
            if not bindings:
                yield (), ()
                return
            objects = tuple(obj for _name, obj in bindings)
            reprs = tuple(repr(obj) for obj in objects)
            for t in times.points():
                yield (
                    tuple((r, t) for r in reprs),
                    tuple((obj, t) for obj in objects),
                )

        merged = heapq.merge(
            *(stream(family) for family in self._families),
            key=lambda keyed: keyed[0],
        )
        return (row for _key, row in merged)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (BindingTable, IntervalBindingTable)):
            return self.variables == other.variables and self.rows == other.rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.variables, self.rows))

    def __repr__(self) -> str:
        return (
            f"IntervalBindingTable({len(self._families)} families, "
            f"{self.num_intervals()} intervals)"
        )

    def __str__(self) -> str:
        return self.pretty()


def _render_table(
    variables: Sequence[str],
    shown: Sequence[Row],
    total: int,
    limit: int | None,
) -> str:
    """Shared fixed-width renderer behind both tables' ``pretty``."""
    headers: list[str] = []
    for variable in variables:
        headers.extend([variable, f"{variable}_time"])
    body: list[list[str]] = []
    for row in shown:
        cells: list[str] = []
        for obj, t in row:
            cells.extend([str(obj), str(t)])
        body.append(cells)
    widths = [len(h) for h in headers]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if limit is not None and total > limit:
        lines.append(f"... ({total - limit} more rows)")
    return "\n".join(lines)


def expand_match_families(
    families: Iterable[Family], variables: Sequence[str]
) -> frozenset[Row]:
    """Expand coalesced ``(bindings, times)`` families to point rows.

    The single definition of the expansion contract shared by the
    differential-fuzz oracle, the engine tests and the benchmark
    cross-checks: one row per family per covered time point, columns in
    ``variables`` order; a variable-free MATCH expands to the single
    empty row iff any family is nonempty.
    """
    families = list(families)
    if not variables:
        return (
            frozenset([()])
            if any(not times.is_empty() for _bindings, times in families)
            else frozenset()
        )
    rows: set[Row] = set()
    for bindings, times in families:
        lookup = dict(bindings)
        objects = tuple(lookup[v] for v in variables)
        for t in times.points():
            rows.add(tuple((obj, t) for obj in objects))
    return frozenset(rows)


def _row_sort_key(row: Row) -> tuple:
    return tuple((repr(obj), t) for obj, t in row)


# --------------------------------------------------------------------- #
# Compact wire format for coalesced families (process backend)
# --------------------------------------------------------------------- #
#: Wire form of one family: bindings plus ``(start, end)`` endpoint pairs.
PackedFamily = tuple[tuple[tuple[str, ObjectId], ...], tuple[tuple[int, int], ...]]


def pack_interval_set(times: IntervalSet) -> tuple[tuple[int, int], ...]:
    """An :class:`IntervalSet` as plain ``(start, end)`` endpoint pairs.

    The pairs inherit the FC (coalesced, sorted) invariant from the
    source family, so :func:`unpack_interval_set` can rebuild without
    re-coalescing.  This is the wire format worker processes use to
    return interval families: endpoint tuples pickle to a fraction of
    the bytes of the interval objects themselves.
    """
    return tuple((iv.start, iv.end) for iv in times.intervals)


def unpack_interval_set(packed: Iterable[tuple[int, int]]) -> IntervalSet:
    """Rebuild an :class:`IntervalSet` from :func:`pack_interval_set` output."""
    return IntervalSet._from_coalesced(Interval(start, end) for start, end in packed)


def pack_families(families: Iterable[Family]) -> list[PackedFamily]:
    """Coalesced output families in compact picklable form."""
    return [
        (tuple(bindings), pack_interval_set(times)) for bindings, times in families
    ]


def unpack_families(packed: Iterable[PackedFamily]) -> list[Family]:
    """Inverse of :func:`pack_families`."""
    return [
        (tuple(bindings), unpack_interval_set(endpoints))
        for bindings, endpoints in packed
    ]
