"""Bottom-up polynomial-time evaluation over point-based TPGs (Theorem C.1).

The evaluator walks the parse tree of a NavL[PC,NOI] expression and
computes, for every node, the temporal relation it denotes — exactly the
algorithm described in Appendix C.A: leaves (basic tests and axes) are
materialized directly, inner nodes combine the child relations with
union / composition / repetition-by-squaring, and path conditions are
evaluated by projecting the sub-relation onto its starting objects.

This engine is the semantic ground truth of the library: every other
engine is cross-checked against it in the test suite.  Its complexity is
``Õ(|path|² · M²)`` with ``M = |Ω| · (|N| + |E|)``, so it is only meant
for small graphs (unit tests, the running example, hardness gadgets).
"""

from __future__ import annotations

from typing import Hashable, Union as TypingUnion

from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.model.convert import itpg_to_tpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.eval.relation import TemporalRelation

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


class BottomUpEvaluator:
    """Evaluates NavL[PC,NOI] expressions over a single TPG, with memoization.

    The evaluator caches the relation of every sub-expression it has
    seen, so repeated sub-expressions (common once MATCH clauses are
    compiled) are only evaluated once per graph.

    With ``use_intervals=True`` the recursion runs on the coalesced
    diagonal representation
    (:class:`~repro.perf.interval_eval.IntervalBottomUpEvaluator`) and
    only the final relation is expanded to point tuples; the point
    relations produced are identical (cross-checked in the test suite),
    but the intermediate cost scales with maximal intervals instead of
    time points.
    """

    def __init__(self, graph: TemporalGraph, use_intervals: bool = False) -> None:
        source = graph
        if isinstance(graph, IntervalTPG):
            graph = itpg_to_tpg(graph)
        self._graph = graph
        self._cache: dict[PathExpr, TemporalRelation] = {}
        self._identity: TemporalRelation | None = None
        self._interval_evaluator = None
        if use_intervals:
            # Imported lazily: repro.perf builds on repro.eval.relation.
            from repro.perf.interval_eval import IntervalBottomUpEvaluator

            self._interval_evaluator = IntervalBottomUpEvaluator(source)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> TemporalPropertyGraph:
        return self._graph

    @property
    def interval_evaluator(self):
        """The interval-native evaluator, or ``None`` in point mode.

        Exposed so :class:`~repro.eval.engine.ReferenceEngine` can run
        its MATCH composition directly on
        :class:`~repro.perf.interval_relation.IntervalRelation`
        diagonals (via
        :class:`~repro.perf.interval_eval.IntervalMatchEvaluator`)
        instead of expanding each segment relation to point tuples.
        """
        return self._interval_evaluator

    def evaluate(self, path: PathExpr) -> TemporalRelation:
        """The relation ``JpathK_G`` as a :class:`TemporalRelation`."""
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        if self._interval_evaluator is not None:
            relation = self._interval_evaluator.evaluate(path).to_temporal_relation()
        else:
            relation = self._evaluate(path)
        self._cache[path] = relation
        return relation

    def satisfies(self, obj: ObjectId, t: int, condition: Test) -> bool:
        """Whether the temporal object ``(obj, t)`` satisfies ``condition``."""
        graph = self._graph
        if isinstance(condition, NodeTest):
            return graph.is_node(obj)
        if isinstance(condition, EdgeTest):
            return graph.is_edge(obj)
        if isinstance(condition, LabelTest):
            return graph.label(obj) == condition.label
        if isinstance(condition, PropEq):
            value = graph.property_value(obj, condition.prop, t)
            return value is not None and value == condition.value
        if isinstance(condition, TimeLt):
            return t < condition.bound
        if isinstance(condition, ExistsTest):
            return graph.exists(obj, t)
        if isinstance(condition, TrueTest):
            return True
        if isinstance(condition, AndTest):
            return all(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, OrTest):
            return any(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, NotTest):
            return not self.satisfies(obj, t, condition.inner)
        if isinstance(condition, PathTest):
            return (obj, t) in self.evaluate(condition.path).source_project()
        raise TypeError(f"unknown test {condition!r}")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _identity_relation(self) -> TemporalRelation:
        if self._identity is None:
            graph = self._graph
            self._identity = TemporalRelation(
                (o, t, o, t) for o in graph.objects() for t in graph.time_points()
            )
        return self._identity

    def _evaluate(self, path: PathExpr) -> TemporalRelation:
        if isinstance(path, Axis):
            return self._evaluate_axis(path)
        if isinstance(path, TestPath):
            return self._evaluate_test_path(path.condition)
        if isinstance(path, Concat):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.compose(self.evaluate(part))
            return relation
        if isinstance(path, Union):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.union(self.evaluate(part))
            return relation
        if isinstance(path, Repeat):
            body = self.evaluate(path.body)
            identity = self._identity_relation()
            if path.upper is None:
                return body.unbounded_repetition(path.lower, identity)
            return body.bounded_repetition(path.lower, path.upper, identity)
        raise TypeError(f"unknown path expression {path!r}")

    def _evaluate_axis(self, axis: Axis) -> TemporalRelation:
        graph = self._graph
        times = graph.time_points()
        tuples: set[tuple[ObjectId, int, ObjectId, int]] = set()
        if axis.kind == "F":
            for edge in graph.edges():
                src, tgt = graph.endpoints(edge)
                for t in times:
                    tuples.add((src, t, edge, t))
                    tuples.add((edge, t, tgt, t))
        elif axis.kind == "B":
            for edge in graph.edges():
                src, tgt = graph.endpoints(edge)
                for t in times:
                    tuples.add((tgt, t, edge, t))
                    tuples.add((edge, t, src, t))
        elif axis.kind == "N":
            for obj in graph.objects():
                for t in times:
                    if t + 1 in graph.domain:
                        tuples.add((obj, t, obj, t + 1))
        elif axis.kind == "P":
            for obj in graph.objects():
                for t in times:
                    if t - 1 in graph.domain:
                        tuples.add((obj, t, obj, t - 1))
        else:  # pragma: no cover - Axis validates its kind
            raise TypeError(f"unknown axis {axis!r}")
        return TemporalRelation(tuples)

    def _evaluate_test_path(self, condition: Test) -> TemporalRelation:
        graph = self._graph
        tuples = [
            (o, t, o, t)
            for o in graph.objects()
            for t in graph.time_points()
            if self.satisfies(o, t, condition)
        ]
        return TemporalRelation(tuples)


def evaluate_path(graph: TemporalGraph, path: PathExpr) -> frozenset:
    """Evaluate ``path`` over ``graph`` and return the set of ``(o, t, o', t')`` tuples.

    Convenience wrapper around :class:`BottomUpEvaluator` for one-shot
    evaluations; build the evaluator directly when several expressions
    are evaluated over the same graph, so that the memoization cache is
    shared.
    """
    return BottomUpEvaluator(graph).evaluate(path).tuples
