"""The reference evaluation engine: path evaluation and MATCH evaluation.

:class:`ReferenceEngine` wraps a temporal graph (point-based or
interval-based) and offers two operations:

* :meth:`ReferenceEngine.evaluate_path` — the binary relation
  ``JpathK_G`` (Theorem C.1's bottom-up algorithm);
* :meth:`ReferenceEngine.match` — evaluation of a practical MATCH clause
  into a temporal binding table.  MATCH clauses are compiled into
  anchored segments (:func:`repro.lang.translate.compile_match`); the
  engine propagates a frontier of partial bindings through the segments,
  binding each variable to the temporal object reached at the end of its
  segment.

This engine favours clarity and faithfulness to the paper's semantics
over speed; the dataflow engine (:mod:`repro.dataflow`) is the fast
implementation used by the benchmarks and is cross-checked against this
one in the tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Union as TypingUnion

from repro.eval.bindings import BindingTable
from repro.eval.bottom_up import BottomUpEvaluator
from repro.eval.relation import TemporalRelation
from repro.lang.ast import PathExpr
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch, compile_match
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


class ReferenceEngine:
    """Reference (slow but complete) evaluation of TRPQs over one graph."""

    def __init__(self, graph: TemporalGraph, use_intervals: bool = False) -> None:
        self._evaluator = BottomUpEvaluator(graph, use_intervals=use_intervals)

    @property
    def graph(self) -> TemporalPropertyGraph:
        """The point-based view of the wrapped graph."""
        return self._evaluator.graph

    # ------------------------------------------------------------------ #
    # Path evaluation
    # ------------------------------------------------------------------ #
    def evaluate_path(self, path: PathExpr) -> TemporalRelation:
        """The full relation ``JpathK_G``."""
        return self._evaluator.evaluate(path)

    def holds(self, path: PathExpr, source: tuple[ObjectId, int], target: tuple[ObjectId, int]) -> bool:
        """Membership test ``(o, t, o', t') ∈ JpathK_G`` (the Eval problem)."""
        o, t = source
        o2, t2 = target
        return (o, t, o2, t2) in self.evaluate_path(path)

    # ------------------------------------------------------------------ #
    # MATCH evaluation
    # ------------------------------------------------------------------ #
    def match(self, query: TypingUnion[str, MatchQuery, CompiledMatch]) -> BindingTable:
        """Evaluate a MATCH clause and return its temporal binding table."""
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        frontier = self._initial_frontier(compiled)
        for segment in compiled.segments[1:]:
            if not frontier:
                break
            frontier = self._advance(frontier, segment.path, segment.variable)
        rows = [bindings for bindings, _current in frontier]
        return BindingTable.build(compiled.variables, rows)

    def _initial_frontier(self, compiled: CompiledMatch):
        first = compiled.segments[0]
        relation = self.evaluate_path(first.path)
        frontier = []
        seen = set()
        for o, t, o2, t2 in relation:
            current = (o2, t2)
            bindings = ((o2, t2),) if first.variable else ()
            key = (bindings, current)
            if key in seen:
                continue
            seen.add(key)
            frontier.append((bindings, current))
        return frontier

    def _advance(self, frontier, path: PathExpr, variable):
        relation = self.evaluate_path(path)
        index: dict[tuple[ObjectId, int], list[tuple[ObjectId, int]]] = defaultdict(list)
        for o, t, o2, t2 in relation:
            index[(o, t)].append((o2, t2))
        out = []
        seen = set()
        for bindings, current in frontier:
            for target in index.get(current, ()):
                new_bindings = bindings + (target,) if variable else bindings
                key = (new_bindings, target)
                if key in seen:
                    continue
                seen.add(key)
                out.append((new_bindings, target))
        return out
