"""The reference evaluation engine: path evaluation and MATCH evaluation.

:class:`ReferenceEngine` wraps a temporal graph (point-based or
interval-based) and offers three operations:

* :meth:`ReferenceEngine.evaluate_path` — the binary relation
  ``JpathK_G`` (Theorem C.1's bottom-up algorithm);
* :meth:`ReferenceEngine.match` — evaluation of a practical MATCH clause
  into a temporal binding table.  MATCH clauses are compiled into
  anchored segments (:func:`repro.lang.translate.compile_match`); the
  engine propagates a frontier of partial bindings through the segments,
  binding each variable to the temporal object reached at the end of its
  segment.
* :meth:`ReferenceEngine.match_intervals` — the coalesced (interval)
  output of a MATCH clause, mirroring
  :meth:`repro.dataflow.executor.DataflowEngine.match_intervals`: one
  ``(bindings, IntervalSet)`` family per distinct binding tuple,
  defined whenever every variable is bound at a single shared time.

With ``use_intervals=True`` the MATCH frontier itself stays
interval-native: segments advance by composing
:class:`~repro.perf.interval_relation.IntervalRelation` diagonals
(:class:`~repro.perf.interval_eval.IntervalMatchEvaluator`), and point
rows are expanded only from the final frontier.  In point mode the
frontier is the classic ``(bindings, current)`` hash join; both modes
compute identical tables (cross-checked in the differential fuzz suite).

This engine favours clarity and faithfulness to the paper's semantics
over speed; the dataflow engine (:mod:`repro.dataflow`) is the fast
implementation used by the benchmarks and is cross-checked against this
one in the tests.
"""

from __future__ import annotations

from typing import Hashable, Union as TypingUnion

from repro.errors import EvaluationError
from repro.eval.bindings import BindingTable, Family
from repro.eval.bottom_up import BottomUpEvaluator
from repro.eval.relation import TemporalRelation
from repro.lang.ast import PathExpr
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch, compile_match
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


class ReferenceEngine:
    """Reference (slow but complete) evaluation of TRPQs over one graph."""

    def __init__(self, graph: TemporalGraph, use_intervals: bool = False) -> None:
        self._evaluator = BottomUpEvaluator(graph, use_intervals=use_intervals)
        self._match_evaluator = None
        if self._evaluator.interval_evaluator is not None:
            # Imported lazily: repro.perf builds on repro.eval.relation.
            from repro.perf.interval_eval import IntervalMatchEvaluator

            self._match_evaluator = IntervalMatchEvaluator(
                self._evaluator.interval_evaluator
            )

    @property
    def graph(self) -> TemporalPropertyGraph:
        """The point-based view of the wrapped graph."""
        return self._evaluator.graph

    # ------------------------------------------------------------------ #
    # Path evaluation
    # ------------------------------------------------------------------ #
    def evaluate_path(self, path: PathExpr) -> TemporalRelation:
        """The full relation ``JpathK_G``."""
        return self._evaluator.evaluate(path)

    def holds(self, path: PathExpr, source: tuple[ObjectId, int], target: tuple[ObjectId, int]) -> bool:
        """Membership test ``(o, t, o', t') ∈ JpathK_G`` (the Eval problem)."""
        o, t = source
        o2, t2 = target
        return (o, t, o2, t2) in self.evaluate_path(path)

    # ------------------------------------------------------------------ #
    # MATCH evaluation
    # ------------------------------------------------------------------ #
    def match(self, query: TypingUnion[str, MatchQuery, CompiledMatch]) -> BindingTable:
        """Evaluate a MATCH clause and return its temporal binding table."""
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        if self._match_evaluator is not None:
            rows = self._match_evaluator.rows(compiled)
        else:
            rows = [bindings for bindings, _current in self._point_frontier(compiled)]
        return BindingTable.build(compiled.variables, rows)

    def match_intervals(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch]
    ) -> list[Family]:
        """Coalesced (interval) output: one entry per distinct binding tuple.

        Mirrors the dataflow engine's ``match_intervals``: each entry
        pairs the variable bindings with the coalesced family of times
        at which they all hold, and expanding every family over its
        times reproduces :meth:`match` exactly.  Raises
        :class:`~repro.errors.EvaluationError` when some output row
        binds variables at different times — then the output has no
        shared time axis to coalesce on.  (The check here is exact and
        per-row, so this engine accepts some queries — e.g. temporal
        moves that cancel out — that the dataflow engine rejects from
        its static chain shape.)
        """
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        if self._match_evaluator is not None:
            return self._match_evaluator.families(compiled)
        merged: dict[tuple[tuple[str, ObjectId], ...], set[int]] = {}
        for bindings, current in self._point_frontier(compiled):
            times = {t for _obj, t in bindings}
            if len(times) > 1:
                raise EvaluationError(
                    "interval (coalesced) output is only defined when every "
                    "variable is bound at a single shared time"
                )
            t = times.pop() if times else current[1]
            key = tuple(
                (variable, obj)
                for variable, (obj, _t) in zip(compiled.variables, bindings)
            )
            merged.setdefault(key, set()).add(t)
        return [
            (bindings, IntervalSet.from_points(points))
            for bindings, points in merged.items()
        ]

    # ------------------------------------------------------------------ #
    # Point-mode frontier propagation
    # ------------------------------------------------------------------ #
    def _point_frontier(self, compiled: CompiledMatch):
        frontier = self._initial_frontier(compiled)
        for segment in compiled.segments[1:]:
            if not frontier:
                break
            frontier = self._advance(frontier, segment.path, segment.variable)
        return frontier

    def _initial_frontier(self, compiled: CompiledMatch):
        first = compiled.segments[0]
        relation = self.evaluate_path(first.path)
        frontier = []
        seen = set()
        for o, t, o2, t2 in relation:
            current = (o2, t2)
            bindings = ((o2, t2),) if first.variable else ()
            key = (bindings, current)
            if key in seen:
                continue
            seen.add(key)
            frontier.append((bindings, current))
        return frontier

    def _advance(self, frontier, path: PathExpr, variable):
        index = self.evaluate_path(path).index_by_source()
        out = []
        seen = set()
        for bindings, current in frontier:
            for target in index.get(current, ()):
                new_bindings = bindings + (target,) if variable else bindings
                key = (new_bindings, target)
                if key in seen:
                    continue
                seen.add(key)
                out.append((new_bindings, target))
        return out
