"""Temporal relations: sets of ``(o, t, o', t')`` tuples.

The bottom-up algorithm of Theorem C.1 manipulates, for every node of
the parse tree, a table of pairs of temporal objects.  This module wraps
such tables in a small value class with the operations the algorithm
needs: union, intersection, complement (relative to the identity),
composition (the sort-merge join of the paper, implemented as a hash
join), and bounded / unbounded repetition computed by exponentiation by
squaring (Algorithms 1 and 2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator

ObjectId = Hashable
Tuple4 = tuple[ObjectId, int, ObjectId, int]


class TemporalRelation:
    """An immutable set of ``(o, t, o', t')`` tuples over a TPG's temporal objects."""

    __slots__ = ("_tuples",)

    def __init__(self, tuples: Iterable[Tuple4] = ()) -> None:
        self._tuples: frozenset[Tuple4] = frozenset(tuples)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def tuples(self) -> frozenset[Tuple4]:
        return self._tuples

    def __iter__(self) -> Iterator[Tuple4]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item: Tuple4) -> bool:
        return item in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalRelation):
            return NotImplemented
        return self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash(self._tuples)

    def __repr__(self) -> str:
        return f"TemporalRelation({len(self._tuples)} tuples)"

    def is_empty(self) -> bool:
        return not self._tuples

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "TemporalRelation") -> "TemporalRelation":
        if not self._tuples:
            return other
        if not other._tuples:
            return self
        return TemporalRelation(self._tuples | other._tuples)

    def intersect(self, other: "TemporalRelation") -> "TemporalRelation":
        if not self._tuples or not other._tuples:
            return _EMPTY
        return TemporalRelation(self._tuples & other._tuples)

    def difference(self, other: "TemporalRelation") -> "TemporalRelation":
        return TemporalRelation(self._tuples - other._tuples)

    # ------------------------------------------------------------------ #
    # Composition and repetition
    # ------------------------------------------------------------------ #
    def compose(self, other: "TemporalRelation") -> "TemporalRelation":
        """Relational composition: pairs connected through a shared temporal object.

        The paper uses a sort-merge join over tables of at most ``M²``
        tuples; a hash join on the shared ``(o, t)`` attribute has the
        same output and better constants in Python.
        """
        if not self._tuples or not other._tuples:
            return _EMPTY
        index = other.index_by_source()
        out: set[Tuple4] = set()
        for o, t, o2, t2 in self._tuples:
            for o3, t3 in index.get((o2, t2), ()):
                out.add((o, t, o3, t3))
        return TemporalRelation(out)

    def index_by_source(self) -> dict[tuple[ObjectId, int], list[tuple[ObjectId, int]]]:
        """Target temporal objects grouped by source temporal object.

        The hash-join index shared by :meth:`compose` and the reference
        engine's MATCH frontier advance.
        """
        index: dict[tuple[ObjectId, int], list[tuple[ObjectId, int]]] = defaultdict(list)
        for o, t, o2, t2 in self._tuples:
            index[(o, t)].append((o2, t2))
        return index

    def source_project(self) -> set[tuple[ObjectId, int]]:
        """The set of starting temporal objects (used for path conditions)."""
        return {(o, t) for o, t, _o2, _t2 in self._tuples}

    def power(self, exponent: int, identity: "TemporalRelation") -> "TemporalRelation":
        """``self`` composed with itself ``exponent`` times (Algorithm 1).

        ``exponent = 0`` returns ``identity`` (the diagonal over all
        temporal objects), matching ``path⁰`` in the paper's semantics.
        """
        if exponent == 0:
            return identity
        if exponent == 1:
            return self
        half = self.power(exponent // 2, identity)
        squared = half.compose(half)
        if exponent % 2 == 0:
            return squared
        return squared.compose(self)

    def bounded_repetition(
        self, lower: int, upper: int, identity: "TemporalRelation"
    ) -> "TemporalRelation":
        """``⋃_{k=lower}^{upper} self^k`` via Algorithms 1 and 2."""
        if upper < lower:
            raise ValueError(f"upper bound {upper} below lower bound {lower}")
        prefix = self.power(lower, identity)
        if upper == lower:
            return prefix
        return prefix.compose(self._repetition_up_to(upper - lower, identity))

    def _repetition_up_to(self, bound: int, identity: "TemporalRelation") -> "TemporalRelation":
        """``⋃_{k=0}^{bound} self^k`` (Algorithm 2, COMPUTE-INTERVAL-REPETITION)."""
        if bound <= 0:
            return identity
        # (identity ∪ self)^bound computed by squaring covers all powers 0..bound.
        base = identity.union(self)
        result = identity
        power = base
        remaining = bound
        while remaining > 0:
            if remaining & 1:
                result = result.compose(power)
            power = power.compose(power)
            remaining >>= 1
        return result

    def unbounded_repetition(
        self, lower: int, identity: "TemporalRelation"
    ) -> "TemporalRelation":
        """``⋃_{k>=lower} self^k`` via a reflexive-transitive-closure fixpoint.

        The paper bounds the unbounded form by ``M²`` repetitions; the
        fixpoint below converges at least as fast (doubling the covered
        path length each iteration) and produces the same relation.
        """
        closure = identity.union(self)
        while True:
            nxt = closure.compose(closure).union(closure)
            # ``nxt`` always contains ``closure``, so an unchanged size
            # already implies convergence — skip the tuple-set equality.
            if len(nxt) == len(closure):
                break
            closure = nxt
        return self.power(lower, identity).compose(closure)


#: Shared empty relation returned by the early-exit fast paths.
_EMPTY = TemporalRelation()
