"""Tuple-membership checking for full NavL[PC,NOI] over ITPGs (Algorithms 4–5).

``check_full`` decides ``(o1, t1, o2, t2) ∈ JrK_C`` for an arbitrary
expression of the full language, working directly on the interval
representation.  It follows the polynomial-space procedure
``TUPLE_EVALSOLVE`` of Appendix C.D:

* occurrence indicators ``r[n, m]`` are decomposed by halving
  (exponentiation-by-squaring style), so the recursion depth stays
  polynomial in the *representation* of the bounds;
* the unbounded form ``r[n, _]`` is replaced by ``r[n, n + (|Ω|·|N∪E|)²]``;
* concatenations and splits existentially quantify over all temporal
  objects ``(o', t')`` of the graph.

The paper's algorithm trades time for space (it is exponential-time in
the worst case); this implementation adds a memoization table, which does
not change the answer but makes the checker usable on the small graphs
and hardness gadgets exercised by the tests.  Pass ``memoize=False`` to
run the literal polynomial-space procedure.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.model.itpg import IntervalTPG

ObjectId = Hashable
TemporalObject = tuple[ObjectId, int]
Tuple4 = tuple[ObjectId, int, ObjectId, int]


class FullChecker:
    """Membership checker for the full language NavL[PC,NOI] over one ITPG."""

    def __init__(self, graph: IntervalTPG, memoize: bool = True) -> None:
        self._graph = graph
        self._memoize = memoize
        self._memo: dict[tuple[Tuple4, PathExpr], bool] = {}
        self._objects = list(graph.objects())
        self._times = list(graph.time_points())

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(self, path: PathExpr, source: TemporalObject, target: TemporalObject) -> bool:
        o1, t1 = source
        o2, t2 = target
        domain = self._graph.domain
        if t1 not in domain or t2 not in domain:
            return False
        if not (self._graph.has_object(o1) and self._graph.has_object(o2)):
            return False
        return self._check((o1, t1, o2, t2), path)

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def _check(self, key: Tuple4, path: PathExpr) -> bool:
        if not self._memoize:
            return self._compute(key, path)
        memo_key = (key, path)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute(key, path)
        self._memo[memo_key] = result
        return result

    def _compute(self, key: Tuple4, path: PathExpr) -> bool:
        o1, t1, o2, t2 = key
        graph = self._graph
        if isinstance(path, TestPath):
            return (o1, t1) == (o2, t2) and self.satisfies(o1, t1, path.condition)
        if isinstance(path, Axis):
            if path.kind == "N":
                return o1 == o2 and t2 == t1 + 1
            if path.kind == "P":
                return o1 == o2 and t2 == t1 - 1
            if path.kind == "F":
                return t1 == t2 and (
                    (graph.is_edge(o1) and graph.target(o1) == o2)
                    or (graph.is_edge(o2) and graph.source(o2) == o1)
                )
            if path.kind == "B":
                return t1 == t2 and (
                    (graph.is_edge(o1) and graph.source(o1) == o2)
                    or (graph.is_edge(o2) and graph.target(o2) == o1)
                )
        if isinstance(path, Union):
            return any(self._check(key, part) for part in path.parts)
        if isinstance(path, Concat):
            head = path.parts[0]
            tail: PathExpr
            rest = path.parts[1:]
            tail = rest[0] if len(rest) == 1 else Concat(tuple(rest))
            return self._exists_split(key, head, tail)
        if isinstance(path, Repeat):
            return self._check_repeat(key, path)
        raise TypeError(f"unknown path expression {path!r}")

    def _exists_split(self, key: Tuple4, left: PathExpr, right: PathExpr) -> bool:
        o1, t1, o2, t2 = key
        for obj in self._objects:
            for t in self._times:
                if self._check((o1, t1, obj, t), left) and self._check((obj, t, o2, t2), right):
                    return True
        return False

    def _exists_double_split(
        self, key: Tuple4, left: PathExpr, middle: PathExpr, right: PathExpr
    ) -> bool:
        o1, t1, o2, t2 = key
        for obj in self._objects:
            for t in self._times:
                if not self._check((o1, t1, obj, t), left):
                    continue
                for obj2 in self._objects:
                    for t3 in self._times:
                        if self._check((obj, t, obj2, t3), middle) and self._check(
                            (obj2, t3, o2, t2), right
                        ):
                            return True
        return False

    def _check_repeat(self, key: Tuple4, path: Repeat) -> bool:
        o1, t1, o2, t2 = key
        body, n, m = path.body, path.lower, path.upper
        if m is None:
            bound = n + (len(self._times) * len(self._objects)) ** 2
            return self._check(key, Repeat(body, n, bound))
        if n == m:
            if n == 0:
                return (o1, t1) == (o2, t2)
            if n == 1:
                return self._check(key, body)
            half = n // 2
            exact_half = Repeat(body, half, half)
            if n % 2 == 0:
                return self._exists_split(key, exact_half, exact_half)
            return self._exists_double_split(key, exact_half, body, exact_half)
        if n == 0:
            if m == 1:
                return (o1, t1) == (o2, t2) or self._check(key, body)
            half = m // 2
            up_to_half = Repeat(body, 0, half)
            if m % 2 == 0:
                return self._exists_split(key, up_to_half, up_to_half)
            return self._exists_double_split(key, up_to_half, Repeat(body, 0, 1), up_to_half)
        return self._exists_split(key, Repeat(body, n, n), Repeat(body, 0, m - n))

    # ------------------------------------------------------------------ #
    # Tests
    # ------------------------------------------------------------------ #
    def satisfies(self, obj: ObjectId, t: int, condition: Test) -> bool:
        graph = self._graph
        if isinstance(condition, NodeTest):
            return graph.is_node(obj)
        if isinstance(condition, EdgeTest):
            return graph.is_edge(obj)
        if isinstance(condition, LabelTest):
            return graph.label(obj) == condition.label
        if isinstance(condition, PropEq):
            value = graph.property_value(obj, condition.prop, t)
            return value is not None and value == condition.value
        if isinstance(condition, TimeLt):
            return t < condition.bound
        if isinstance(condition, ExistsTest):
            return graph.exists(obj, t)
        if isinstance(condition, TrueTest):
            return True
        if isinstance(condition, AndTest):
            return all(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, OrTest):
            return any(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, NotTest):
            return not self.satisfies(obj, t, condition.inner)
        if isinstance(condition, PathTest):
            for other in self._objects:
                for t2 in self._times:
                    if self._check((obj, t, other, t2), condition.path):
                        return True
            return False
        raise TypeError(f"unknown test {condition!r}")


def check_full(
    graph: IntervalTPG,
    path: PathExpr,
    source: TemporalObject,
    target: TemporalObject,
    memoize: bool = True,
    checker: Optional[FullChecker] = None,
) -> bool:
    """One-shot wrapper around :class:`FullChecker`."""
    if checker is None:
        checker = FullChecker(graph, memoize=memoize)
    return checker.check(path, source, target)
