"""Tuple-membership checking for NavL[ANOI] over ITPGs (Algorithms 6–7).

NavL[ANOI] forbids path conditions and only allows numerical occurrence
indicators directly on axes.  For this fragment, Appendix D gives an
NP procedure whose key observations are:

* ``N[n, m]`` / ``P[n, m]`` reduce to integer arithmetic on the time
  difference (the object never changes);
* ``F[n, m]`` / ``B[n, m]`` reduce to reachability within a bounded
  number of steps in the node–edge incidence graph, at a fixed time;
* unbounded axis indicators ``F[n, _]`` / ``B[n, _]`` are equivalent to
  ``F[n, n + |N| + |E|]`` / ``B[...]`` since the incidence graph has
  ``|N| + |E|`` vertices, and ``N[n, _]`` / ``P[n, _]`` simply drop the
  upper bound of the arithmetic check;
* the nondeterministic guess at a concatenation becomes a search over
  all temporal objects (memoized here to keep small instances fast).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.errors import UnsupportedFragmentError
from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.lang.fragments import has_path_conditions, occurrence_indicators_only_on_axes
from repro.model.itpg import IntervalTPG

ObjectId = Hashable
TemporalObject = tuple[ObjectId, int]
Tuple4 = tuple[ObjectId, int, ObjectId, int]


class ANOIChecker:
    """Membership checker for NavL[ANOI] over one ITPG."""

    def __init__(self, graph: IntervalTPG) -> None:
        self._graph = graph
        self._memo: dict[tuple[Tuple4, PathExpr], bool] = {}
        self._objects = list(graph.objects())
        self._times = list(graph.time_points())

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(self, path: PathExpr, source: TemporalObject, target: TemporalObject) -> bool:
        if has_path_conditions(path):
            raise UnsupportedFragmentError(
                "check_anoi only supports NavL[ANOI]; the expression uses path conditions"
            )
        if not occurrence_indicators_only_on_axes(path):
            raise UnsupportedFragmentError(
                "check_anoi only supports NavL[ANOI]; occurrence indicators must be on axes"
            )
        o1, t1 = source
        o2, t2 = target
        domain = self._graph.domain
        if t1 not in domain or t2 not in domain:
            return False
        if not (self._graph.has_object(o1) and self._graph.has_object(o2)):
            return False
        return self._check((o1, t1, o2, t2), path)

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def _check(self, key: Tuple4, path: PathExpr) -> bool:
        memo_key = (key, path)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute(key, path)
        self._memo[memo_key] = result
        return result

    def _compute(self, key: Tuple4, path: PathExpr) -> bool:
        o1, t1, o2, t2 = key
        graph = self._graph
        if isinstance(path, TestPath):
            return (o1, t1) == (o2, t2) and self.satisfies(o1, t1, path.condition)
        if isinstance(path, Axis):
            return self._check_axis_steps(key, path, 1, 1)
        if isinstance(path, Repeat) and isinstance(path.body, Axis):
            upper = path.upper
            if upper is None and path.body.is_structural:
                upper = path.lower + len(self._objects)
            return self._check_axis_steps(key, path.body, path.lower, upper)
        if isinstance(path, Union):
            return any(self._check(key, part) for part in path.parts)
        if isinstance(path, Concat):
            head = path.parts[0]
            rest = path.parts[1:]
            tail: PathExpr = rest[0] if len(rest) == 1 else Concat(tuple(rest))
            for obj in self._objects:
                for t in self._times:
                    if self._check((o1, t1, obj, t), head) and self._check(
                        (obj, t, o2, t2), tail
                    ):
                        return True
            return False
        raise TypeError(f"unexpected NavL[ANOI] expression {path!r}")

    def _check_axis_steps(
        self, key: Tuple4, axis: Axis, lower: int, upper: int | None
    ) -> bool:
        o1, t1, o2, t2 = key
        if axis.kind == "N":
            delta = t2 - t1
            return o1 == o2 and delta >= lower and (upper is None or delta <= upper)
        if axis.kind == "P":
            delta = t1 - t2
            return o1 == o2 and delta >= lower and (upper is None or delta <= upper)
        # Structural axes: reachability at a fixed time point.
        if t1 != t2:
            return False
        assert upper is not None  # unbounded structural forms were bounded above
        return self._structural_reachable(o1, o2, axis.kind == "F", lower, upper)

    def _structural_reachable(
        self, start: ObjectId, goal: ObjectId, forward: bool, lower: int, upper: int
    ) -> bool:
        """BFS over the node–edge incidence graph, tracking reachable step counts."""
        graph = self._graph
        reached: dict[ObjectId, set[int]] = {start: {0}}
        queue: deque[tuple[ObjectId, int]] = deque([(start, 0)])
        while queue:
            obj, steps = queue.popleft()
            if steps >= upper:
                continue
            for successor in self._successors(obj, forward):
                seen = reached.setdefault(successor, set())
                if steps + 1 in seen:
                    continue
                seen.add(steps + 1)
                queue.append((successor, steps + 1))
        counts = reached.get(goal, set())
        del graph
        return any(lower <= k <= upper for k in counts)

    def _successors(self, obj: ObjectId, forward: bool) -> list[ObjectId]:
        graph = self._graph
        if graph.is_node(obj):
            edges = graph.out_edges(obj) if forward else graph.in_edges(obj)
            return list(edges)
        src, tgt = graph.endpoints(obj)
        return [tgt if forward else src]

    # ------------------------------------------------------------------ #
    # Tests (no path conditions in this fragment)
    # ------------------------------------------------------------------ #
    def satisfies(self, obj: ObjectId, t: int, condition: Test) -> bool:
        graph = self._graph
        if isinstance(condition, NodeTest):
            return graph.is_node(obj)
        if isinstance(condition, EdgeTest):
            return graph.is_edge(obj)
        if isinstance(condition, LabelTest):
            return graph.label(obj) == condition.label
        if isinstance(condition, PropEq):
            value = graph.property_value(obj, condition.prop, t)
            return value is not None and value == condition.value
        if isinstance(condition, TimeLt):
            return t < condition.bound
        if isinstance(condition, ExistsTest):
            return graph.exists(obj, t)
        if isinstance(condition, TrueTest):
            return True
        if isinstance(condition, AndTest):
            return all(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, OrTest):
            return any(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, NotTest):
            return not self.satisfies(obj, t, condition.inner)
        if isinstance(condition, PathTest):  # pragma: no cover - rejected in check()
            raise UnsupportedFragmentError("path conditions are not part of NavL[ANOI]")
        raise TypeError(f"unknown test {condition!r}")


def check_anoi(
    graph: IntervalTPG,
    path: PathExpr,
    source: TemporalObject,
    target: TemporalObject,
) -> bool:
    """One-shot wrapper around :class:`ANOIChecker`."""
    return ANOIChecker(graph).check(path, source, target)
