"""Reference evaluation engines for NavL[PC,NOI].

* :mod:`repro.eval.relation` — temporal relations (sets of
  ``(o, t, o', t')`` tuples) with composition, union and bounded/unbounded
  repetition by squaring (Algorithms 1–2 of the paper).
* :mod:`repro.eval.bottom_up` — the polynomial-time bottom-up evaluation
  over point-based TPGs (Theorem C.1).
* :mod:`repro.eval.bindings` — temporal binding tables, the result format
  of MATCH evaluation (Section IV).
* :mod:`repro.eval.engine` — the :class:`ReferenceEngine` facade:
  ``evaluate_path`` and ``match`` over TPGs or ITPGs.
* :mod:`repro.eval.tuple_pc` / :mod:`repro.eval.tuple_pspace` /
  :mod:`repro.eval.tuple_anoi` — the tuple-membership checkers of
  Appendix C/D (Algorithms 3–7) operating directly on ITPGs.
"""

from repro.eval.bindings import BindingTable
from repro.eval.relation import TemporalRelation
from repro.eval.bottom_up import evaluate_path
from repro.eval.engine import ReferenceEngine
from repro.eval.tuple_pc import check_pc
from repro.eval.tuple_pspace import check_full
from repro.eval.tuple_anoi import check_anoi

__all__ = [
    "BindingTable",
    "TemporalRelation",
    "evaluate_path",
    "ReferenceEngine",
    "check_pc",
    "check_full",
    "check_anoi",
]
