"""Tuple-membership checking for NavL[PC] over ITPGs (Algorithm 3).

``check_pc(C, path, (o1, t1, o2, t2))`` decides whether
``(o1, t1, o2, t2) ∈ JpathK_C`` for an expression *without numerical
occurrence indicators*.  The algorithm follows Appendix C.B:

* results are memoized in a hash table keyed by
  ``(o1, t1, o2, t2, sub-expression)``, which bounds the number of
  distinct recursive computations polynomially;
* in the absence of occurrence indicators a path can move at most
  ``||r||`` time points away from its origin (one ``N``/``P`` per step),
  so the intermediate temporal object of a concatenation is drawn from a
  polynomial-size candidate set.

The checker operates directly on the interval representation: existence
and property lookups use the coalesced interval families, never the
expanded point-based graph.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import UnsupportedFragmentError
from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.lang.fragments import has_occurrence_indicators
from repro.model.itpg import IntervalTPG

ObjectId = Hashable
TemporalObject = tuple[ObjectId, int]
Tuple4 = tuple[ObjectId, int, ObjectId, int]


def temporal_radius(path: PathExpr) -> int:
    """An upper bound on ``|t' - t|`` for any ``(o, t, o', t')`` satisfying ``path``.

    Each temporal axis moves one time point, so the radius is the maximal
    number of ``N``/``P`` axes along any concatenation branch.  Path
    conditions do not move the main position and contribute nothing.
    """
    if isinstance(path, Axis):
        return 1 if path.is_temporal else 0
    if isinstance(path, TestPath):
        return 0
    if isinstance(path, Concat):
        return sum(temporal_radius(part) for part in path.parts)
    if isinstance(path, Union):
        return max(temporal_radius(part) for part in path.parts)
    if isinstance(path, Repeat):  # pragma: no cover - rejected earlier for NavL[PC]
        raise UnsupportedFragmentError("NavL[PC] does not allow occurrence indicators")
    raise TypeError(f"unknown path expression {path!r}")


class PCChecker:
    """Memoized tuple-membership checker for NavL[PC] over one ITPG."""

    def __init__(self, graph: IntervalTPG) -> None:
        self._graph = graph
        self._memo: dict[tuple[Tuple4, PathExpr], bool] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(self, path: PathExpr, source: TemporalObject, target: TemporalObject) -> bool:
        """Decide ``(source, target) ∈ JpathK_C``."""
        if has_occurrence_indicators(path):
            raise UnsupportedFragmentError(
                "check_pc only supports NavL[PC]; the expression uses occurrence indicators"
            )
        o1, t1 = source
        o2, t2 = target
        domain = self._graph.domain
        if t1 not in domain or t2 not in domain:
            return False
        if not (self._graph.has_object(o1) and self._graph.has_object(o2)):
            return False
        return self._check((o1, t1, o2, t2), path)

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def _check(self, key: Tuple4, path: PathExpr) -> bool:
        memo_key = (key, path)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute(key, path)
        self._memo[memo_key] = result
        return result

    def _compute(self, key: Tuple4, path: PathExpr) -> bool:
        o1, t1, o2, t2 = key
        graph = self._graph
        if isinstance(path, Axis):
            if path.kind == "N":
                return o1 == o2 and t2 == t1 + 1
            if path.kind == "P":
                return o1 == o2 and t2 == t1 - 1
            if path.kind == "F":
                return t1 == t2 and (
                    (graph.is_edge(o1) and graph.target(o1) == o2)
                    or (graph.is_edge(o2) and graph.source(o2) == o1)
                )
            if path.kind == "B":
                return t1 == t2 and (
                    (graph.is_edge(o1) and graph.source(o1) == o2)
                    or (graph.is_edge(o2) and graph.target(o2) == o1)
                )
        if isinstance(path, TestPath):
            return (o1, t1) == (o2, t2) and self.satisfies(o1, t1, path.condition)
        if isinstance(path, Union):
            return any(self._check(key, part) for part in path.parts)
        if isinstance(path, Concat):
            head, rest = path.parts[0], path.parts[1:]
            tail: PathExpr
            if len(rest) == 1:
                tail = rest[0]
            else:
                tail = Concat(tuple(rest))
            return self._check_concat(key, head, tail)
        raise TypeError(f"unknown NavL[PC] path expression {path!r}")

    def _check_concat(self, key: Tuple4, head: PathExpr, tail: PathExpr) -> bool:
        o1, t1, o2, t2 = key
        head_radius = temporal_radius(head)
        tail_radius = temporal_radius(tail)
        domain = self._graph.domain
        lo = max(domain.start, min(t1 - head_radius, t2 - tail_radius))
        hi = min(domain.end, max(t1 + head_radius, t2 + tail_radius))
        for obj in self._graph.objects():
            for t in range(lo, hi + 1):
                if abs(t - t1) > head_radius or abs(t - t2) > tail_radius:
                    continue
                if self._check((o1, t1, obj, t), head) and self._check((obj, t, o2, t2), tail):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Tests
    # ------------------------------------------------------------------ #
    def satisfies(self, obj: ObjectId, t: int, condition: Test) -> bool:
        graph = self._graph
        if isinstance(condition, NodeTest):
            return graph.is_node(obj)
        if isinstance(condition, EdgeTest):
            return graph.is_edge(obj)
        if isinstance(condition, LabelTest):
            return graph.label(obj) == condition.label
        if isinstance(condition, PropEq):
            value = graph.property_value(obj, condition.prop, t)
            return value is not None and value == condition.value
        if isinstance(condition, TimeLt):
            return t < condition.bound
        if isinstance(condition, ExistsTest):
            return graph.exists(obj, t)
        if isinstance(condition, TrueTest):
            return True
        if isinstance(condition, AndTest):
            return all(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, OrTest):
            return any(self.satisfies(obj, t, part) for part in condition.parts)
        if isinstance(condition, NotTest):
            return not self.satisfies(obj, t, condition.inner)
        if isinstance(condition, PathTest):
            return self._satisfies_path_condition(obj, t, condition.path)
        raise TypeError(f"unknown test {condition!r}")

    def _satisfies_path_condition(self, obj: ObjectId, t: int, path: PathExpr) -> bool:
        radius = temporal_radius(path)
        domain = self._graph.domain
        lo = max(domain.start, t - radius)
        hi = min(domain.end, t + radius)
        for other in self._graph.objects():
            for t2 in range(lo, hi + 1):
                if self._check((obj, t, other, t2), path):
                    return True
        return False


def check_pc(
    graph: IntervalTPG,
    path: PathExpr,
    source: TemporalObject,
    target: TemporalObject,
) -> bool:
    """One-shot wrapper around :class:`PCChecker`."""
    return PCChecker(graph).check(path, source, target)
