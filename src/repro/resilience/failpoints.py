"""Deterministic fault-injection registry (failpoints).

A *failpoint* is a named site in the runtime where the chaos test suite
can inject a failure: the worker chunk runner, the plan-install path,
WAL appends, the delta-stream reader, the engine's step loop.  Arming is
explicit and test-only; an unarmed site costs one environment-dictionary
lookup per :func:`fire` call.

The registry is **cross-process**: arming writes a spec file into a
directory published through the ``REPRO_FAILPOINT_DIR`` environment
variable, which worker processes inherit regardless of start method
(fork *and* spawn).  Hit accounting is shared the same way — each firing
appends one byte to a per-site ``.hits`` file with ``O_APPEND`` (atomic
on POSIX), and the post-write file offset is the firing's ordinal — so
``times=N`` means "the first N calls across *all* processes fire", even
when a killed worker is replaced by a fresh one that re-reads the same
spec.

Supported kinds:

* ``"raise"`` — raise :class:`~repro.errors.InjectedFault`;
* ``"kill"``  — ``os._exit`` the calling process (a SIGKILL-equivalent
  death the interpreter cannot intercept: no cleanup, no exception);
* ``"sleep"`` — delay ``seconds`` then continue (slow worker / slow
  step);
* any other kind (``"torn"``, ``"malformed"``, …) — *cooperative*: the
  armed spec is returned to the call site, which implements the
  site-specific corruption (e.g. the WAL writes half a record).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import InjectedFault

#: Environment variable naming the directory that holds armed specs.
ENV_VAR = "REPRO_FAILPOINT_DIR"


@dataclass(frozen=True)
class Failpoint:
    """One armed failure spec, as stored in the registry directory."""

    site: str
    kind: str
    #: How many firings trigger the action (0 = every call, forever).
    times: int = 1
    #: Delay for ``kind="sleep"``.
    seconds: float = 0.0
    #: Exit code for ``kind="kill"``.
    exit_code: int = 9
    message: str = "injected failure"

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
            "message": self.message,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Failpoint":
        return Failpoint(
            site=payload["site"],
            kind=payload["kind"],
            times=int(payload.get("times", 1)),
            seconds=float(payload.get("seconds", 0.0)),
            exit_code=int(payload.get("exit_code", 9)),
            message=payload.get("message", "injected failure"),
        )


def _site_filename(site: str) -> str:
    return site.replace("/", "_").replace("\\", "_")


def registry_dir() -> Optional[str]:
    """The active registry directory, or ``None`` when nothing is armed."""
    return os.environ.get(ENV_VAR)


def arm(
    site: str,
    kind: str,
    *,
    times: int = 1,
    seconds: float = 0.0,
    exit_code: int = 9,
    message: str = "injected failure",
    directory: Optional[str] = None,
) -> Failpoint:
    """Arm ``site`` with a failure spec, creating the registry if needed.

    The registry directory is published via :data:`ENV_VAR` so that
    worker processes started *after* arming (including replacement
    workers forked or spawned mid-test) observe the same spec and the
    same shared hit counter.
    """
    spec = Failpoint(
        site=site,
        kind=kind,
        times=times,
        seconds=seconds,
        exit_code=exit_code,
        message=message,
    )
    base = directory or registry_dir()
    if base is None:
        base = tempfile.mkdtemp(prefix="repro-failpoints-")
    os.makedirs(base, exist_ok=True)
    os.environ[ENV_VAR] = base
    path = os.path.join(base, _site_filename(site) + ".json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(spec.to_dict(), handle)
    os.replace(tmp, path)  # atomic publish: readers never see a partial spec
    return spec


def disarm(site: str) -> None:
    """Remove the spec (and hit counter) of ``site``, if armed."""
    base = registry_dir()
    if base is None:
        return
    for suffix in (".json", ".hits"):
        try:
            os.unlink(os.path.join(base, _site_filename(site) + suffix))
        except FileNotFoundError:
            pass


def disarm_all() -> None:
    """Disarm every site and retire the registry directory."""
    base = os.environ.pop(ENV_VAR, None)
    if base is None or not os.path.isdir(base):
        return
    for name in os.listdir(base):
        if name.endswith((".json", ".hits", ".tmp")):
            try:
                os.unlink(os.path.join(base, name))
            except FileNotFoundError:
                pass
    try:
        os.rmdir(base)
    except OSError:
        pass


def hits(site: str) -> int:
    """How many times ``site`` has fired (across all processes)."""
    base = registry_dir()
    if base is None:
        return 0
    try:
        return os.path.getsize(os.path.join(base, _site_filename(site) + ".hits"))
    except OSError:
        return 0


def _load_spec(base: str, site: str) -> Optional[Failpoint]:
    path = os.path.join(base, _site_filename(site) + ".json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return Failpoint.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, KeyError):
        return None


def _record_hit(base: str, site: str) -> int:
    """Append one hit and return this firing's 1-based ordinal.

    ``O_APPEND`` makes the single-byte write atomic, and the file offset
    immediately after an appending write is the end of *our* byte — so
    the ordinal is exact even under concurrent firings from multiple
    worker processes.
    """
    path = os.path.join(base, _site_filename(site) + ".hits")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, b".")
        return os.lseek(fd, 0, os.SEEK_CUR)
    finally:
        os.close(fd)


def fire(site: str) -> Optional[Failpoint]:
    """Evaluate the failpoint at ``site``; no-op unless armed.

    Generic kinds (``raise`` / ``kill`` / ``sleep``) are executed here;
    cooperative kinds are returned to the caller, which implements the
    site-specific behaviour.  Returns ``None`` when the site is unarmed
    or its firing budget is spent.
    """
    base = os.environ.get(ENV_VAR)
    if base is None:
        return None
    spec = _load_spec(base, site)
    if spec is None:
        return None
    ordinal = _record_hit(base, site)
    if spec.times > 0 and ordinal > spec.times:
        return None
    if spec.kind == "sleep":
        time.sleep(spec.seconds)
        return None
    if spec.kind == "raise":
        raise InjectedFault(f"failpoint {site!r}: {spec.message}")
    if spec.kind == "kill":
        # The closest portable stand-in for SIGKILL: immediate process
        # death with no interpreter cleanup and no exception to catch.
        os._exit(spec.exit_code)
    return spec
