"""Streaming-state snapshots and crash recovery.

A snapshot is a self-contained JSON document capturing everything a
:class:`~repro.streaming.engine.StreamingEngine` needs to resume:

* the materialized graph (the :mod:`repro.model.io` JSON format);
* the stream position (last applied batch ``sequence``) and the WAL
  position (last applied WAL record ``seq``);
* the registered queries (name + MATCH text).

Recovery composes the two durability halves::

    session, report = recover("snap.json", "deltas.wal")

loads the snapshot, re-registers its queries (re-deriving the per-seed
contribution caches — they are *not* serialized; they are a pure
function of graph + query, and rebuilding them from the snapshot graph
is exactly the cold-registration path the streaming oracle already
pins), then **idempotently replays the WAL tail**: records at or below
the snapshot's WAL position are skipped, the rest are re-applied in
order.  A torn final WAL record — the signature of a crash mid-append —
is tolerated and reported; corruption before the tail refuses recovery
(:class:`~repro.errors.WALCorruptError`).

Snapshots are written atomically (temp file + ``os.replace``) and
durably (the temp file is fsync'd before the rename, the containing
directory after it), so a crash during a snapshot — process death *or*
power loss — leaves the previous snapshot intact and readable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import WALError
from repro.model.io import from_json_dict, to_json_dict
from repro.resilience.wal import fsync_dir, scan_wal

if TYPE_CHECKING:  # import cycle: streaming.engine reaches back here
    from repro.streaming.engine import StreamingEngine

PathLike = Union[str, Path]

#: Format marker embedded in (and required of) every snapshot document.
SNAPSHOT_FORMAT = "repro-snapshot/1"


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` did, for operators and the CLI verb."""

    snapshot_path: str
    wal_path: Optional[str]
    #: Stream position restored from the snapshot.
    snapshot_sequence: Optional[int]
    snapshot_wal_seq: int
    #: WAL records skipped as already captured by the snapshot.
    skipped: int
    #: WAL records replayed on top of the snapshot.
    replayed: int
    torn_tail: bool
    queries: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "snapshot_path": self.snapshot_path,
            "wal_path": self.wal_path,
            "snapshot_sequence": self.snapshot_sequence,
            "snapshot_wal_seq": self.snapshot_wal_seq,
            "skipped": self.skipped,
            "replayed": self.replayed,
            "torn_tail": self.torn_tail,
            "queries": list(self.queries),
        }

    def summary(self) -> str:
        torn = ", torn final WAL record dropped" if self.torn_tail else ""
        return (
            f"recovered from {self.snapshot_path} "
            f"(wal position {self.snapshot_wal_seq}): "
            f"{self.replayed} WAL record(s) replayed, {self.skipped} already "
            f"in the snapshot{torn}; {len(self.queries)} quer(y/ies) registered"
        )


def write_snapshot(session: StreamingEngine, path: PathLike) -> dict:
    """Atomically write a snapshot of ``session`` to ``path``.

    Returns the document's metadata (everything but the graph payload).
    """
    path = str(path)
    queries = []
    for name in session.query_names():
        text = session.query_text(name)
        if text is None:
            raise WALError(
                f"query {name!r} was registered from a compiled object whose "
                "MATCH text is unknown; snapshots need the text to re-register "
                "it on recovery"
            )
        queries.append({"name": name, "text": text})
    document = {
        "format": SNAPSHOT_FORMAT,
        "sequence": session.last_sequence,
        "wal_seq": session.wal_seq,
        "queries": queries,
        "graph": to_json_dict(session.graph),
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # The rename is atomic but not durable until the directory entry
    # reaches the disk: without this a power cut can resurrect the old
    # snapshot — or leave none at all if it was the first.
    fsync_dir(path)
    return {key: value for key, value in document.items() if key != "graph"}


def load_snapshot(path: PathLike) -> dict:
    """Read and validate a snapshot document (raises on format mismatch)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != SNAPSHOT_FORMAT:
        raise WALError(
            f"{path}: not a streaming snapshot "
            f"(format {document.get('format')!r}, expected {SNAPSHOT_FORMAT!r})"
        )
    return document


def recover(
    snapshot_path: PathLike,
    wal_path: Optional[PathLike] = None,
    *,
    use_index: bool = True,
    use_coalesced: bool = True,
    queries: Optional[dict] = None,
) -> tuple[StreamingEngine, RecoveryReport]:
    """Rebuild a streaming session: load snapshot, replay the WAL tail.

    Replay is idempotent by WAL position: records with ``seq`` at or
    below the snapshot's recorded position are skipped (the snapshot
    already contains their effects), so recovering from any snapshot
    along the stream converges to the same state.  The recovered
    session's WAL position advances past the replayed records, so a
    subsequent :func:`write_snapshot` + WAL reattachment resumes cleanly.

    ``queries`` optionally maps a registered name to the query object to
    re-register under that name, overriding the snapshot's stored MATCH
    text — the escape hatch for sessions whose queries were constructed
    programmatically (a :class:`~repro.lang.parser.MatchQuery` built by
    hand has no parseable text to replay).
    """
    from repro.streaming.engine import StreamingEngine

    snapshot_path = str(snapshot_path)
    document = load_snapshot(snapshot_path)
    graph = from_json_dict(document["graph"])
    session = StreamingEngine(
        graph, use_index=use_index, use_coalesced=use_coalesced
    )
    session.restore_positions(
        last_sequence=document.get("sequence"),
        wal_seq=int(document.get("wal_seq", 0)),
    )
    names = []
    overrides = queries or {}
    for entry in document.get("queries", ()):
        name = entry["name"]
        session.register(overrides.get(name, entry["text"]), name=name)
        names.append(name)
    skipped = replayed = 0
    torn = False
    if wal_path is not None:
        scan = scan_wal(wal_path)
        torn = scan.torn_tail
        base = session.wal_seq
        for record in scan.records:
            if record.seq <= base:
                skipped += 1
                continue
            session.apply(record.batch)
            session.restore_positions(wal_seq=record.seq)
            replayed += 1
    report = RecoveryReport(
        snapshot_path=snapshot_path,
        wal_path=None if wal_path is None else str(wal_path),
        snapshot_sequence=document.get("sequence"),
        snapshot_wal_seq=int(document.get("wal_seq", 0)),
        skipped=skipped,
        replayed=replayed,
        torn_tail=torn,
        queries=tuple(names),
    )
    return session, report
