"""Fault-tolerance runtime: deadlines, retries, durability, failpoints.

The robustness substrate the always-on server layer will stand on; each
pillar is woven through the existing subsystems rather than bolted on:

* :mod:`repro.resilience.deadline` — cooperative per-query deadlines
  (``DataflowEngine(deadline_seconds=…)``), raising a structured
  :class:`~repro.errors.DeadlineExceeded` with partial-progress stats;
* :mod:`repro.resilience.retry` — capped-exponential-backoff retry of
  crash-shaped failures under a per-query budget, then automatic
  backend demotion ``process → thread → serial`` recorded as a
  :class:`DegradationReport` (``DataflowEngine(retry=RetryPolicy(…))``);
* :mod:`repro.resilience.wal` / :mod:`repro.resilience.snapshot` —
  durable streaming state: a checksummed JSONL delta WAL plus atomic
  engine snapshots, with ``recover()`` = snapshot + idempotent WAL-tail
  replay (CLI: ``query --stream --wal/--snapshot-every``, ``repro
  recover``);
* :mod:`repro.resilience.failpoints` — the deterministic, cross-process
  fault-injection registry the chaos suite drives (worker kills, slow
  steps, torn WAL writes, malformed deltas).

See ``RELIABILITY.md`` for the operational semantics.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.failpoints import (
    Failpoint,
    arm,
    disarm,
    disarm_all,
    fire,
    hits,
)
from repro.resilience.retry import (
    AttemptRecord,
    BACKEND_LADDER,
    DegradationReport,
    RETRYABLE_EXCEPTIONS,
    RetryPolicy,
    is_retryable,
)
from repro.resilience.snapshot import (
    RecoveryReport,
    load_snapshot,
    recover,
    write_snapshot,
)
from repro.resilience.wal import (
    DeltaWAL,
    WALRecord,
    WALScan,
    record_frame,
    scan_wal,
    verify_frame,
)

__all__ = [
    "AttemptRecord",
    "BACKEND_LADDER",
    "Deadline",
    "DegradationReport",
    "DeltaWAL",
    "Failpoint",
    "RETRYABLE_EXCEPTIONS",
    "RecoveryReport",
    "RetryPolicy",
    "WALRecord",
    "WALScan",
    "arm",
    "disarm",
    "disarm_all",
    "fire",
    "hits",
    "is_retryable",
    "load_snapshot",
    "record_frame",
    "recover",
    "scan_wal",
    "verify_frame",
    "write_snapshot",
]
