"""Cooperative deadlines for query execution.

A :class:`Deadline` is created per query by the dataflow engine and
threaded through its hot loops.  Cancellation is *cooperative*: the
loops call :meth:`tick` (cheap — a counter increment that consults the
clock every :data:`Deadline.CHECK_EVERY` calls) or :meth:`check`
(consults the clock immediately).  When the budget is exhausted a
structured :class:`~repro.errors.DeadlineExceeded` is raised, carrying
the progress counters recorded on :attr:`Deadline.progress` so callers
see how far the query got.

The process backend cannot tick inside worker processes; there the
parent bounds each future wait by :meth:`remaining` and cancels
undispatched chunks on expiry (see
:meth:`repro.parallel.pool.WorkerPool.run_chunks`).
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget with cooperative cancellation checks."""

    #: :meth:`tick` consults the clock once per this many calls, keeping
    #: the per-row overhead of an armed deadline to a counter increment.
    CHECK_EVERY = 256

    __slots__ = ("seconds", "started", "_expires_at", "_ticks", "progress")

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.seconds = float(seconds)
        self.started = time.monotonic()
        self._expires_at = self.started + self.seconds
        self._ticks = 0
        #: Mutable progress counters included in the exception payload.
        self.progress: dict = {}

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if time.monotonic() >= self._expires_at:
            raise self.exceeded()

    def tick(self) -> None:
        """Amortized check: consults the clock every ``CHECK_EVERY`` calls."""
        self._ticks += 1
        if self._ticks % self.CHECK_EVERY == 0:
            self.check()

    def exceeded(self, **extra) -> DeadlineExceeded:
        """Build the structured cancellation error (with partial progress)."""
        partial = dict(self.progress)
        partial.update(extra)
        elapsed = self.elapsed()
        return DeadlineExceeded(
            f"query exceeded its {self.seconds:g}s deadline after "
            f"{elapsed:.3f}s (partial progress: {partial or 'none recorded'})",
            deadline_seconds=self.seconds,
            elapsed=elapsed,
            partial=partial,
        )
