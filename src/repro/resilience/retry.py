"""Retry with capped exponential backoff, jitter, and backend demotion.

The policy half of the resilience runtime: *what* counts as retryable,
*how long* to wait between attempts, and *where* to go when the budget
is spent.  The dataflow engine consumes this through
:meth:`repro.dataflow.executor.DataflowEngine` (``retry=RetryPolicy(…)``):

* a retryable failure (worker crash, plan-install failure, injected
  fault, OS-level error) is retried on the same backend with capped
  exponential backoff plus deterministic jitter, up to the per-query
  ``retries`` budget;
* once the budget is spent, the engine *demotes* the backend —
  ``process → thread → serial`` — instead of failing the query, and
  records the whole escalation in a :class:`DegradationReport` that
  ``explain()`` exposes;
* non-retryable failures (semantic evaluation errors, deadline
  expiries) propagate immediately — retrying a deterministic error
  only burns the budget, and a deadline is a hard stop by definition.

Jitter is drawn from a policy-owned seeded PRNG so chaos tests replay
identical schedules; production callers leave ``seed=None`` for
process-entropy jitter (the usual thundering-herd defence).
"""

from __future__ import annotations

import random
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import DeadlineExceeded, InjectedFault, WorkerCrashError

#: Failure types worth retrying: crash-shaped, environment-shaped, or
#: injected.  Deliberately excludes plain ``EvaluationError`` — semantic
#: failures are deterministic and would fail every attempt — and
#: ``DeadlineExceeded`` (a hard stop, not a fault).
RETRYABLE_EXCEPTIONS = (
    WorkerCrashError,
    BrokenProcessPool,
    InjectedFault,
    OSError,
)

#: The demotion ladder, most to least parallel.
BACKEND_LADDER = ("process", "thread", "serial")


def is_retryable(error: BaseException) -> bool:
    # ``DeadlineExceeded`` inherits ``TimeoutError`` (an ``OSError``
    # since 3.3) for except-compatibility, but a spent budget is a hard
    # stop — never a fault worth another attempt.
    if isinstance(error, DeadlineExceeded):
        return False
    return isinstance(error, RETRYABLE_EXCEPTIONS)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-query retry budget and backoff schedule."""

    #: Same-backend re-attempts after the first failure (the budget).
    retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Multiplicative jitter: each delay is scaled by a factor drawn
    #: uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.5
    #: Demote the backend (process → thread → serial) once the retry
    #: budget is spent, instead of failing the query.
    degrade: bool = True
    #: Deterministic jitter for tests; ``None`` uses process entropy.
    seed: Optional[int] = None

    def delays(self) -> Iterator[float]:
        """The backoff delay before each re-attempt, jittered and capped."""
        rng = random.Random(self.seed)
        for attempt in range(self.retries):
            delay = min(self.max_delay, self.base_delay * (2**attempt))
            if self.jitter > 0:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "degrade": self.degrade,
        }


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt inside a resilient run."""

    backend: str
    attempt: int
    error_type: str
    error: str
    #: Backoff slept *before* this attempt (0 for the first).
    delay: float = 0.0

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "error": self.error,
            "delay": round(self.delay, 4),
        }


@dataclass(frozen=True)
class DegradationReport:
    """How a query actually got executed, failure by failure.

    ``final_backend`` is where the answer came from; ``degraded`` is
    true when that differs from the configured backend.  An empty
    ``failures`` tuple with ``degraded=False`` means the first attempt
    succeeded (the report is then usually omitted entirely).
    """

    configured_backend: str
    final_backend: str
    failures: tuple[AttemptRecord, ...] = field(default_factory=tuple)

    @property
    def degraded(self) -> bool:
        return self.final_backend != self.configured_backend

    @property
    def retries(self) -> int:
        return len(self.failures)

    def to_dict(self) -> dict:
        return {
            "configured_backend": self.configured_backend,
            "final_backend": self.final_backend,
            "degraded": self.degraded,
            "retries": self.retries,
            "failures": [record.to_dict() for record in self.failures],
        }

    def summary(self) -> str:
        if not self.failures and not self.degraded:
            return f"clean run on {self.final_backend!r}"
        path = " -> ".join(
            dict.fromkeys(
                [record.backend for record in self.failures] + [self.final_backend]
            )
        )
        return (
            f"{len(self.failures)} failure(s), backend path {path}"
            + (" (degraded)" if self.degraded else " (recovered in place)")
        )
