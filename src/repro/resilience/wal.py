"""Append-only delta write-ahead log (WAL): checksummed JSONL batches.

Durability half one of the streaming runtime (snapshots are the other —
:mod:`repro.resilience.snapshot`).  Every applied
:class:`~repro.streaming.delta.DeltaBatch` is appended as one JSON line::

    {"seq": 7, "crc": 2839103841, "batch": {...}}

* ``seq`` is the WAL's own strictly increasing record number — batches
  without a stream ``sequence`` still get a durable position;
* ``crc`` is the CRC-32 of the canonical (sorted-key, separator-free)
  JSON encoding of ``batch``, so bit rot and partial writes are caught
  at replay time.

Recovery semantics match what an interrupted append can actually
produce: a **torn final record** (truncated line or checksum mismatch on
the very last line) is tolerated — the log is exactly the complete
prefix — while a bad record anywhere *before* the tail means the file
cannot be trusted and raises :class:`~repro.errors.WALCorruptError` with
file/line context.  Opening a WAL for appending repairs a torn tail by
truncating it, so new records never concatenate onto half a line.

The ``wal.append`` failpoint (:mod:`repro.resilience.failpoints`,
kind ``"torn"``) simulates a crash mid-append: half the encoded record
is written and fsynced, then :class:`~repro.errors.InjectedFault` is
raised — which is precisely the state a power cut leaves behind.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import InjectedFault, WALCorruptError, WALError
from repro.resilience import failpoints
from repro.streaming.delta import DeltaBatch

PathLike = Union[str, Path]


def fsync_dir(path: PathLike) -> None:
    """fsync the directory containing ``path`` (durability of renames/creates).

    An fsync'd file whose *directory entry* never reached the disk is
    still lost on power cut; POSIX requires syncing the parent directory
    to persist a create, truncate or ``os.replace``.  Platforms without
    directory file descriptors (Windows) silently skip — there the
    rename itself is the strongest primitive available.
    """
    parent = os.path.dirname(os.path.abspath(str(path)))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _encode_batch(payload: dict) -> str:
    """The canonical encoding the CRC is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(encoded: str) -> int:
    return zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF


def record_frame(seq: int, payload: dict) -> dict:
    """The wire/WAL frame of one applied batch: ``{seq, crc, batch}``.

    This is byte-for-byte the envelope :meth:`DeltaWAL.append` writes, so
    WAL shipping (:mod:`repro.server.replication`) and the on-disk log
    share one format — a standby can verify a shipped frame exactly the
    way recovery verifies a stored record.
    """
    return {"seq": int(seq), "crc": _checksum(_encode_batch(payload)), "batch": payload}


def verify_frame(frame: dict) -> DeltaBatch:
    """Decode + checksum one shipped frame; raises :class:`WALCorruptError`.

    The replication-apply twin of :func:`scan_wal`'s per-line check: a
    frame whose CRC does not match its canonical batch encoding was
    corrupted in flight and must not be applied.
    """
    try:
        seq = int(frame["seq"])
        crc = int(frame["crc"])
        payload = frame["batch"]
    except (KeyError, TypeError, ValueError):
        raise WALCorruptError("malformed replication frame (missing seq/crc/batch)")
    if _checksum(_encode_batch(payload)) != crc:
        raise WALCorruptError(
            f"replication frame seq {seq} failed its checksum; refusing to apply"
        )
    try:
        return DeltaBatch.from_json_dict(payload)
    except Exception as error:
        raise WALCorruptError(
            f"replication frame seq {seq} does not decode to a delta batch: {error}"
        )


@dataclass(frozen=True)
class WALRecord:
    """One verified WAL record."""

    seq: int
    batch: DeltaBatch
    #: 1-based line number in the log file.
    line: int


@dataclass(frozen=True)
class WALScan:
    """Outcome of reading a WAL file front to back."""

    path: str
    records: tuple[WALRecord, ...]
    #: True when the final line was torn (interrupted append) and dropped.
    torn_tail: bool
    #: Byte offset of the end of the last complete record (the repair
    #: truncation point when the tail is torn).
    good_bytes: int

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def scan_wal(path: PathLike) -> WALScan:
    """Read and verify ``path``; tolerate a torn tail, reject corruption."""
    path = str(path)
    records: list[WALRecord] = []
    torn = False
    good_bytes = 0
    if not os.path.exists(path):
        return WALScan(path=path, records=(), torn_tail=False, good_bytes=0)
    with open(path, "rb") as handle:
        raw = handle.read()
    offset = 0
    line_number = 0
    last_seq = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        final = newline < 0
        end = len(raw) if final else newline
        line_number += 1
        line = raw[offset:end]
        record = _verify_line(line, path, line_number, last_seq)
        if record is None:
            # Unreadable record: only acceptable as the very last line of
            # the file (an append the crash interrupted).
            if end < len(raw):
                raise WALCorruptError(
                    f"{path}:{line_number}: corrupt WAL record before the tail "
                    "(checksum or framing failure); the log cannot be trusted",
                    path=path,
                    line=line_number,
                )
            torn = True
            break
        records.append(record)
        last_seq = record.seq
        good_bytes = end + (0 if final else 1)
        offset = end + 1
    return WALScan(
        path=path, records=tuple(records), torn_tail=torn, good_bytes=good_bytes
    )


def _verify_line(
    line: bytes, path: str, line_number: int, last_seq: int
) -> Optional[WALRecord]:
    """Decode + verify one line; ``None`` means unreadable (maybe torn)."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        envelope = json.loads(text)
        seq = int(envelope["seq"])
        crc = int(envelope["crc"])
        payload = envelope["batch"]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
    if _checksum(_encode_batch(payload)) != crc:
        return None
    if seq <= last_seq:
        # Well-formed but out of order: this is real corruption (an
        # interrupted append can only lose bytes, not reorder records).
        raise WALCorruptError(
            f"{path}:{line_number}: WAL record sequence {seq} is not greater "
            f"than the previous record's {last_seq}",
            path=path,
            line=line_number,
        )
    try:
        batch = DeltaBatch.from_json_dict(payload)
    except Exception:
        return None
    return WALRecord(seq=seq, batch=batch, line=line_number)


class DeltaWAL:
    """An append-only, checksummed log of applied delta batches.

    ``fsync=True`` (the default) makes every append durable against
    power loss: the record is flushed *and* fsync'd before :meth:`append`
    returns, and the directory entry of a freshly created log is synced
    too.  ``fsync=False`` trades that for throughput — appends still
    survive process death (the OS holds the flushed bytes) but a machine
    crash may lose the unsynced suffix; :meth:`sync` forces the flush
    points by hand (batch-style durability).
    """

    def __init__(self, path: PathLike, *, fsync: bool = True) -> None:
        self._path = str(path)
        self._fsync = bool(fsync)
        scan = scan_wal(self._path)
        existed = os.path.exists(self._path)
        if scan.torn_tail:
            # Repair: drop the half-written tail so appends start clean.
            with open(self._path, "rb+") as handle:
                handle.truncate(scan.good_bytes)
                if self._fsync:
                    os.fsync(handle.fileno())
        self._last_seq = scan.last_seq
        self._records = len(scan.records)
        self._handle = open(self._path, "a", encoding="utf-8")
        if self._fsync and not existed:
            # The log file itself must survive a power cut, not just its
            # records: persist the directory entry of a fresh WAL.
            fsync_dir(self._path)

    @property
    def path(self) -> str:
        return self._path

    @property
    def last_seq(self) -> int:
        """The WAL sequence number of the newest durable record."""
        return self._last_seq

    @property
    def records(self) -> int:
        return self._records

    def append(self, batch: DeltaBatch) -> int:
        """Durably append one applied batch; returns its WAL sequence."""
        if self._handle.closed:
            raise WALError(f"WAL {self._path} is closed")
        seq = self._last_seq + 1
        payload = batch.to_json_dict()
        encoded = _encode_batch(payload)
        line = _encode_batch({"seq": seq, "crc": _checksum(encoded), "batch": payload})
        spec = failpoints.fire("wal.append")
        if spec is not None and spec.kind == "torn":
            # Crash simulation: half the record reaches the disk, then
            # the process "dies".  The file is left exactly as a power
            # cut would leave it.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise InjectedFault(f"failpoint 'wal.append': {spec.message}")
        self._handle.write(line + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._last_seq = seq
        self._records += 1
        return seq

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "DeltaWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DeltaWAL({self._path!r}, records={self._records}, "
            f"last_seq={self._last_seq})"
        )
