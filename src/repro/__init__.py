"""repro — Temporal Regular Path Queries over Temporal Property Graphs.

A reproduction of *"Temporal Regular Path Queries"* (Arenas, Bahamondes,
Aghasadeghi, Stoyanovich — ICDE 2022).  The package provides:

* temporal property graph models (point-based and interval-timestamped),
* the query language NavL[PC,NOI] with the practical MATCH surface syntax,
* reference evaluation engines (polynomial bottom-up over TPGs, the
  appendix tuple-membership checkers over ITPGs),
* a dataflow engine over interval-timestamped relations (the paper's
  Section VI implementation),
* a synthetic contact-tracing workload generator and the benchmark
  harnesses that regenerate the paper's tables and figures.

Quick start::

    from repro import contact_tracing_example, DataflowEngine

    graph = contact_tracing_example()
    engine = DataflowEngine(graph)
    table = engine.match(
        "MATCH (x:Person {risk = 'high'})-"
        "/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON contact_tracing"
    )
    print(table.pretty())
"""

from repro.errors import (
    ReproError,
    InvalidIntervalError,
    GraphIntegrityError,
    UnknownObjectError,
    QuerySyntaxError,
    QueryTranslationError,
    UnsupportedFragmentError,
    EvaluationError,
)
from repro.temporal import Interval, IntervalSet, ValuedInterval, ValuedIntervalSet
from repro.model import (
    TemporalPropertyGraph,
    IntervalTPG,
    GraphBuilder,
    Snapshot,
    snapshot_at,
    snapshot_sequence,
    tpg_to_itpg,
    itpg_to_tpg,
    contact_tracing_example,
    graph_statistics,
)
from repro.lang import parse_path, parse_match, compile_match, classify, Fragment
from repro.eval import ReferenceEngine, BindingTable, evaluate_path
from repro.dataflow import DataflowEngine
from repro.streaming import DeltaBatch, StreamingEngine

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "InvalidIntervalError",
    "GraphIntegrityError",
    "UnknownObjectError",
    "QuerySyntaxError",
    "QueryTranslationError",
    "UnsupportedFragmentError",
    "EvaluationError",
    "Interval",
    "IntervalSet",
    "ValuedInterval",
    "ValuedIntervalSet",
    "TemporalPropertyGraph",
    "IntervalTPG",
    "GraphBuilder",
    "Snapshot",
    "snapshot_at",
    "snapshot_sequence",
    "tpg_to_itpg",
    "itpg_to_tpg",
    "contact_tracing_example",
    "graph_statistics",
    "parse_path",
    "parse_match",
    "compile_match",
    "classify",
    "Fragment",
    "ReferenceEngine",
    "BindingTable",
    "evaluate_path",
    "DataflowEngine",
    "DeltaBatch",
    "StreamingEngine",
    "__version__",
]
