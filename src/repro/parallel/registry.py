"""The consolidated worker-side cache of the process-parallel backend.

Worker processes memoize three things per graph token: the rebuilt (or
store-attached) graph, the :class:`~repro.perf.graph_index.GraphIndex`
compiled from it, and the ready :class:`DataflowEngine` per
configuration.  These used to live in three module-level dicts across
two modules (``pool._WORKER_GRAPHS`` / ``pool._WORKER_ENGINES`` and
``graph_index._WORKER_INDEXES``) with eviction code in ``pool`` reaching
into ``graph_index``'s registry — and the eviction order was
oldest-*installed* (plain dict order), so a burst of one-shot tokens
could evict the hot graph every other query was using.

This module is the single replacement:

* one :class:`OrderedDict` keyed by token, holding each graph together
  with its per-configuration engines (the compiled index rides on the
  graph object itself via :func:`~repro.perf.graph_index.graph_index_for`,
  so dropping the entry releases graph, index and engines atomically);
* every lookup *touches* its entry (``move_to_end``), making eviction
  genuinely least-recently-used;
* one eviction path: :func:`install` trims the oldest entries after
  inserting, and nothing else ever removes entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

#: Worker-side cap on cached graphs: least-recently-used evicted first.
GRAPH_LIMIT = 8


class CacheEntry:
    """Everything a worker keeps warm for one graph token."""

    __slots__ = ("graph", "engines")

    def __init__(self, graph: object) -> None:
        self.graph = graph
        #: (use_index, use_coalesced) -> ready DataflowEngine.
        self.engines: dict[tuple[bool, bool], object] = {}


_CACHE: "OrderedDict[str, CacheEntry]" = OrderedDict()


def cached(token: str) -> Optional[CacheEntry]:
    """The entry for ``token``, touched as most-recently-used, or ``None``."""
    entry = _CACHE.get(token)
    if entry is not None:
        _CACHE.move_to_end(token)
    return entry


def install(token: str, graph: object, limit: int = GRAPH_LIMIT) -> CacheEntry:
    """Cache ``graph`` under ``token``; evict least-recently-used over ``limit``.

    The sole eviction path of the worker-side cache: an evicted entry
    takes its graph, the index attached to that graph, and every engine
    built on it down together.
    """
    entry = _CACHE[token] = CacheEntry(graph)
    _CACHE.move_to_end(token)
    while len(_CACHE) > limit:
        _CACHE.popitem(last=False)
    return entry


def tokens() -> Iterator[str]:
    """Cached tokens in eviction order (least-recently-used first)."""
    return iter(_CACHE)


def clear() -> None:
    """Drop every cached entry (tests and fork-safety hooks)."""
    _CACHE.clear()
