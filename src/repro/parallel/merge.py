"""Parent-side merging of per-chunk partial results.

Workers return either compact interval families (single-temporal-group
outputs — the common case) or point tuples (group-spanning outputs).
Both merges restore exactly the invariant the sequential engine
guarantees:

* **families** — one entry per distinct binding tuple with a coalesced
  validity family.  Bindings reached in several chunks (signature-equal
  frontier rows that landed on different workers) are unioned through
  :meth:`IntervalSet.union_many` — a single coalescing pass, mirroring
  the thread path's final frontier re-merge, except it happens on the
  *output* representation, after the workers have already done Step 3.
* **points** — plain concatenation; :meth:`BindingTable.build`
  deduplicates and canonically sorts downstream, so chunk order can
  never leak into the output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.eval.bindings import Family, PackedFamily, unpack_interval_set
from repro.temporal.intervalset import IntervalSet


def merge_family_chunks(chunks: Iterable[Sequence[PackedFamily]]) -> list[Family]:
    """Merge per-chunk packed families into one canonical family list."""
    gathered: dict[tuple, list] = {}
    for chunk in chunks:
        for bindings, endpoints in chunk:
            gathered.setdefault(tuple(bindings), []).append(endpoints)
    merged: list[Family] = []
    for bindings, packed in gathered.items():
        if len(packed) == 1:
            merged.append((bindings, unpack_interval_set(packed[0])))
        else:
            merged.append(
                (
                    bindings,
                    IntervalSet.union_many(
                        [unpack_interval_set(endpoints) for endpoints in packed]
                    ),
                )
            )
    return merged


def merge_point_chunks(chunks: Iterable[Sequence[tuple]]) -> list[tuple]:
    """Concatenate per-chunk point tuples (dedup happens in the table build)."""
    out: list[tuple] = []
    for chunk in chunks:
        out.extend(chunk)
    return out
