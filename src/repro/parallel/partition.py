"""Cost-aware partitioning of work items across workers.

The seed ``_split`` helper sliced a list into contiguous, equally-*sized*
chunks.  That is the wrong unit for frontier work: the per-seed cost of
running a chain is dominated by the out-degree of the seed object, so a
count-based split routinely hands one worker every hub node and leaves
the rest idle (the straggler effect the paper avoids with Rayon's work
stealing).  :func:`weighted_chunks` balances chunks by total *weight*
instead, using the classic LPT (longest processing time first) greedy:
items are assigned heaviest-first to the currently lightest chunk, which
guarantees a makespan within 4/3 of optimal.

Both parallel backends (thread and process) share this partitioner, so
chunking policy is a single place to reason about; determinism is part
of the contract — equal inputs produce equal chunk assignments, ties
break by original position — because the process backend replays chunks
across interpreter boundaries and the differential tests compare runs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence, TypeVar

Item = TypeVar("Item")


def weighted_chunks(
    items: Sequence[Item],
    parts: int,
    weight: Optional[Callable[[Item], int]] = None,
) -> list[list[Item]]:
    """Split ``items`` into at most ``parts`` chunks of balanced total weight.

    With ``weight=None`` every item counts 1, which degenerates to a
    balanced count split.  Chunks preserve the original relative order
    of their items, no chunk is empty, and the assignment is
    deterministic: items are placed heaviest-first (ties by original
    position) onto the lightest chunk (ties by lowest chunk index).
    """
    if parts <= 1 or len(items) <= 1:
        return [list(items)]
    count = min(parts, len(items))
    if weight is None:
        # Balanced contiguous split: same totals as LPT with unit
        # weights, but keeps neighbouring items together.
        size, extra = divmod(len(items), count)
        chunks: list[list[Item]] = []
        start = 0
        for i in range(count):
            end = start + size + (1 if i < extra else 0)
            chunks.append(list(items[start:end]))
            start = end
        return chunks
    weights = [int(weight(item)) for item in items]
    order = sorted(range(len(items)), key=lambda i: (-weights[i], i))
    # (current load, chunk index) min-heap: pop = lightest chunk,
    # ties resolved by chunk index for determinism.
    heap = [(0, i) for i in range(count)]
    assignment: list[list[int]] = [[] for _ in range(count)]
    for i in order:
        load, chunk = heapq.heappop(heap)
        assignment[chunk].append(i)
        heapq.heappush(heap, (load + max(weights[i], 1), chunk))
    chunks = []
    for indices in assignment:
        if indices:
            indices.sort()
            chunks.append([items[i] for i in indices])
    return chunks


def chunk_weight(
    chunk: Sequence[Item], weight: Optional[Callable[[Item], int]] = None
) -> int:
    """Total weight of one chunk (unit weights when ``weight`` is ``None``)."""
    if weight is None:
        return len(chunk)
    return sum(int(weight(item)) for item in chunk)
