"""Persistent worker-process pools for frontier execution.

CPython's GIL makes the thread backend a measurement device rather than
a speedup (`bench_fig3_parallelism.py`); this module is the path that
actually scales with cores.  A :class:`WorkerPool` wraps a
``ProcessPoolExecutor`` plus the *graph installation protocol*:

* Each task names its graph by the execution plan's stable token.  The
  serialized graph payload is attached only while **no** worker has
  acknowledged the token (the cold-start query); afterwards tasks carry
  the token alone — repeated queries on the same graph pay **zero
  re-transfer**, with late-spawning workers covered by the retry below.
* Store-attached graphs (:func:`repro.store.attach`) skip the payload
  entirely: every task carries the plan's tiny
  :class:`~repro.parallel.plan.StoreRef` and a cold worker mmap-attaches
  the same artifact by path, sharing the parent's page-cache pages
  instead of unpickling a private copy.
* A worker that receives a bare token it has not installed — or a store
  ref it cannot attach (file moved, corrupted, token mismatch after a
  recompile) — raises :class:`PlanNotInstalledError`; the parent retries
  that one chunk with the pickled payload attached.  This makes the
  protocol self-healing without a broadcast barrier, and makes payload
  shipping the universal fallback for store failures.
* Workers rebuild the graph **once per process** and memoize it in the
  consolidated per-token cache (:mod:`repro.parallel.registry`; the
  compiled :class:`~repro.perf.graph_index.GraphIndex` rides on the
  graph object, engines per configuration ride in the entry), then run
  ordinary chunk-level chain execution + interval materialization,
  returning compact packed families or point tuples.

Pools are shared process-wide through :func:`shared_pool`, keyed by
``(start method, worker count)``, so every engine and every query on
the same machine reuses warm workers.  A crashed worker breaks the
whole ``ProcessPoolExecutor``; the registry drops the broken pool and
the failure surfaces as :class:`~repro.errors.EvaluationError`, so the
next query transparently gets a fresh pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.errors import (
    DeadlineExceeded,
    EvaluationError,
    ReproError,
    WorkerCrashError,
)
from repro.parallel import registry
from repro.parallel.plan import ExecutionPlan, PackedSeed, StoreRef, unpack_seeds
from repro.resilience import failpoints


class PlanNotInstalledError(ReproError):
    """A worker received a bare graph token it has no cached graph for."""


class WorkerPool:
    """A persistent process pool speaking the graph installation protocol."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else multiprocessing.get_context()
        )
        self.start_method = context.get_start_method()
        self.workers = workers
        self._executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        #: token -> worker pids that have acknowledged the graph.
        self._warm: dict[str, set[int]] = {}
        self.broken = False

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def run_chunks(
        self,
        plan: ExecutionPlan,
        chain: tuple,
        chunks: Sequence[Sequence[PackedSeed]],
        mode: str,
        variables: tuple[str, ...],
        deadline=None,
    ) -> list[dict]:
        """Execute seed chunks in the pool, returning per-chunk result dicts.

        Results come back in chunk order.  Worker-raised exceptions
        propagate unchanged after all chunks have drained; a crashed
        worker process surfaces as :class:`WorkerCrashError` (an
        :class:`EvaluationError`) and retires the pool from the shared
        registry.  A :class:`~repro.resilience.Deadline` bounds how long
        the parent waits for each future; on expiry the remaining
        futures are cancelled and the deadline's structured
        :class:`~repro.errors.DeadlineExceeded` is raised.
        """
        try:
            return self._dispatch(plan, chain, chunks, mode, variables, deadline)
        except BrokenProcessPool as exc:
            self.broken = True
            _discard_pool(self)
            self._executor.shutdown(wait=False, cancel_futures=True)
            raise WorkerCrashError(
                "a process-backend worker crashed while executing the query "
                f"(pool of {self.workers} '{self.start_method}' workers); "
                "the pool has been retired — re-running the query will start "
                "a fresh one"
            ) from exc

    def _dispatch(
        self,
        plan: ExecutionPlan,
        chain: tuple,
        chunks: Sequence[Sequence[PackedSeed]],
        mode: str,
        variables: tuple[str, ...],
        deadline=None,
    ) -> list[dict]:
        token = plan.token
        # Store-attached graphs always travel as their tiny (path, token)
        # ref — cold workers mmap the artifact themselves.  Otherwise the
        # payload is attached only while *no* worker has acknowledged the
        # graph (the cold-start query); afterwards tasks ship the bare
        # token: a not-yet-warm worker picking one up triggers the
        # self-healing resend below, which converges without ever
        # re-shipping the payload to the whole pool per query.
        store = plan.store
        payload = (
            plan.payload if store is None and self._needs_payload(token) else None
        )
        futures = [
            self._executor.submit(
                _execute_chunk,
                token,
                payload,
                store,
                plan.use_index,
                plan.use_coalesced,
                chain,
                chunk,
                mode,
                variables,
                plan.kernel,
            )
            for chunk in chunks
        ]
        results: list[Optional[dict]] = [None] * len(chunks)
        retries: list[int] = []
        errors: list[Exception] = []
        for i, future in enumerate(futures):
            try:
                results[i] = self._await(future, deadline, futures)
            except PlanNotInstalledError:
                retries.append(i)
            except (BrokenProcessPool, DeadlineExceeded):
                raise
            except Exception as exc:  # worker-raised: drain siblings, then re-raise
                errors.append(exc)
        if errors:
            raise errors[0]
        if retries:
            # Self-healing resend: the pickled payload travels with every
            # retry (even for store plans — a worker that could not
            # attach the artifact must not be asked to try again), so a
            # second PlanNotInstalledError is impossible.  All retries
            # are submitted before any is awaited — the retry round
            # stays parallel.
            retry_futures = [
                self._executor.submit(
                    _execute_chunk,
                    token,
                    plan.payload,
                    None,
                    plan.use_index,
                    plan.use_coalesced,
                    chain,
                    chunks[i],
                    mode,
                    variables,
                    plan.kernel,
                )
                for i in retries
            ]
            for i, future in zip(retries, retry_futures):
                results[i] = self._await(future, deadline, retry_futures)
        warm = self._warm.setdefault(token, set())
        for result in results:
            warm.add(result["pid"])
        return results

    @staticmethod
    def _await(future, deadline, siblings) -> dict:
        """Wait for one future, bounded by the deadline's remaining budget.

        On expiry every sibling future is cancelled (undispatched chunks
        never run; in-flight workers finish their chunk and the result
        is dropped — processes cannot be interrupted cooperatively) and
        the structured deadline error is raised.
        """
        if deadline is None:
            return future.result()
        try:
            return future.result(timeout=deadline.remaining())
        except FutureTimeoutError:
            for sibling in siblings:
                sibling.cancel()
            raise deadline.exceeded(backend="process") from None

    def _needs_payload(self, token: str) -> bool:
        return not self._warm.get(token)

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        _discard_pool(self)


# --------------------------------------------------------------------- #
# Shared pool registry
# --------------------------------------------------------------------- #
_POOLS: dict[tuple[str, int], WorkerPool] = {}


def shared_pool(workers: int, start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide pool for ``(start method, workers)``, created lazily."""
    method = start_method or multiprocessing.get_start_method()
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"unknown multiprocessing start method {method!r}; "
            f"available: {', '.join(multiprocessing.get_all_start_methods())}"
        )
    key = (method, workers)
    pool = _POOLS.get(key)
    if pool is None or pool.broken:
        pool = _POOLS[key] = WorkerPool(workers, method)
    return pool


def _discard_pool(pool: WorkerPool) -> None:
    for key, candidate in list(_POOLS.items()):
        if candidate is pool:
            del _POOLS[key]


def shutdown_pools() -> None:
    """Retire every shared pool (used by tests and the atexit hook)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


#: Public alias for embedding applications (and the resilience docs):
#: call on service shutdown to reap worker processes deterministically
#: instead of leaning on the interpreter's atexit ordering.
shutdown_all = shutdown_pools


atexit.register(shutdown_pools)


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
def _worker_graph(
    token: str, payload: Optional[bytes], store: Optional[StoreRef]
) -> object:
    """Install (or fetch) the worker's graph for ``token``.

    Preference order: the consolidated LRU cache, then a store attach
    (zero-copy, page-cache shared), then the pickled payload.  *Any*
    attach failure — missing or corrupted artifact, or an artifact whose
    token no longer matches the plan (recompiled since dispatch) — is
    reported as :class:`PlanNotInstalledError` so the parent retries the
    chunk with the payload: the store path degrades, never fails.
    """
    import pickle

    entry = registry.cached(token)
    if entry is not None:
        return entry.graph
    if store is not None:
        from repro.errors import StoreError
        from repro.store import attach

        try:
            attachment = attach(store.path)
        except (StoreError, OSError) as exc:
            raise PlanNotInstalledError(
                f"worker {os.getpid()} could not attach the store at "
                f"{store.path!r} for token {token!r}: {exc}"
            ) from exc
        if attachment.token != token:
            attachment.close()
            raise PlanNotInstalledError(
                f"worker {os.getpid()} attached {store.path!r} but its token "
                f"{attachment.token!r} does not match the plan ({token!r}); "
                "the artifact was recompiled since dispatch"
            )
        return registry.install(token, attachment.graph).graph
    if payload is None:
        raise PlanNotInstalledError(
            f"worker {os.getpid()} has no cached graph for token {token!r}"
        )
    return registry.install(token, pickle.loads(payload)).graph


def _worker_engine(
    token: str,
    payload: Optional[bytes],
    store: Optional[StoreRef],
    use_index: bool,
    use_coalesced: bool,
    kernel: str = "interpreted",
):
    """The memoized worker-side engine for one graph + configuration."""
    entry = registry.cached(token)
    engine = (
        entry.engines.get((use_index, use_coalesced, kernel)) if entry else None
    )
    if engine is not None:
        return engine
    # Chaos hook: fault the cold-start install path (kind "raise" models
    # an OOM/deserialization failure; "kill" a crash while rebuilding).
    failpoints.fire("worker.install")
    from repro.dataflow.executor import DataflowEngine
    from repro.perf.graph_index import graph_index_for

    graph = _worker_graph(token, payload, store)
    if use_index:
        # Compile (or adopt the attached) index before the engine asks
        # for it; it rides on the graph object, so eviction of the
        # registry entry releases graph, index and engines together.
        graph_index_for(graph)
    engine = DataflowEngine(
        graph,
        workers=1,
        use_index=use_index,
        use_coalesced=use_coalesced,
        kernel=kernel,
    )
    entry = registry.cached(token)
    if entry is None:  # pragma: no cover - install always precedes this
        entry = registry.install(token, graph)
    entry.engines[(use_index, use_coalesced, kernel)] = engine
    return engine


def _run_chunk(
    token: str,
    payload: Optional[bytes],
    store: Optional[StoreRef],
    use_index: bool,
    use_coalesced: bool,
    chain: tuple,
    packed_seeds: Sequence[PackedSeed],
    mode: str,
    variables: tuple[str, ...],
    kernel: str = "interpreted",
) -> dict:
    """Chunk-level Steps 1–3: run the chain, then materialize in-worker."""
    # Chaos hook: "kill" SIGKILLs this worker mid-chunk (breaking the
    # whole pool, as a real crash would); "sleep" models a straggler.
    failpoints.fire("worker.chunk")
    from repro.dataflow.executor import _ChainStats, legacy_families
    from repro.eval.bindings import pack_families

    engine = _worker_engine(token, payload, store, use_index, use_coalesced, kernel)
    seeds = unpack_seeds(packed_seeds)
    stats = _ChainStats()
    start = time.perf_counter()
    if mode == "families":
        # Columnar kernel over this chunk's rows when configured and the
        # chain shape is covered (None -> interpreted chain walk below;
        # a worker without NumPy self-heals the same way).
        attempt = engine._columnar_rows_attempt(chain, seeds, variables, stats)
        if attempt is not None:
            families, frontier_rows = attempt
            chain_seconds = time.perf_counter() - start
            return {
                "pid": os.getpid(),
                "data": pack_families(families),
                "frontier_rows": frontier_rows,
                "rows_merged": stats.rows_merged,
                "chain_seconds": chain_seconds,
                "total_seconds": time.perf_counter() - start,
            }
    frontier = engine._run_chain_on(seeds, chain, stats)
    chain_seconds = time.perf_counter() - start
    if mode == "families":
        if use_coalesced:
            families = engine._materializer.families(frontier, variables)
        else:
            families = legacy_families(frontier, variables)
        data = pack_families(families)
    elif mode == "points":
        data = engine._materialize_rows(frontier, variables)
    else:
        raise EvaluationError(f"unknown process-backend output mode {mode!r}")
    return {
        "pid": os.getpid(),
        "data": data,
        "frontier_rows": len(frontier),
        "rows_merged": stats.rows_merged,
        "chain_seconds": chain_seconds,
        "total_seconds": time.perf_counter() - start,
    }


#: Fork-visible indirection: tests monkeypatch this to inject worker
#: faults (the submitted ``_execute_chunk`` pickles by name, so a
#: patched module global survives into fork-started children).
_chunk_runner = _run_chunk


def _execute_chunk(*args) -> dict:
    return _chunk_runner(*args)
