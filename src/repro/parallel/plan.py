"""Picklable execution plans for the process-parallel backend.

A worker process cannot share the parent's :class:`IntervalTPG` or its
compiled :class:`~repro.perf.graph_index.GraphIndex`; it has to rebuild
both from bytes.  The expensive part — the graph payload — therefore
ships **once** per ``(graph, worker)`` pair and is cached worker-side by
a stable *token*: an :class:`ExecutionPlan` pairs that token with the
pickled graph (serialized lazily, exactly once per graph, and reused by
every engine and query on it) and the engine configuration the workers
must replicate (``use_index`` / ``use_coalesced``).

Plans are memoized on the graph object itself (the same pattern as
:func:`~repro.perf.graph_index.graph_index_for`), under a ``_repro_``
attribute that :meth:`IntervalTPG.__getstate__` strips — payloads never
nest payloads.

Graphs attached from a persistent compiled-index artifact
(:func:`repro.store.attach`) carry a :class:`StoreRef` instead: a tiny
``(path, token)`` pair the workers use to mmap-attach the *same*
artifact rather than unpickling a private copy — every worker then
shares the parent's page-cache pages.  The ref is bound to the graph
alongside the token and travels on every plan; the pickled payload
remains as the self-healing fallback when a worker cannot attach (file
moved, corrupted, token mismatch after recompile).

The per-query parts of a dispatch (compiled chain, seed chunk) are small
and travel with each task; seeds use the compact ``(object, endpoint
pairs)`` form of :mod:`repro.eval.bindings` rather than pickled
:class:`~repro.dataflow.frontier.Row` objects.
"""

from __future__ import annotations

import pickle
import uuid
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence

from repro.dataflow.frontier import Group, Row
from repro.eval.bindings import pack_interval_set, unpack_interval_set
from repro.model.itpg import IntervalTPG

ObjectId = Hashable
#: Wire form of one seed row: the anchored object plus its validity times.
PackedSeed = tuple[ObjectId, tuple[tuple[int, int], ...]]

_TOKEN_ATTR = "_repro_parallel_token"
_PLANS_ATTR = "_repro_parallel_plans"
_STORE_ATTR = "_repro_store_ref"


@dataclass(frozen=True)
class StoreRef:
    """Where workers can attach a graph's compiled artifact themselves.

    ``token`` is the artifact's compile-time identity (persisted in its
    header metadata); it doubles as the graph's parallel-execution token
    so worker-side caches key attached and shipped graphs uniformly.  A
    ref whose token no longer matches the graph's current token is stale
    (the graph mutated since attach) and is never dispatched.
    """

    path: str
    token: str


def bind_store(graph: IntervalTPG, ref: StoreRef) -> None:
    """Adopt the artifact's identity for ``graph``'s parallel execution.

    Called by :func:`repro.store.attach`: the graph's token becomes the
    artifact token (every attacher of one artifact shares it) and the
    ref rides on subsequent plans so workers attach instead of receiving
    a pickled payload.
    """
    setattr(graph, _TOKEN_ATTR, ref.token)
    setattr(graph, _STORE_ATTR, ref)


def store_ref(graph: IntervalTPG) -> Optional[StoreRef]:
    """The live :class:`StoreRef` of ``graph``, or ``None``.

    A ref left over from before an in-place mutation (token rotated by
    :func:`invalidate_plans`) is treated as absent.
    """
    ref = getattr(graph, _STORE_ATTR, None)
    if ref is not None and ref.token != getattr(graph, _TOKEN_ATTR, None):
        return None
    return ref


class _PayloadCell:
    """One per-graph slot for the serialized payload, shared by all plans."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: bytes | None = None


class ExecutionPlan:
    """What a worker needs to replicate the parent engine for one graph."""

    __slots__ = (
        "token",
        "use_index",
        "use_coalesced",
        "kernel",
        "store",
        "_graph",
        "_cell",
    )

    def __init__(
        self,
        token: str,
        graph: IntervalTPG,
        use_index: bool,
        use_coalesced: bool,
        cell: _PayloadCell,
        store: Optional[StoreRef] = None,
        kernel: str = "interpreted",
    ) -> None:
        self.token = token
        self.use_index = use_index
        self.use_coalesced = use_coalesced
        #: Evaluation kernel the workers should run ("interpreted" or
        #: "columnar").  Workers missing NumPy self-heal to interpreted;
        #: the answer is identical either way.
        self.kernel = kernel
        #: Set for store-attached graphs: workers mmap the artifact at
        #: this ref instead of unpickling ``payload`` (which stays
        #: available as the fallback when attaching fails worker-side).
        self.store = store
        self._graph = graph
        self._cell = cell

    @property
    def payload(self) -> bytes:
        """The pickled graph, serialized on first use and then reused.

        The bytes live in a per-graph cell shared by every plan
        (configuration) on the graph, so the graph is pickled at most
        once no matter how many plans exist or in which order they
        first need the payload.  ``IntervalTPG.__getstate__`` guarantees
        the bytes contain the graph only — no cached index, no nested
        plans.
        """
        if self._cell.value is None:
            self._cell.value = pickle.dumps(
                self._graph, protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._cell.value

    @property
    def payload_bytes(self) -> int:
        """Size of the serialized graph (the plan's one-time shipping cost)."""
        return len(self.payload)


def graph_token(graph: IntervalTPG) -> str:
    """The stable parallel-execution identity of ``graph``.

    Assigned on first use and stored on the graph, so the token's
    lifetime is the graph's lifetime (``id()`` reuse after garbage
    collection can never alias two graphs) and every engine sharing the
    graph shares the token — which is what lets worker-side caches
    answer repeat queries with zero re-transfer.
    """
    token = getattr(graph, _TOKEN_ATTR, None)
    if token is None:
        token = uuid.uuid4().hex
        setattr(graph, _TOKEN_ATTR, token)
    return token


def invalidate_plans(graph: IntervalTPG) -> bool:
    """Drop ``graph``'s execution plans *and* rotate its token.

    Called whenever the graph is mutated in place (the delta commit path
    of :func:`repro.streaming.delta.apply_delta`).  Both halves matter:

    * the memoized plans hold a pickled payload of the *pre-mutation*
      graph, so the next dispatch must re-serialize;
    * worker processes cache rebuilt graphs/engines/indexes **by
      token**, so a surviving token would keep answering from the stale
      worker-side graph even with a fresh payload — rotating the token
      makes the post-delta graph a new identity that ships anew and ages
      the stale entries out of the bounded worker caches.

    Returns ``True`` when there was anything to invalidate.
    """
    had = hasattr(graph, _PLANS_ATTR) or hasattr(graph, _TOKEN_ATTR)
    for attr in (_PLANS_ATTR, _TOKEN_ATTR, _STORE_ATTR):
        try:
            delattr(graph, attr)
        except AttributeError:
            pass
    return had


def plan_for(
    graph: IntervalTPG,
    use_index: bool,
    use_coalesced: bool,
    kernel: str = "interpreted",
) -> ExecutionPlan:
    """The shared :class:`ExecutionPlan` for one graph + engine configuration."""
    plans: dict[tuple[bool, bool, str] | str, object] | None = getattr(
        graph, _PLANS_ATTR, None
    )
    if plans is None:
        plans = {"cell": _PayloadCell()}
        setattr(graph, _PLANS_ATTR, plans)
    key = (use_index, use_coalesced, kernel)
    plan = plans.get(key)
    if plan is None:
        plan = plans[key] = ExecutionPlan(
            graph_token(graph),
            graph,
            use_index,
            use_coalesced,
            plans["cell"],
            store=store_ref(graph),
            kernel=kernel,
        )
    return plan


def pack_seeds(seeds: Iterable[Row]) -> list[PackedSeed]:
    """Initial frontier rows in compact wire form.

    Seeds are always single-group, binding-free rows (the shape
    ``_initial_frontier`` produces), so the object and its validity
    family reconstruct them exactly.
    """
    return [(row.last.current, pack_interval_set(row.last.times)) for row in seeds]


def unpack_seeds(packed: Sequence[PackedSeed]) -> list[Row]:
    """Inverse of :func:`pack_seeds`."""
    return [
        Row((Group((), obj, unpack_interval_set(endpoints)),), ())
        for obj, endpoints in packed
    ]
