"""Process-parallel frontier execution (the paper's Fig.-3 parallelism).

The dataflow engine's thread backend is output-invariant but GIL-bound;
this package supplies the backend that scales with cores:

* :mod:`repro.parallel.partition` — the degree-weighted chunk
  partitioner shared by the thread and process backends;
* :mod:`repro.parallel.plan` — picklable execution plans: a stable
  per-graph token plus the serialized graph payload, shipped to each
  worker at most once;
* :mod:`repro.parallel.pool` — persistent worker-process pools, the
  graph installation protocol, and the worker-side chunk runner;
* :mod:`repro.parallel.merge` — the single parent-side coalescing merge
  of per-chunk partial results.

Select it with ``DataflowEngine(graph, workers=N,
parallel_backend="process")`` or ``repro query … --workers N --backend
process``.
"""

from repro.parallel.partition import chunk_weight, weighted_chunks
from repro.parallel.plan import (
    ExecutionPlan,
    graph_token,
    pack_seeds,
    plan_for,
    unpack_seeds,
)
from repro.parallel.merge import merge_family_chunks, merge_point_chunks
from repro.parallel.pool import (
    PlanNotInstalledError,
    WorkerPool,
    shared_pool,
    shutdown_all,
    shutdown_pools,
)

__all__ = [
    "ExecutionPlan",
    "PlanNotInstalledError",
    "WorkerPool",
    "chunk_weight",
    "graph_token",
    "merge_family_chunks",
    "merge_point_chunks",
    "pack_seeds",
    "plan_for",
    "shared_pool",
    "shutdown_all",
    "shutdown_pools",
    "unpack_seeds",
    "weighted_chunks",
]
