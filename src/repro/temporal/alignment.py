"""Temporal-alignment primitives for interval joins.

The paper's dataflow implementation (Section VI) uses "interval-based
reasoning to identify temporally-aligned matches" — i.e. two interval-
timestamped rows join only on the portion of time during which both are
valid, and the joined row carries the intersection of the two validity
intervals (Dignös et al., *Temporal Alignment*).  These helpers implement
that primitive for pairs, for many-way alignment and as a generic
overlap join over keyed relations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Iterator, Optional, TypeVar

from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

Row = TypeVar("Row")
OtherRow = TypeVar("OtherRow")


def align(left: Interval, right: Interval) -> Optional[Interval]:
    """Intersection of two validity intervals, or ``None`` when disjoint."""
    return left.intersect(right)


def align_many(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Intersection of an arbitrary number of validity intervals."""
    result: Optional[Interval] = None
    for interval in intervals:
        if result is None:
            result = interval
        else:
            result = result.intersect(interval)
        if result is None:
            return None
    return result


def align_sets(left: IntervalSet, right: IntervalSet) -> IntervalSet:
    """Intersection of two coalesced families of validity intervals."""
    return left.intersect(right)


def overlap_join(
    left: Iterable[Row],
    right: Iterable[OtherRow],
    left_key: Callable[[Row], Hashable],
    right_key: Callable[[OtherRow], Hashable],
    left_interval: Callable[[Row], Interval],
    right_interval: Callable[[OtherRow], Interval],
) -> Iterator[tuple[Row, OtherRow, Interval]]:
    """Hash-join two keyed interval relations on key equality + interval overlap.

    Yields ``(left_row, right_row, aligned_interval)`` for every pair of
    rows whose keys are equal and whose validity intervals intersect; the
    yielded interval is the intersection.  The right side is materialized
    into a hash table indexed by key (in-memory hash join, as in the
    paper's implementation); the left side is streamed.
    """
    index: dict[Hashable, list[OtherRow]] = defaultdict(list)
    for row in right:
        index[right_key(row)].append(row)
    for lrow in left:
        for rrow in index.get(left_key(lrow), ()):
            overlap = left_interval(lrow).intersect(right_interval(rrow))
            if overlap is not None:
                yield lrow, rrow, overlap


def interval_product(
    left: Iterable[tuple[Hashable, Interval]],
    right: Iterable[tuple[Hashable, Interval]],
) -> Iterator[tuple[Hashable, Hashable, Interval]]:
    """Cartesian alignment of two small interval relations (used in tests)."""
    right_rows = list(right)
    for lkey, liv in left:
        for rkey, riv in right_rows:
            overlap = liv.intersect(riv)
            if overlap is not None:
                yield lkey, rkey, overlap


def reachable_window(
    start: Interval,
    existence: IntervalSet,
    lo: int,
    hi: Optional[int],
    forward: bool,
    require_contiguous: bool,
    domain: Interval,
) -> list[tuple[Interval, Interval]]:
    """Interval-level reachability for a bounded/unbounded temporal step.

    Given an anchor validity interval ``start`` for some object, the
    object's existence family and a temporal-navigation constraint
    ("move between ``lo`` and ``hi`` steps forward/backward", with ``hi``
    ``None`` meaning unbounded), compute the pairs of
    ``(anchor sub-interval, reachable interval)`` such that every anchor
    point of the sub-interval can reach every point of the associated
    reachable interval — optionally requiring that every *intermediate*
    time point exists for the object (``require_contiguous``), which is
    the semantics of ``(N/∃)[n, _]`` style expressions used by the
    practical language.

    The semantics of ``require_contiguous`` is the practical language's
    ``(N/∃)[n, m]``: every *visited* point (the anchor excluded) must
    exist, so ``delta = 0`` moves are admissible anywhere, ``delta >= 1``
    moves require the points ``t±1 … t±delta`` to lie in one maximal
    existence run — and the anchor itself may sit just outside that run
    (the seed implementation wrongly demanded the anchor exist too; the
    differential fuzzing suite flagged the discrepancy against the
    bottom-up ground truth).

    The union of the returned *reachable* pieces over all pairs is
    exactly the set of points reachable from some anchor point of
    ``start``; per pair, the anchor piece records which anchors
    contribute.  Point-level filtering (Step 3 of the paper's
    evaluation) is still applied afterwards when bindings are
    materialized.
    """
    results: list[tuple[Interval, Interval]] = []
    if require_contiguous:
        if lo == 0:
            # Zero moves visit no point: every anchor reaches itself.
            identity = start.clamp(domain)
            if identity is not None:
                results.append((identity, identity))
        min_moves = max(lo, 1)
        if hi is None or hi >= 1:
            for run in existence:
                # delta >= 1 moves stay inside one run; the anchor may sit
                # inside it or immediately before/after it.
                if forward:
                    anchor = start.intersect(Interval(run.start - 1, run.end - 1))
                    if anchor is None:
                        continue
                    target_lo = anchor.start + min_moves
                    target_hi = (
                        run.end if hi is None else min(run.end, anchor.end + hi)
                    )
                else:
                    anchor = start.intersect(Interval(run.start + 1, run.end + 1))
                    if anchor is None:
                        continue
                    target_hi = anchor.end - min_moves
                    target_lo = (
                        run.start if hi is None else max(run.start, anchor.start - hi)
                    )
                if target_lo > target_hi:
                    continue
                target = Interval(target_lo, target_hi).clamp(domain)
                if target is not None:
                    results.append((anchor, target))
    else:
        # Without the existence requirement the reachable window is a pure
        # shift of the anchor, clamped to the temporal domain.
        if forward:
            target_lo = start.start + lo
            target_hi = domain.end if hi is None else start.end + hi
        else:
            target_hi = start.end - lo
            target_lo = domain.start if hi is None else start.start - hi
        if target_lo <= target_hi:
            window = Interval(target_lo, target_hi).clamp(domain)
            if window is not None:
                results.append((start, window))
    return results


def reachable_sources(
    target: Interval,
    existence: IntervalSet,
    lo: int,
    hi: Optional[int],
    forward: bool,
    require_contiguous: bool,
    domain: Interval,
) -> list[Interval]:
    """The exact inverse of :func:`reachable_window`: anchors reaching ``target``.

    The union of the returned intervals is exactly the set of anchor
    points from which *some* point of ``target`` is reachable under the
    given constraint.  Note that for contiguous navigation the inverse
    is **not** direction-flipped forward reachability: walking from ``t``
    to ``t'`` visits ``t±1 … t'`` — anchor excluded, endpoint included —
    so seen from the target side the visited set *includes* the target
    and *excludes* the source's own position.  Concretely, a source may
    sit one point outside the existence run that carries the walk, and
    the target itself must exist whenever at least one move is taken.
    """
    results: list[Interval] = []
    if require_contiguous:
        if lo == 0:
            # Zero moves: every target point reaches itself.
            identity = target.clamp(domain)
            if identity is not None:
                results.append(identity)
        min_moves = max(lo, 1)
        if hi is None or hi >= 1:
            for run in existence:
                # At least one move: the target is visited, so it must lie
                # inside the run; the source sits inside it or one point
                # beyond its boundary.
                piece = target.intersect(run)
                if piece is None:
                    continue
                if forward:
                    source_lo = (
                        run.start - 1
                        if hi is None
                        else max(run.start - 1, piece.start - hi)
                    )
                    source_hi = piece.end - min_moves
                else:
                    source_lo = piece.start + min_moves
                    source_hi = (
                        run.end + 1
                        if hi is None
                        else min(run.end + 1, piece.end + hi)
                    )
                if source_lo > source_hi:
                    continue
                window = Interval(source_lo, source_hi).clamp(domain)
                if window is not None:
                    results.append(window)
    else:
        # Pure shift, no existence requirement: invert the delta bounds.
        if forward:
            source_hi = target.end - lo
            source_lo = domain.start if hi is None else target.start - hi
        else:
            source_lo = target.start + lo
            source_hi = domain.end if hi is None else target.end + hi
        if source_lo <= source_hi:
            window = Interval(source_lo, source_hi).clamp(domain)
            if window is not None:
                results.append(window)
    return results
