"""Valued intervals and coalesced families of valued intervals (``vFC``).

A valued interval ``(v, [a, b])`` states that a property holds the value
``v`` during every time point of ``[a, b]``.  A family of valued intervals
is *coalesced* (Appendix A) when, ordered by time, consecutive entries are
either separated by a gap or carry different values — i.e. a value change
is the only reason two adjacent intervals may touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional

from repro.errors import InvalidIntervalError
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

Value = Hashable


@dataclass(frozen=True)
class ValuedInterval:
    """A pair ``(value, interval)``: the value held during the interval."""

    value: Value
    interval: Interval

    @property
    def start(self) -> int:
        return self.interval.start

    @property
    def end(self) -> int:
        return self.interval.end

    def __str__(self) -> str:
        return f"({self.value!r}, {self.interval})"


class ValuedIntervalSet:
    """An immutable coalesced family of valued intervals.

    The stored entries are sorted by starting point, pairwise disjoint,
    and adjacent entries always carry different values (the ``vFC``
    invariant).  Overlapping input entries with *conflicting* values raise
    :class:`~repro.errors.InvalidIntervalError`; overlapping entries with
    the same value are merged.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[ValuedInterval | tuple[Value, Interval]] = ()) -> None:
        normalized = [
            e if isinstance(e, ValuedInterval) else ValuedInterval(e[0], e[1])
            for e in entries
        ]
        self._entries: tuple[ValuedInterval, ...] = tuple(_coalesce_valued(normalized))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "ValuedIntervalSet":
        return ValuedIntervalSet(())

    @staticmethod
    def constant(value: Value, start: int, end: int) -> "ValuedIntervalSet":
        """A single value held over ``[start, end]``."""
        return ValuedIntervalSet((ValuedInterval(value, Interval(start, end)),))

    @staticmethod
    def from_points(assignments: Iterable[tuple[int, Value]]) -> "ValuedIntervalSet":
        """Build a coalesced family from ``(time point, value)`` assignments.

        Assigning two different values to the same time point raises
        :class:`InvalidIntervalError`.
        """
        by_time: dict[int, Value] = {}
        for t, v in assignments:
            if t in by_time and by_time[t] != v:
                raise InvalidIntervalError(
                    f"conflicting values {by_time[t]!r} and {v!r} at time {t}"
                )
            by_time[t] = v
        entries: list[ValuedInterval] = []
        run_start: Optional[int] = None
        run_value: Optional[Value] = None
        prev: Optional[int] = None
        for t in sorted(by_time):
            v = by_time[t]
            if run_start is None:
                run_start, run_value, prev = t, v, t
                continue
            if t == prev + 1 and v == run_value:
                prev = t
                continue
            entries.append(ValuedInterval(run_value, Interval(run_start, prev)))
            run_start, run_value, prev = t, v, t
        if run_start is not None:
            entries.append(ValuedInterval(run_value, Interval(run_start, prev)))
        return ValuedIntervalSet(entries)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> tuple[ValuedInterval, ...]:
        return self._entries

    def is_empty(self) -> bool:
        return not self._entries

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ValuedInterval]:
        return iter(self._entries)

    def value_at(self, t: int) -> Optional[Value]:
        """The value held at time point ``t``, or ``None`` if undefined there."""
        lo, hi = 0, len(self._entries) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            entry = self._entries[mid]
            if t < entry.start:
                hi = mid - 1
            elif t > entry.end:
                lo = mid + 1
            else:
                return entry.value
        return None

    def is_defined_at(self, t: int) -> bool:
        return self.value_at(t) is not None

    def support(self) -> IntervalSet:
        """Time points at which the property is defined, as a coalesced family."""
        return IntervalSet(entry.interval for entry in self._entries)

    def when_equals(self, value: Value) -> IntervalSet:
        """Time points at which the property holds exactly ``value``."""
        return IntervalSet(entry.interval for entry in self._entries if entry.value == value)

    def values(self) -> set[Value]:
        """The distinct values ever held."""
        return {entry.value for entry in self._entries}

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def merge(self, other: "ValuedIntervalSet") -> "ValuedIntervalSet":
        """Union of two families; conflicting overlapping values raise an error."""
        return ValuedIntervalSet(self._entries + other._entries)

    def restrict(self, allowed: IntervalSet) -> "ValuedIntervalSet":
        """Keep only the portions of each entry that fall inside ``allowed``."""
        pieces: list[ValuedInterval] = []
        for entry in self._entries:
            for iv in allowed.intersect_interval(entry.interval):
                pieces.append(ValuedInterval(entry.value, iv))
        return ValuedIntervalSet(pieces)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValuedIntervalSet):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(str(e) for e in self._entries)
        return f"ValuedIntervalSet({{{body}}})"


def _coalesce_valued(entries: list[ValuedInterval]) -> list[ValuedInterval]:
    """Coalesce valued intervals; same-value adjacent/overlapping entries merge."""
    if not entries:
        return []
    ordered = sorted(entries, key=lambda e: (e.start, e.end))
    merged: list[ValuedInterval] = [ordered[0]]
    for entry in ordered[1:]:
        last = merged[-1]
        if entry.start <= last.end:
            if entry.value != last.value:
                raise InvalidIntervalError(
                    f"conflicting values {last.value!r} and {entry.value!r} "
                    f"overlap on {last.interval} / {entry.interval}"
                )
            merged[-1] = ValuedInterval(last.value, last.interval.hull(entry.interval))
        elif entry.start == last.end + 1 and entry.value == last.value:
            merged[-1] = ValuedInterval(last.value, last.interval.hull(entry.interval))
        else:
            merged.append(entry)
    return merged
