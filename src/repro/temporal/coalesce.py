"""Coalescing algorithms for intervals, valued intervals and tagged rows.

Point-based temporal semantics requires interval representations to be
*temporally coalesced*: value-equivalent, temporally adjacent intervals
are stored as a single interval, and the property is maintained through
operations (Section III of the paper, citing Böhlen et al.).  The
functions in this module are the shared coalescing primitives used by the
graph model, the dataflow relations and the binding tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Sequence, TypeVar

from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet
from repro.temporal.valued import ValuedInterval, ValuedIntervalSet

Key = TypeVar("Key", bound=Hashable)


def coalesce_intervals(intervals: Iterable[Interval | tuple[int, int]]) -> IntervalSet:
    """Coalesce arbitrary intervals into a family of maximal intervals."""
    return IntervalSet(intervals)


def coalesce_valued_intervals(
    entries: Iterable[ValuedInterval | tuple[Hashable, Interval]],
) -> ValuedIntervalSet:
    """Coalesce valued intervals; same-value adjacent entries are merged."""
    return ValuedIntervalSet(entries)


def coalesce_points(points: Iterable[int]) -> IntervalSet:
    """Coalesce a bag of time points into maximal intervals."""
    return IntervalSet.from_points(points)


def coalesce_rows(
    rows: Iterable[tuple[Key, Interval]],
) -> list[tuple[Key, Interval]]:
    """Coalesce ``(key, interval)`` rows per key.

    This is the relational form of coalescing used for binding tables and
    dataflow relations: rows that agree on every non-temporal attribute
    (the *key*) and whose intervals overlap or are adjacent are merged
    into a single row with the hull interval.  The output is sorted by
    key and interval start, which makes it a canonical form suitable for
    equality comparison in tests.
    """
    by_key: dict[Key, list[Interval]] = defaultdict(list)
    for key, interval in rows:
        by_key[key].append(interval)
    result: list[tuple[Key, Interval]] = []
    for key in sorted(by_key, key=repr):
        for iv in IntervalSet(by_key[key]):
            result.append((key, iv))
    return result


def coalesce_point_rows(rows: Iterable[tuple[Key, int]]) -> list[tuple[Key, Interval]]:
    """Coalesce ``(key, time point)`` rows into ``(key, interval)`` rows."""
    by_key: dict[Key, list[int]] = defaultdict(list)
    for key, t in rows:
        by_key[key].append(t)
    result: list[tuple[Key, Interval]] = []
    for key in sorted(by_key, key=repr):
        for iv in IntervalSet.from_points(by_key[key]):
            result.append((key, iv))
    return result


def expand_rows(rows: Iterable[tuple[Key, Interval]]) -> list[tuple[Key, int]]:
    """Inverse of :func:`coalesce_point_rows`: expand intervals to time points."""
    out: list[tuple[Key, int]] = []
    for key, interval in rows:
        out.extend((key, t) for t in interval.points())
    return out


def is_coalesced(intervals: Sequence[Interval]) -> bool:
    """Check the ``FC`` invariant on an already-sorted sequence of intervals."""
    for left, right in zip(intervals, intervals[1:]):
        if not left.before(right):
            return False
    return True


def is_coalesced_valued(entries: Sequence[ValuedInterval]) -> bool:
    """Check the ``vFC`` invariant on an already-sorted sequence of valued intervals."""
    for left, right in zip(entries, entries[1:]):
        if left.interval.before(right.interval):
            continue
        if left.interval.meets(right.interval) and left.value != right.value:
            continue
        return False
    return True
