"""Temporal substrate: intervals, coalesced interval families and alignment.

This package implements the interval machinery that the paper's
interval-timestamped temporal property graphs (ITPGs) are built on:

* :class:`~repro.temporal.interval.Interval` — closed integer intervals
  ``[a, b]`` with Allen's interval relations (Appendix A of the paper).
* :class:`~repro.temporal.intervalset.IntervalSet` — finite *coalesced*
  families of intervals (the set ``FC`` of the paper).
* :class:`~repro.temporal.valued.ValuedIntervalSet` — finite coalesced
  families of *valued* intervals (the set ``vFC`` of the paper), used to
  time-stamp property values.
* :mod:`~repro.temporal.coalesce` — coalescing algorithms for intervals,
  valued intervals and arbitrary tagged rows.
* :mod:`~repro.temporal.alignment` — temporal-alignment join primitives
  (intersection of validity intervals), the building block of the
  dataflow engine's interval hash-joins.
"""

from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator
from repro.temporal.valued import ValuedInterval, ValuedIntervalSet
from repro.temporal.coalesce import (
    coalesce_intervals,
    coalesce_valued_intervals,
    coalesce_rows,
)
from repro.temporal.alignment import align, align_many, overlap_join

__all__ = [
    "Interval",
    "IntervalSet",
    "IntervalSetAccumulator",
    "ValuedInterval",
    "ValuedIntervalSet",
    "coalesce_intervals",
    "coalesce_valued_intervals",
    "coalesce_rows",
    "align",
    "align_many",
    "overlap_join",
]
