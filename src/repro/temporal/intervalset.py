"""Coalesced families of intervals (the set ``FC`` of the paper's Appendix A).

An :class:`IntervalSet` is a finite family of pairwise disjoint,
non-adjacent intervals kept sorted by their starting point.  This is the
coalesced representation required by the paper for the existence function
``ξ`` of an ITPG: two value-equivalent temporally adjacent intervals are
always stored as a single interval.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import InvalidIntervalError
from repro.temporal.interval import Interval


class IntervalSet:
    """An immutable, coalesced, sorted family of intervals.

    The constructor accepts intervals in any order, possibly overlapping
    or adjacent; they are coalesced on construction so that the stored
    family always satisfies the ``FC`` invariant: for consecutive stored
    intervals ``I_j``, ``I_{j+1}`` it holds that ``I_j`` is *before*
    ``I_{j+1}`` (gap of at least one time point).
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval | tuple[int, int]] = ()) -> None:
        normalized = [
            iv if isinstance(iv, Interval) else Interval(int(iv[0]), int(iv[1]))
            for iv in intervals
        ]
        self._intervals: tuple[Interval, ...] = tuple(_coalesce(normalized))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "IntervalSet":
        """The empty family (``∅ ∈ FC``)."""
        return IntervalSet(())

    @classmethod
    def _from_coalesced(cls, intervals: Iterable[Interval]) -> "IntervalSet":
        """Wrap intervals already known to satisfy the FC invariant."""
        instance = object.__new__(cls)
        instance._intervals = tuple(intervals)
        return instance

    @staticmethod
    def single(start: int, end: int) -> "IntervalSet":
        """Family containing the single interval ``[start, end]``."""
        return IntervalSet((Interval(start, end),))

    @staticmethod
    def point(t: int) -> "IntervalSet":
        """Family containing the singleton interval ``[t, t]``."""
        return IntervalSet((Interval.point(t),))

    @staticmethod
    def from_points(points: Iterable[int]) -> "IntervalSet":
        """Coalesce an arbitrary collection of time points into maximal intervals."""
        pts = sorted(set(points))
        intervals: list[Interval] = []
        run_start: Optional[int] = None
        prev: Optional[int] = None
        for p in pts:
            if run_start is None:
                run_start = prev = p
                continue
            if p == prev + 1:
                prev = p
                continue
            intervals.append(Interval(run_start, prev))
            run_start = prev = p
        if run_start is not None:
            intervals.append(Interval(run_start, prev))
        return IntervalSet(intervals)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The stored maximal intervals, sorted by starting point."""
        return self._intervals

    def is_empty(self) -> bool:
        return not self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __len__(self) -> int:
        """Number of maximal intervals (not the number of time points)."""
        return len(self._intervals)

    def total_points(self) -> int:
        """Total number of time points covered by the family."""
        return sum(len(iv) for iv in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __contains__(self, t: int) -> bool:
        return self.contains_point(t)

    def contains_point(self, t: int) -> bool:
        """True if the time point ``t`` is covered by the family (binary search)."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if t < iv.start:
                hi = mid - 1
            elif t > iv.end:
                lo = mid + 1
            else:
                return True
        return False

    def interval_containing(self, t: int) -> Optional[Interval]:
        """The maximal interval containing ``t`` or ``None``."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if t < iv.start:
                hi = mid - 1
            elif t > iv.end:
                lo = mid + 1
            else:
                return iv
        return None

    def contains_interval(self, interval: Interval) -> bool:
        """True if ``interval`` occurs during a single maximal interval of the family."""
        holder = self.interval_containing(interval.start)
        return holder is not None and interval.during(holder)

    def is_subset_of(self, other: "IntervalSet") -> bool:
        """The containment relation ``⊑`` of the paper.

        Every interval of ``self`` must occur during some interval of
        ``other``.
        """
        return all(other.contains_interval(iv) for iv in self._intervals)

    def points(self) -> Iterator[int]:
        """Iterate over every covered time point in increasing order."""
        for iv in self._intervals:
            yield from iv.points()

    def min_point(self) -> int:
        if not self._intervals:
            raise InvalidIntervalError("empty interval set has no minimum point")
        return self._intervals[0].start

    def max_point(self) -> int:
        if not self._intervals:
            raise InvalidIntervalError("empty interval set has no maximum point")
        return self._intervals[-1].end

    def span(self) -> Optional[Interval]:
        """Smallest single interval covering the whole family, or ``None`` if empty."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalSet") -> "IntervalSet":
        # Both operands already satisfy the FC invariant, so when either
        # is empty the other can be returned without re-coalescing.
        if not self._intervals:
            return other
        if not other._intervals:
            return self
        return IntervalSet(self._intervals + other._intervals)

    @staticmethod
    def union_many(families: Iterable["IntervalSet"]) -> "IntervalSet":
        """Union of arbitrarily many families with a single coalesce pass.

        Folding ``union`` pairwise re-sorts and re-coalesces after every
        operand (``O(k² log k)`` over ``k`` total intervals); this
        primitive concatenates all operands first and coalesces once.
        Use it when all operands are already in hand (e.g. merging the
        per-row output families of the dataflow materializer); for
        incremental accumulation use :class:`IntervalSetAccumulator`,
        its mutable counterpart that the coalescing frontier builds on.
        """
        pieces: list[Interval] = []
        count = 0
        last: Optional[IntervalSet] = None
        for family in families:
            if family._intervals:
                pieces.extend(family._intervals)
                count += 1
                last = family
        if count == 0:
            return IntervalSet.empty()
        if count == 1:
            return last  # type: ignore[return-value]  # count == 1 implies last is set
        return IntervalSet(pieces)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise intersection, computed by a linear merge of both families."""
        result: list[Interval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if overlap is not None:
                result.append(overlap)
            if a[i].end < b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def intersect_interval(self, interval: Interval) -> "IntervalSet":
        """Intersection with one interval via binary search on the family.

        Locates the first stored interval that can overlap, then clips
        until past ``interval.end`` — no temporary one-element family and
        no re-coalescing (clipping disjoint, non-adjacent intervals keeps
        them disjoint and non-adjacent).
        """
        stored = self._intervals
        if not stored:
            return self
        # First stored interval with end >= interval.start.
        lo, hi = 0, len(stored)
        while lo < hi:
            mid = (lo + hi) // 2
            if stored[mid].end < interval.start:
                lo = mid + 1
            else:
                hi = mid
        result: list[Interval] = []
        for iv in stored[lo:]:
            if iv.start > interval.end:
                break
            overlap = iv.intersect(interval)
            if overlap is not None:
                result.append(overlap)
        return IntervalSet._from_coalesced(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise set difference ``self \\ other``."""
        result: list[Interval] = []
        for iv in self._intervals:
            pieces = [iv]
            for cut in other._intervals:
                if cut.start > iv.end:
                    break
                next_pieces: list[Interval] = []
                for piece in pieces:
                    next_pieces.extend(piece.difference(cut))
                pieces = next_pieces
                if not pieces:
                    break
            result.extend(pieces)
        return IntervalSet(result)

    def complement(self, domain: Interval) -> "IntervalSet":
        """Time points of ``domain`` not covered by the family."""
        return IntervalSet((domain,)).difference(self)

    def shift(self, delta: int) -> "IntervalSet":
        """Every interval translated by ``delta``."""
        return IntervalSet(iv.shift(delta) for iv in self._intervals)

    def dilate(self, before: int, after: int, domain: Optional[Interval] = None) -> "IntervalSet":
        """Grow every interval by ``before``/``after`` points and re-coalesce.

        Used by the dataflow engine to turn a bounded temporal-navigation
        step (``NEXT[n, m]`` / ``PREV[n, m]``) into interval arithmetic:
        the set of times reachable from any point of the family.
        """
        grown = [iv.expand(before, after) for iv in self._intervals]
        if domain is not None:
            clamped = [iv.clamp(domain) for iv in grown]
            grown = [iv for iv in clamped if iv is not None]
        return IntervalSet(grown)

    def overlaps(self, other: "IntervalSet") -> bool:
        """True if the two families share at least one time point."""
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].end < b[j].end:
                i += 1
            else:
                j += 1
        return False

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        body = ", ".join(str(iv) for iv in self._intervals)
        return f"IntervalSet({{{body}}})"


class IntervalSetAccumulator:
    """A mutable accumulator of intervals, coalesced once on :meth:`build`.

    :class:`IntervalSet` is immutable, so code that merges many families
    into one (the coalescing frontier, temporal-navigation windows) would
    otherwise allocate a fresh family per ``union``.  The accumulator is
    the in-place counterpart: ``add``/``add_interval`` are amortized
    O(1) appends and the FC invariant is established exactly once.
    """

    __slots__ = ("_pieces",)

    def __init__(self) -> None:
        self._pieces: list[Interval] = []

    def add(self, family: IntervalSet) -> None:
        """Merge a whole family into the accumulator."""
        self._pieces.extend(family.intervals)

    def add_interval(self, interval: Interval) -> None:
        """Merge a single interval into the accumulator."""
        self._pieces.append(interval)

    def __bool__(self) -> bool:
        return bool(self._pieces)

    def build(self) -> IntervalSet:
        """The coalesced union of everything added so far."""
        if not self._pieces:
            return IntervalSet.empty()
        return IntervalSet(self._pieces)


def _coalesce(intervals: Sequence[Interval]) -> list[Interval]:
    """Coalesce a list of intervals into a sorted list of maximal intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: list[Interval] = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if last.adjacent_or_overlapping(iv):
            merged[-1] = last.hull(iv)
        else:
            merged.append(iv)
    return merged
