"""Closed integer intervals and Allen's interval relations.

An interval ``[a, b]`` with ``a <= b`` is a concise representation of the
set of time points ``{i : a <= i <= b}`` (Section III-B of the paper).
Both endpoints are inclusive.  The Allen relations implemented here follow
the definitions used in Appendix A: *during*, *meets* and *before*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import InvalidIntervalError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval of natural numbers ``[start, end]``.

    Parameters
    ----------
    start:
        First time point contained in the interval.
    end:
        Last time point contained in the interval (inclusive).

    Raises
    ------
    InvalidIntervalError
        If ``end < start``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.end, int):
            raise InvalidIntervalError(
                f"interval bounds must be integers, got [{self.start!r}, {self.end!r}]"
            )
        if self.end < self.start:
            raise InvalidIntervalError(
                f"invalid interval [{self.start}, {self.end}]: end < start"
            )

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of time points contained in the interval."""
        return self.end - self.start + 1

    def __contains__(self, t: int) -> bool:
        return self.start <= t <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def points(self) -> range:
        """All time points of the interval as a ``range``."""
        return range(self.start, self.end + 1)

    # ------------------------------------------------------------------ #
    # Allen's interval relations (the subset used by the paper)
    # ------------------------------------------------------------------ #
    def during(self, other: "Interval") -> bool:
        """``self`` occurs during ``other``: other.start <= start and end <= other.end."""
        return other.start <= self.start and self.end <= other.end

    def contains_interval(self, other: "Interval") -> bool:
        """``other`` occurs during ``self``."""
        return other.during(self)

    def meets(self, other: "Interval") -> bool:
        """``self`` meets ``other``: self ends exactly one time point before other starts."""
        return self.end + 1 == other.start

    def before(self, other: "Interval") -> bool:
        """``self`` is strictly before ``other`` with a gap of at least one point."""
        return self.end + 1 < other.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one time point."""
        return self.start <= other.end and other.start <= self.end

    def adjacent_or_overlapping(self, other: "Interval") -> bool:
        """True if the union of the two intervals is itself an interval."""
        return self.start <= other.end + 1 and other.start <= self.end + 1

    # ------------------------------------------------------------------ #
    # Set-like operations
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersection with ``other``, or ``None`` if the intervals are disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def union(self, other: "Interval") -> "Interval":
        """Union with ``other``; the two intervals must overlap or be adjacent."""
        if not self.adjacent_or_overlapping(other):
            raise InvalidIntervalError(
                f"cannot union disjoint non-adjacent intervals {self} and {other}"
            )
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands (may cover a gap)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def difference(self, other: "Interval") -> list["Interval"]:
        """Time points of ``self`` not in ``other``, as at most two intervals."""
        if not self.overlaps(other):
            return [self]
        pieces: list[Interval] = []
        if self.start < other.start:
            pieces.append(Interval(self.start, other.start - 1))
        if other.end < self.end:
            pieces.append(Interval(other.end + 1, self.end))
        return pieces

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def shift(self, delta: int) -> "Interval":
        """Interval translated by ``delta`` time points."""
        return Interval(self.start + delta, self.end + delta)

    def expand(self, before: int, after: int) -> "Interval":
        """Interval grown by ``before`` points on the left and ``after`` on the right."""
        if before < 0 or after < 0:
            raise InvalidIntervalError("expand amounts must be non-negative")
        return Interval(self.start - before, self.end + after)

    def clamp(self, domain: "Interval") -> Optional["Interval"]:
        """Intersection with the temporal domain ``domain``."""
        return self.intersect(domain)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def point(t: int) -> "Interval":
        """The singleton interval ``[t, t]``."""
        return Interval(t, t)

    @staticmethod
    def from_points(points: Iterable[int]) -> "Interval":
        """Smallest interval containing every point of ``points`` (non-empty)."""
        pts = list(points)
        if not pts:
            raise InvalidIntervalError("cannot build an interval from no points")
        return Interval(min(pts), max(pts))

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"
