"""The TRPQ query language NavL[PC,NOI] and its practical surface syntax.

* :mod:`repro.lang.ast` — the abstract syntax of NavL[PC,NOI]
  (grammars (2), (3) and (4) of Section V-A) plus convenience
  constructors.
* :mod:`repro.lang.fragments` — classification of expressions into the
  fragments studied by the paper: NavL[PC], NavL[NOI], NavL[ANOI] and
  the full language.
* :mod:`repro.lang.parser` — parser for the practical path syntax
  (``FWD``, ``BWD``, ``NEXT``, ``PREV``, labels, property restrictions,
  ``*``, ``[n,m]``) and for full ``MATCH`` clauses (Section IV).
* :mod:`repro.lang.translate` — translation from the practical syntax
  into NavL[PC,NOI] (Section V-A) and compilation of MATCH clauses into
  anchored segment lists used by the evaluation engines.
"""

from repro.lang.ast import (
    PathExpr,
    Test,
    Axis,
    TestPath,
    Concat,
    Union,
    Repeat,
    NodeTest,
    EdgeTest,
    LabelTest,
    PropEq,
    TimeLt,
    ExistsTest,
    PathTest,
    AndTest,
    OrTest,
    NotTest,
    TrueTest,
    F,
    B,
    N,
    P,
    concat,
    union,
    repeat,
    star,
    plus,
    optional,
    test,
    label,
    prop_eq,
    time_lt,
    time_eq,
    exists,
    is_node,
    is_edge,
    and_,
    or_,
    not_,
)
from repro.lang.fragments import (
    Fragment,
    has_path_conditions,
    has_occurrence_indicators,
    occurrence_indicators_only_on_axes,
    classify,
)
from repro.lang.parser import parse_path, parse_match, MatchQuery, NodePattern, EdgePattern, PathPattern
from repro.lang.translate import (
    translate_path,
    node_pattern_test,
    compile_match,
    CompiledMatch,
    Segment,
)
from repro.lang.pretty import to_text

__all__ = [
    "PathExpr",
    "Test",
    "Axis",
    "TestPath",
    "Concat",
    "Union",
    "Repeat",
    "NodeTest",
    "EdgeTest",
    "LabelTest",
    "PropEq",
    "TimeLt",
    "ExistsTest",
    "PathTest",
    "AndTest",
    "OrTest",
    "NotTest",
    "TrueTest",
    "F",
    "B",
    "N",
    "P",
    "concat",
    "union",
    "repeat",
    "star",
    "plus",
    "optional",
    "test",
    "label",
    "prop_eq",
    "time_lt",
    "time_eq",
    "exists",
    "is_node",
    "is_edge",
    "and_",
    "or_",
    "not_",
    "Fragment",
    "has_path_conditions",
    "has_occurrence_indicators",
    "occurrence_indicators_only_on_axes",
    "classify",
    "parse_path",
    "parse_match",
    "MatchQuery",
    "NodePattern",
    "EdgePattern",
    "PathPattern",
    "translate_path",
    "node_pattern_test",
    "compile_match",
    "CompiledMatch",
    "Segment",
    "to_text",
]
