"""Fragment classification of NavL[PC,NOI] expressions.

The paper studies four languages (Section V-B and Appendix B/D):

* ``NavL[PC,NOI]`` — the full language;
* ``NavL[PC]``      — no numerical occurrence indicators;
* ``NavL[NOI]``     — no path conditions ``(?path)``;
* ``NavL[ANOI]``    — no path conditions, and occurrence indicators only
  directly on axes (``N[n,m]``, ``F[n,_]``, …).

Classification matters because the complexity of evaluation over ITPGs
differs per fragment (Theorem V.1, Theorems D.1/D.2); the evaluation
engines use it to pick an algorithm or to reject unsupported input.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.lang.ast import (
    Axis,
    AndTest,
    Concat,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    Repeat,
    Test,
    TestPath,
    Union,
)


class Fragment(enum.Enum):
    """The fragments of the query language studied in the paper."""

    PC = "NavL[PC]"
    NOI = "NavL[NOI]"
    ANOI = "NavL[ANOI]"
    PC_ANOI = "NavL[PC,ANOI]"
    FULL = "NavL[PC,NOI]"

    def __str__(self) -> str:
        return self.value


def iter_subpaths(path: PathExpr) -> Iterator[PathExpr]:
    """Depth-first iteration over every path sub-expression (including tests' paths)."""
    yield path
    if isinstance(path, Concat) or isinstance(path, Union):
        for part in path.parts:
            yield from iter_subpaths(part)
    elif isinstance(path, Repeat):
        yield from iter_subpaths(path.body)
    elif isinstance(path, TestPath):
        yield from _iter_paths_in_test(path.condition)


def _iter_paths_in_test(condition: Test) -> Iterator[PathExpr]:
    if isinstance(condition, PathTest):
        yield from iter_subpaths(condition.path)
    elif isinstance(condition, (AndTest, OrTest)):
        for part in condition.parts:
            yield from _iter_paths_in_test(part)
    elif isinstance(condition, NotTest):
        yield from _iter_paths_in_test(condition.inner)


def has_path_conditions(path: PathExpr) -> bool:
    """True if the expression uses a path condition ``(?path)`` anywhere."""
    for sub in iter_subpaths(path):
        if isinstance(sub, TestPath) and _test_has_path_condition(sub.condition):
            return True
    return False


def _test_has_path_condition(condition: Test) -> bool:
    if isinstance(condition, PathTest):
        return True
    if isinstance(condition, (AndTest, OrTest)):
        return any(_test_has_path_condition(part) for part in condition.parts)
    if isinstance(condition, NotTest):
        return _test_has_path_condition(condition.inner)
    return False


def has_occurrence_indicators(path: PathExpr) -> bool:
    """True if the expression uses a numerical occurrence indicator anywhere."""
    return any(isinstance(sub, Repeat) for sub in iter_subpaths(path))


def occurrence_indicators_only_on_axes(path: PathExpr) -> bool:
    """True if every occurrence indicator is applied directly to an axis.

    This is the syntactic restriction defining NavL[ANOI] /
    NavL[PC,ANOI] (Appendix B): ``axis[n,m]`` and ``axis[n,_]`` are
    allowed, arbitrary ``path[n,m]`` is not.
    """
    for sub in iter_subpaths(path):
        if isinstance(sub, Repeat) and not isinstance(sub.body, Axis):
            return False
    return True


def classify(path: PathExpr) -> Fragment:
    """Smallest fragment of the paper's hierarchy containing the expression."""
    pc = has_path_conditions(path)
    noi = has_occurrence_indicators(path)
    if not noi:
        # Without occurrence indicators the expression lies in NavL[PC]
        # (which contains NavL[ANOI]-without-indicators as well).
        return Fragment.PC
    axis_only = occurrence_indicators_only_on_axes(path)
    if pc:
        return Fragment.PC_ANOI if axis_only else Fragment.FULL
    return Fragment.ANOI if axis_only else Fragment.NOI


def in_fragment(path: PathExpr, fragment: Fragment) -> bool:
    """True if the expression belongs to ``fragment``."""
    pc = has_path_conditions(path)
    noi = has_occurrence_indicators(path)
    axis_only = occurrence_indicators_only_on_axes(path)
    if fragment is Fragment.FULL:
        return True
    if fragment is Fragment.PC:
        return not noi
    if fragment is Fragment.NOI:
        return not pc
    if fragment is Fragment.ANOI:
        return not pc and axis_only
    if fragment is Fragment.PC_ANOI:
        return axis_only
    raise ValueError(f"unknown fragment {fragment!r}")
