"""Pretty-printing of NavL[PC,NOI] expressions.

:func:`to_text` renders an expression in a notation close to the paper's
formal syntax (``/`` for concatenation, ``+`` for union, ``[n,m]`` and
``[n,_]`` for occurrence indicators, ``?()`` for path conditions).  The
output is deterministic, which makes it usable in golden tests and error
messages.
"""

from __future__ import annotations

from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)


def to_text(expr: PathExpr | Test) -> str:
    """Render a path expression or test as formal-notation text."""
    if isinstance(expr, Test):
        return _test_text(expr)
    return _path_text(expr)


def _path_text(path: PathExpr) -> str:
    if isinstance(path, Axis):
        return path.kind
    if isinstance(path, TestPath):
        return _test_text(path.condition)
    if isinstance(path, Concat):
        return "(" + " / ".join(_path_text(p) for p in path.parts) + ")"
    if isinstance(path, Union):
        return "(" + " + ".join(_path_text(p) for p in path.parts) + ")"
    if isinstance(path, Repeat):
        upper = "_" if path.upper is None else str(path.upper)
        return f"{_path_text(path.body)}[{path.lower},{upper}]"
    raise TypeError(f"not a path expression: {path!r}")


def _test_text(condition: Test) -> str:
    if isinstance(condition, NodeTest):
        return "Node"
    if isinstance(condition, EdgeTest):
        return "Edge"
    if isinstance(condition, LabelTest):
        return condition.label
    if isinstance(condition, PropEq):
        return f"{condition.prop} -> {condition.value!r}"
    if isinstance(condition, TimeLt):
        return f"< {condition.bound}"
    if isinstance(condition, ExistsTest):
        return "EXISTS"
    if isinstance(condition, TrueTest):
        return "TRUE"
    if isinstance(condition, PathTest):
        return f"?({_path_text(condition.path)})"
    if isinstance(condition, AndTest):
        return "(" + " AND ".join(_test_text(p) for p in condition.parts) + ")"
    if isinstance(condition, OrTest):
        return "(" + " OR ".join(_test_text(p) for p in condition.parts) + ")"
    if isinstance(condition, NotTest):
        return f"NOT {_test_text(condition.inner)}"
    raise TypeError(f"not a test: {condition!r}")
