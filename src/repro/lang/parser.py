"""Parser for the practical TRPQ syntax of Section IV.

Two entry points:

* :func:`parse_path` parses a path expression such as
  ``"PREV*/FWD/:visits/FWD"`` or
  ``"(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]"``
  and returns the corresponding NavL[PC,NOI] expression.  By default the
  practical-language convention that *every traversed temporal object
  must exist* is applied (an ``∃`` test follows every navigation step and
  accompanies every label test), exactly as in the translations of
  Section V-A.  Pass ``implicit_existence=False`` to get the bare formal
  operators.

* :func:`parse_match` parses a full ``MATCH`` clause such as::

      MATCH (x:Person {risk = 'high'})-
          /FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'})
      ON contact_tracing

  and returns a :class:`MatchQuery`: an alternating sequence of node
  patterns and connectors (edge patterns or path patterns) plus the name
  of the input graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.errors import QuerySyntaxError
from repro.lang import ast
from repro.lang.ast import PathExpr, Test

# --------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------- #
_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*')
  | (?P<NUMBER>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<ARROW_IN><-)
  | (?P<NEQ><>|!=)
  | (?P<LE><=)
  | (?P<GE>>=)
  | (?P<SYMBOL>[()\[\]{}\-+*/:,=<>_?])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split the input into tokens; whitespace is discarded."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QuerySyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or "SYMBOL"
        if kind != "WS":
            value = match.group()
            if kind == "SYMBOL":
                kind = value
            elif kind in {"ARROW_IN", "NEQ", "LE", "GE"}:
                kind = value if kind != "NEQ" else "!="
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens


class _TokenStream:
    """A small cursor over the token list with peek/expect helpers."""

    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token is None or token.kind != kind:
            found = "end of input" if token is None else f"{token.text!r}"
            raise QuerySyntaxError(
                f"expected {kind!r} but found {found} at offset "
                f"{token.position if token else len(self._text)}"
            )
        return self.next()

    def accept(self, kind: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == kind:
            return self.next()
        return None

    def accept_keyword(self, word: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == "IDENT" and token.text.upper() == word:
            return self.next()
        return None

    def at_keyword(self, word: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token is not None and token.kind == "IDENT" and token.text.upper() == word

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    def require_end(self) -> None:
        if not self.at_end():
            token = self.peek()
            raise QuerySyntaxError(
                f"trailing input starting with {token.text!r} at offset {token.position}"
            )


# --------------------------------------------------------------------- #
# Pattern dataclasses (the parsed form of a MATCH clause)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodePattern:
    """A node element ``(var:Label {conditions})``; every part is optional."""

    variable: Optional[str] = None
    label: Optional[str] = None
    condition: Optional[Test] = None


@dataclass(frozen=True)
class EdgePattern:
    """An edge connector ``-[var:Label {conditions}]->`` (or ``<-…-`` / ``-…-``)."""

    variable: Optional[str] = None
    label: Optional[str] = None
    condition: Optional[Test] = None
    direction: str = "out"  # "out", "in" or "both"


@dataclass(frozen=True)
class PathPattern:
    """A path connector ``-/ expression /-`` holding the translated NavL expression."""

    path: PathExpr
    source_text: str = ""


Connector = EdgePattern | PathPattern


@dataclass(frozen=True)
class MatchQuery:
    """A parsed MATCH clause: ``elements[0] connectors[0] elements[1] …``."""

    elements: tuple[NodePattern, ...]
    connectors: tuple[Connector, ...] = ()
    graph_name: Optional[str] = None
    text: str = ""

    def variables(self) -> list[str]:
        """Variable names in order of first appearance."""
        names: list[str] = []
        for index, element in enumerate(self.elements):
            if index > 0:
                connector = self.connectors[index - 1]
                if isinstance(connector, EdgePattern) and connector.variable:
                    names.append(connector.variable)
            if element.variable:
                names.append(element.variable)
        return names


# --------------------------------------------------------------------- #
# Property conditions (the {...} blocks)
# --------------------------------------------------------------------- #
def _parse_condition(stream: _TokenStream) -> Test:
    return _parse_or(stream)


def _parse_or(stream: _TokenStream) -> Test:
    parts = [_parse_and(stream)]
    while stream.accept_keyword("OR"):
        parts.append(_parse_and(stream))
    return ast.or_(*parts)


def _parse_and(stream: _TokenStream) -> Test:
    parts = [_parse_not(stream)]
    while stream.accept_keyword("AND"):
        parts.append(_parse_not(stream))
    return ast.and_(*parts)


def _parse_not(stream: _TokenStream) -> Test:
    if stream.accept_keyword("NOT"):
        return ast.not_(_parse_not(stream))
    if stream.accept("("):
        inner = _parse_condition(stream)
        stream.expect(")")
        return inner
    return _parse_comparison(stream)


_COMPARATORS = {"=", "<", "<=", ">", ">=", "!="}


def _parse_comparison(stream: _TokenStream) -> Test:
    name_token = stream.expect("IDENT")
    op_token = stream.next()
    if op_token.kind not in _COMPARATORS:
        raise QuerySyntaxError(
            f"expected a comparison operator after {name_token.text!r}, "
            f"found {op_token.text!r}"
        )
    value = _parse_value(stream)
    return _comparison_test(name_token.text, op_token.kind, value)


def _parse_value(stream: _TokenStream) -> Hashable:
    token = stream.next()
    if token.kind == "STRING":
        return token.text[1:-1].replace("\\'", "'")
    if token.kind == "NUMBER":
        return int(token.text)
    if token.kind == "IDENT":
        return token.text
    raise QuerySyntaxError(f"expected a value, found {token.text!r}")


def _comparison_test(name: str, op: str, value: Hashable) -> Test:
    if name == "time":
        bound = _as_int(value)
        if op == "=":
            return ast.time_eq(bound)
        if op == "<":
            return ast.time_lt(bound)
        if op == "<=":
            return ast.time_lt(bound + 1)
        if op == ">":
            return ast.not_(ast.time_lt(bound + 1))
        if op == ">=":
            return ast.not_(ast.time_lt(bound))
        if op == "!=":
            return ast.not_(ast.time_eq(bound))
    if op == "=":
        return ast.prop_eq(name, _normalize_value(value))
    if op == "!=":
        return ast.not_(ast.prop_eq(name, _normalize_value(value)))
    raise QuerySyntaxError(
        f"operator {op!r} is only supported on the reserved word 'time', "
        f"not on property {name!r}"
    )


def _as_int(value: Hashable) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise QuerySyntaxError(f"time bound {value!r} is not an integer") from exc


def _normalize_value(value: Hashable) -> Hashable:
    """Quoted numbers are kept as written in the query: '750' matches 750 too.

    Property values in the model may be stored as ints (e.g. room
    numbers); queries typically quote every literal.  We normalize purely
    numeric strings to ints so that ``{num = '750'}`` matches a stored
    integer 750, mirroring the loosely-typed behaviour of the paper's
    experimental implementation.
    """
    if isinstance(value, str) and value.isdigit():
        return int(value)
    return value


# --------------------------------------------------------------------- #
# Path expressions
# --------------------------------------------------------------------- #
_AXIS_KEYWORDS = {
    "FWD": ast.F,
    "BWD": ast.B,
    "NEXT": ast.N,
    "PREV": ast.P,
}


class _PathParser:
    """Recursive-descent parser for practical path expressions.

    When ``stop_at_slash_dash`` is set (parsing the body of a ``-/…/-``
    connector inside a MATCH clause), a ``/`` immediately followed by a
    ``-`` terminates the expression instead of being read as a
    concatenation operator.
    """

    def __init__(
        self,
        stream: _TokenStream,
        implicit_existence: bool,
        stop_at_slash_dash: bool = False,
    ) -> None:
        self._stream = stream
        self._implicit = implicit_existence
        self._stop_at_slash_dash = stop_at_slash_dash

    def parse(self) -> PathExpr:
        return self._parse_union()

    def _parse_union(self) -> PathExpr:
        parts = [self._parse_concat()]
        while self._stream.accept("+"):
            parts.append(self._parse_concat())
        return ast.union(*parts)

    def _parse_concat(self) -> PathExpr:
        parts = [self._parse_factor()]
        while True:
            token = self._stream.peek()
            if token is None or token.kind != "/":
                break
            if self._stop_at_slash_dash:
                nxt = self._stream.peek(1)
                if nxt is not None and nxt.kind == "-":
                    break
            self._stream.next()
            parts.append(self._parse_factor())
        return ast.concat(*parts)

    def _parse_factor(self) -> PathExpr:
        atom = self._parse_atom()
        while True:
            token = self._stream.peek()
            if token is None:
                break
            if token.kind == "*":
                self._stream.next()
                atom = ast.star(atom)
            elif token.kind == "[":
                lower, upper = self._parse_bounds()
                atom = self._apply_bounds(atom, lower, upper)
            else:
                break
        return atom

    def _parse_bounds(self) -> tuple[int, Optional[int]]:
        self._stream.expect("[")
        lower = int(self._stream.expect("NUMBER").text)
        self._stream.expect(",")
        token = self._stream.peek()
        if token is not None and token.kind == "IDENT" and token.text == "_":
            self._stream.next()
            upper: Optional[int] = None
        else:
            upper = int(self._stream.expect("NUMBER").text)
        self._stream.expect("]")
        return lower, upper

    def _apply_bounds(self, atom: PathExpr, lower: int, upper: Optional[int]) -> PathExpr:
        return ast.repeat(atom, lower, upper)

    def _parse_atom(self) -> PathExpr:
        stream = self._stream
        token = stream.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of path expression")
        if token.kind == "IDENT" and token.text.upper() in _AXIS_KEYWORDS:
            stream.next()
            axis = _AXIS_KEYWORDS[token.text.upper()]
            if self._implicit:
                return ast.concat(axis, ast.exists())
            return axis
        if token.kind == ":":
            stream.next()
            name = stream.expect("IDENT").text
            if self._implicit:
                return ast.test(ast.and_(ast.label(name), ast.exists()))
            return ast.test(ast.label(name))
        if token.kind == "{":
            stream.next()
            condition = _parse_condition(stream)
            stream.expect("}")
            if self._implicit:
                condition = ast.and_(condition, ast.exists())
            return ast.test(condition)
        if token.kind == "(":
            stream.next()
            inner = self._parse_union()
            stream.expect(")")
            return inner
        raise QuerySyntaxError(
            f"unexpected token {token.text!r} at offset {token.position} in path expression"
        )


def parse_path(text: str, implicit_existence: bool = True) -> PathExpr:
    """Parse a practical path expression into a NavL[PC,NOI] expression."""
    stream = _TokenStream(tokenize(text), text)
    parser = _PathParser(stream, implicit_existence)
    path = parser.parse()
    stream.require_end()
    return path


# --------------------------------------------------------------------- #
# MATCH clauses
# --------------------------------------------------------------------- #
def parse_match(text: str) -> MatchQuery:
    """Parse a full MATCH clause into a :class:`MatchQuery`."""
    stream = _TokenStream(tokenize(text), text)
    if not stream.accept_keyword("MATCH"):
        raise QuerySyntaxError("a MATCH clause must start with the keyword MATCH")
    elements: list[NodePattern] = [_parse_node_pattern(stream)]
    connectors: list[Connector] = []
    while True:
        token = stream.peek()
        if token is None or stream.at_keyword("ON"):
            break
        connector = _parse_connector(stream)
        connectors.append(connector)
        elements.append(_parse_node_pattern(stream))
    graph_name: Optional[str] = None
    if stream.accept_keyword("ON"):
        graph_name = stream.expect("IDENT").text
    stream.require_end()
    return MatchQuery(tuple(elements), tuple(connectors), graph_name, text)


def _parse_node_pattern(stream: _TokenStream) -> NodePattern:
    stream.expect("(")
    variable: Optional[str] = None
    label: Optional[str] = None
    condition: Optional[Test] = None
    token = stream.peek()
    if token is not None and token.kind == "IDENT":
        variable = stream.next().text
    if stream.accept(":"):
        label = stream.expect("IDENT").text
    if stream.accept("{"):
        condition = _parse_condition(stream)
        stream.expect("}")
    stream.expect(")")
    return NodePattern(variable, label, condition)


def _parse_connector(stream: _TokenStream) -> Connector:
    token = stream.peek()
    if token is None:
        raise QuerySyntaxError("expected a connector, found end of input")
    if token.kind == "<-":
        stream.next()
        pattern = _parse_edge_body(stream)
        stream.expect("-")
        return EdgePattern(pattern.variable, pattern.label, pattern.condition, "in")
    if token.kind == "-":
        stream.next()
        nxt = stream.peek()
        if nxt is not None and nxt.kind == "[":
            pattern = _parse_edge_body(stream)
            stream.expect("-")
            if stream.accept(">"):
                return EdgePattern(pattern.variable, pattern.label, pattern.condition, "out")
            return EdgePattern(pattern.variable, pattern.label, pattern.condition, "both")
        if nxt is not None and nxt.kind == "/":
            stream.next()  # consume '/'
            path, source = _parse_path_connector(stream)
            return PathPattern(path, source)
        raise QuerySyntaxError(
            f"expected '[' or '/' after '-' at offset {token.position}"
        )
    raise QuerySyntaxError(f"expected a connector, found {token.text!r}")


def _parse_edge_body(stream: _TokenStream) -> EdgePattern:
    stream.expect("[")
    variable: Optional[str] = None
    label: Optional[str] = None
    condition: Optional[Test] = None
    token = stream.peek()
    if token is not None and token.kind == "IDENT":
        variable = stream.next().text
    if stream.accept(":"):
        label = stream.expect("IDENT").text
    if stream.accept("{"):
        condition = _parse_condition(stream)
        stream.expect("}")
    stream.expect("]")
    return EdgePattern(variable, label, condition, "out")


def _parse_path_connector(stream: _TokenStream) -> tuple[PathExpr, str]:
    """Parse the body of ``-/ … /-``: the expression ends at a ``/`` ``-`` pair."""
    parser = _PathParser(stream, implicit_existence=True, stop_at_slash_dash=True)
    path = parser.parse()
    stream.expect("/")
    stream.expect("-")
    return path, ""
