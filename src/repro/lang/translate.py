"""Translation of the practical MATCH syntax into NavL[PC,NOI].

Section V-A of the paper shows how each practical construct corresponds
to a formal expression; this module implements that translation and, on
top of it, compiles a parsed :class:`~repro.lang.parser.MatchQuery` into
a :class:`CompiledMatch`: a sequence of *segments*, each a NavL path
expression optionally followed by a variable binding.  Evaluation engines
process the segments left to right, binding each variable to the temporal
object reached at the end of its segment — this is what turns the binary
endpoint semantics of path expressions into the multi-column temporal
binding tables shown in Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import QueryTranslationError
from repro.lang import ast
from repro.lang.ast import PathExpr, Test, TestPath
from repro.lang.parser import (
    EdgePattern,
    MatchQuery,
    NodePattern,
    PathPattern,
    parse_match,
    parse_path,
)


def translate_path(text: str, implicit_existence: bool = True) -> PathExpr:
    """Translate a practical path expression into NavL[PC,NOI].

    This is :func:`repro.lang.parser.parse_path` under a name that makes
    the Section V-A correspondence explicit.
    """
    return parse_path(text, implicit_existence=implicit_existence)


def node_pattern_test(pattern: NodePattern) -> Test:
    """The condition a temporal object must satisfy to match a node element.

    ``(x:Person {risk = 'high'})`` becomes
    ``Node ∧ Person ∧ risk ↦ high ∧ ∃`` — node elements always require
    existence (Section IV: variables are assigned nodes *that exist* at
    the bound time point).
    """
    parts: list[Test] = [ast.is_node()]
    if pattern.label is not None:
        parts.append(ast.label(pattern.label))
    if pattern.condition is not None:
        parts.append(pattern.condition)
    parts.append(ast.exists())
    return ast.and_(*parts)


def edge_pattern_test(pattern: EdgePattern) -> Test:
    """The condition an edge object must satisfy to match an edge connector."""
    parts: list[Test] = [ast.is_edge()]
    if pattern.label is not None:
        parts.append(ast.label(pattern.label))
    if pattern.condition is not None:
        parts.append(pattern.condition)
    parts.append(ast.exists())
    return ast.and_(*parts)


@dataclass(frozen=True)
class Segment:
    """One step of a compiled MATCH: traverse ``path``, optionally bind ``variable``."""

    path: PathExpr
    variable: Optional[str] = None


@dataclass(frozen=True)
class CompiledMatch:
    """A MATCH clause compiled into anchored segments.

    Attributes
    ----------
    segments:
        Traversed left to right starting from every temporal object of
        the graph; the first segment is always a test selecting the
        first node element.
    variables:
        Variable names in binding order (a subset of the segment
        variables, without ``None`` entries).
    graph_name:
        The name following ``ON``, if any.
    """

    segments: tuple[Segment, ...]
    variables: tuple[str, ...]
    graph_name: Optional[str] = None

    def full_path(self) -> PathExpr:
        """The single NavL expression equivalent to the whole MATCH pattern.

        Evaluating it yields only the endpoints (first and last temporal
        objects); engines use the segment list when intermediate
        variables must be materialized.
        """
        return ast.concat(*(segment.path for segment in self.segments))


def compile_match(query: MatchQuery | str) -> CompiledMatch:
    """Compile a MATCH clause (text or parsed) into a :class:`CompiledMatch`."""
    if isinstance(query, str):
        query = parse_match(query)
    segments: list[Segment] = []
    variables: list[str] = []

    first = query.elements[0]
    segments.append(Segment(TestPath(node_pattern_test(first)), first.variable))
    if first.variable:
        variables.append(first.variable)

    for connector, element in zip(query.connectors, query.elements[1:]):
        if isinstance(connector, EdgePattern):
            segments.extend(_edge_segments(connector))
            if connector.variable:
                variables.append(connector.variable)
        elif isinstance(connector, PathPattern):
            segments.append(Segment(connector.path, None))
        else:  # pragma: no cover - parser only produces the two kinds above
            raise QueryTranslationError(f"unknown connector {connector!r}")
        segments.append(Segment(TestPath(node_pattern_test(element)), element.variable))
        if element.variable:
            variables.append(element.variable)

    duplicates = {name for name in variables if variables.count(name) > 1}
    if duplicates:
        raise QueryTranslationError(
            f"variable(s) {sorted(duplicates)} bound more than once; "
            "repeated variables are not supported"
        )
    return CompiledMatch(tuple(segments), tuple(variables), query.graph_name)


def _edge_segments(pattern: EdgePattern) -> list[Segment]:
    """Segments for an edge connector, binding the edge variable if present."""
    step_exists = TestPath(ast.exists())
    condition = TestPath(edge_pattern_test(pattern))
    forward_in = ast.concat(ast.F, step_exists)
    forward_out = ast.concat(ast.F, step_exists)
    backward_in = ast.concat(ast.B, step_exists)
    backward_out = ast.concat(ast.B, step_exists)

    if pattern.direction == "out":
        pre, post = forward_in, forward_out
    elif pattern.direction == "in":
        pre, post = backward_in, backward_out
    elif pattern.direction == "both":
        if pattern.variable:
            raise QueryTranslationError(
                "binding a variable on an undirected edge pattern -[x]- is not "
                "supported; use a directed pattern or two MATCH clauses"
            )
        both = ast.union(
            ast.concat(forward_in, condition, forward_out),
            ast.concat(backward_in, condition, backward_out),
        )
        return [Segment(both, None)]
    else:  # pragma: no cover - the parser only emits the three directions
        raise QueryTranslationError(f"unknown edge direction {pattern.direction!r}")

    if pattern.variable:
        return [
            Segment(pre, None),
            Segment(condition, pattern.variable),
            Segment(post, None),
        ]
    return [Segment(ast.concat(pre, condition, post), None)]
