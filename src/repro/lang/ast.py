"""Abstract syntax of NavL[PC,NOI] (Section V-A of the paper).

Path expressions follow grammar (2)::

    path ::= test | axis | (path/path) | (path + path) | path[n, m] | path[n, _]

conditions follow grammar (3)::

    test ::= Node | Edge | l | p -> v | < k | EXISTS |
             (?path) | (test OR test) | (test AND test) | (NOT test)

and axes follow grammar (4)::

    axis ::= F | B | N | P

Every AST node is an immutable, hashable dataclass, so expressions can be
used as dictionary keys (the memoized checkers rely on this).  The module
also provides small constructor helpers (``concat``, ``union``, ``star``,
``label`` …) that flatten nested operators and keep expressions readable
in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional


# --------------------------------------------------------------------- #
# Base classes
# --------------------------------------------------------------------- #
class PathExpr:
    """Base class of every path expression (grammar (2))."""

    __slots__ = ()

    def __truediv__(self, other: "PathExpr") -> "PathExpr":
        """``p / q`` builds the concatenation of two path expressions."""
        return concat(self, _as_path(other))

    def __add__(self, other: "PathExpr") -> "PathExpr":
        """``p + q`` builds the union of two path expressions."""
        return union(self, _as_path(other))


class Test:
    """Base class of every condition (grammar (3))."""

    __slots__ = ()

    def __and__(self, other: "Test") -> "Test":
        return and_(self, other)

    def __or__(self, other: "Test") -> "Test":
        return or_(self, other)

    def __invert__(self) -> "Test":
        return not_(self)

    def as_path(self) -> "TestPath":
        """Lift the condition into a path expression (a self-loop filter)."""
        return TestPath(self)


# --------------------------------------------------------------------- #
# Axes (grammar (4))
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Axis(PathExpr):
    """A single navigation step.

    ``kind`` is one of ``"F"`` (structural forward), ``"B"`` (structural
    backward), ``"N"`` (one time point into the future) or ``"P"`` (one
    time point into the past).
    """

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in {"F", "B", "N", "P"}:
            raise ValueError(f"unknown axis {self.kind!r}")

    @property
    def is_structural(self) -> bool:
        return self.kind in {"F", "B"}

    @property
    def is_temporal(self) -> bool:
        return self.kind in {"N", "P"}

    def __repr__(self) -> str:
        return self.kind


#: The four axis singletons; use these rather than constructing :class:`Axis`.
F = Axis("F")
B = Axis("B")
N = Axis("N")
P = Axis("P")


# --------------------------------------------------------------------- #
# Path combinators
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TestPath(PathExpr):
    """A condition used as a path expression: stays put if the test holds."""

    __test__ = False  # not a pytest test class despite the name

    condition: "Test"

    def __repr__(self) -> str:
        return repr(self.condition)


@dataclass(frozen=True)
class Concat(PathExpr):
    """Concatenation ``(path1 / path2 / ...)``; at least two parts."""

    parts: tuple[PathExpr, ...]

    def __repr__(self) -> str:
        return "(" + "/".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Union(PathExpr):
    """Disjunction ``(path1 + path2 + ...)``; at least two parts."""

    parts: tuple[PathExpr, ...]

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Repeat(PathExpr):
    """Numerical occurrence indicator ``path[lower, upper]``.

    ``upper is None`` encodes the unbounded form ``path[lower, _]``; the
    Kleene star is ``Repeat(path, 0, None)``.
    """

    body: PathExpr
    lower: int
    upper: Optional[int]

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ValueError("repetition lower bound must be non-negative")
        if self.upper is not None and self.upper < self.lower:
            raise ValueError(
                f"repetition upper bound {self.upper} below lower bound {self.lower}"
            )

    def __repr__(self) -> str:
        upper = "_" if self.upper is None else str(self.upper)
        return f"{self.body!r}[{self.lower},{upper}]"


# --------------------------------------------------------------------- #
# Tests (grammar (3))
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeTest(Test):
    """``Node`` — the temporal object is a node."""

    def __repr__(self) -> str:
        return "Node"


@dataclass(frozen=True)
class EdgeTest(Test):
    """``Edge`` — the temporal object is an edge."""

    def __repr__(self) -> str:
        return "Edge"


@dataclass(frozen=True)
class LabelTest(Test):
    """``ℓ`` — the object's label is ``label``."""

    label: str

    def __repr__(self) -> str:
        return f":{self.label}"


@dataclass(frozen=True)
class PropEq(Test):
    """``p ↦ v`` — property ``prop`` holds value ``value`` at the current time."""

    prop: str
    value: Hashable

    def __repr__(self) -> str:
        return f"{self.prop}->{self.value!r}"


@dataclass(frozen=True)
class TimeLt(Test):
    """``< k`` — the current time point is strictly less than ``bound``."""

    bound: int

    def __repr__(self) -> str:
        return f"<{self.bound}"


@dataclass(frozen=True)
class ExistsTest(Test):
    """``∃`` — the object exists at the current time point."""

    def __repr__(self) -> str:
        return "EXISTS"


@dataclass(frozen=True)
class TrueTest(Test):
    """The always-true condition (``∃ ∨ ¬∃`` in the paper's minimal syntax)."""

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class PathTest(Test):
    """``(?path)`` — some path conforming to ``path`` starts at the current object."""

    path: PathExpr

    def __repr__(self) -> str:
        return f"?({self.path!r})"


@dataclass(frozen=True)
class AndTest(Test):
    """Conjunction of conditions."""

    parts: tuple[Test, ...]

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class OrTest(Test):
    """Disjunction of conditions."""

    parts: tuple[Test, ...]

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class NotTest(Test):
    """Negation of a condition."""

    inner: Test

    def __repr__(self) -> str:
        return f"NOT {self.inner!r}"


# --------------------------------------------------------------------- #
# Constructor helpers
# --------------------------------------------------------------------- #
def _as_path(value: PathExpr | Test) -> PathExpr:
    """Accept a bare test where a path expression is expected."""
    if isinstance(value, Test):
        return TestPath(value)
    if isinstance(value, PathExpr):
        return value
    raise TypeError(f"expected a path expression or test, got {value!r}")


def test(condition: Test) -> TestPath:
    """Lift a condition into a path expression."""
    return TestPath(condition)


test.__test__ = False  # keep pytest from collecting the constructor helper


def concat(*parts: PathExpr | Test) -> PathExpr:
    """Concatenation of any number of parts; nested concatenations are flattened."""
    flat: list[PathExpr] = []
    for part in parts:
        path = _as_path(part)
        if isinstance(path, Concat):
            flat.extend(path.parts)
        else:
            flat.append(path)
    if not flat:
        return TestPath(TrueTest())
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: PathExpr | Test) -> PathExpr:
    """Union of any number of parts; nested unions are flattened."""
    flat: list[PathExpr] = []
    for part in parts:
        path = _as_path(part)
        if isinstance(path, Union):
            flat.extend(path.parts)
        else:
            flat.append(path)
    if not flat:
        raise ValueError("union of zero parts is undefined")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def repeat(body: PathExpr | Test, lower: int, upper: Optional[int]) -> Repeat:
    """``body[lower, upper]``; pass ``upper=None`` for the unbounded form."""
    return Repeat(_as_path(body), lower, upper)


def star(body: PathExpr | Test) -> Repeat:
    """Kleene star ``body[0, _]``."""
    return Repeat(_as_path(body), 0, None)


def plus(body: PathExpr | Test) -> Repeat:
    """One-or-more repetitions ``body[1, _]``."""
    return Repeat(_as_path(body), 1, None)


def optional(body: PathExpr | Test) -> Repeat:
    """Zero-or-one repetitions ``body[0, 1]``."""
    return Repeat(_as_path(body), 0, 1)


def label(name: str) -> LabelTest:
    """Label test ``ℓ``."""
    return LabelTest(name)


def prop_eq(prop: str, value: Hashable) -> PropEq:
    """Property test ``p ↦ v``."""
    return PropEq(prop, value)


def time_lt(bound: int) -> TimeLt:
    """Time test ``< k``."""
    return TimeLt(bound)


def time_eq(k: int) -> Test:
    """Time test ``= k``, expressed as ``(< k+1 ∧ ¬(< k))`` per the paper."""
    return AndTest((TimeLt(k + 1), NotTest(TimeLt(k))))


def exists() -> ExistsTest:
    """Existence test ``∃``."""
    return ExistsTest()


def is_node() -> NodeTest:
    """``Node`` test."""
    return NodeTest()


def is_edge() -> EdgeTest:
    """``Edge`` test."""
    return EdgeTest()


def and_(*parts: Test) -> Test:
    """Conjunction; nested conjunctions are flattened; a single part passes through."""
    flat: list[Test] = []
    for part in parts:
        if isinstance(part, AndTest):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TrueTest()
    if len(flat) == 1:
        return flat[0]
    return AndTest(tuple(flat))


def or_(*parts: Test) -> Test:
    """Disjunction; nested disjunctions are flattened; a single part passes through."""
    flat: list[Test] = []
    for part in parts:
        if isinstance(part, OrTest):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        raise ValueError("disjunction of zero tests is undefined")
    if len(flat) == 1:
        return flat[0]
    return OrTest(tuple(flat))


def not_(inner: Test) -> Test:
    """Negation; a double negation is simplified away."""
    if isinstance(inner, NotTest):
        return inner.inner
    return NotTest(inner)


def path_test(path: PathExpr | Test) -> PathTest:
    """Path condition ``(?path)``."""
    return PathTest(_as_path(path))
