"""Shared performance substrate for the evaluation engines.

This package holds the structures that make the hot paths fast without
changing any semantics:

* :class:`~repro.perf.graph_index.GraphIndex` — a per-graph compilation
  of adjacency, label / property buckets, existence families and
  memoized condition tables, shared across queries and engines via
  :func:`~repro.perf.graph_index.graph_index_for`;
* :class:`~repro.perf.interval_relation.IntervalRelation` — binary
  temporal relations as coalesced diagonal interval families, with the
  full Theorem-C.1 algebra implemented as interval arithmetic;
* :class:`~repro.perf.interval_eval.IntervalBottomUpEvaluator` — the
  bottom-up algorithm running natively on interval relations.

Every structure is cross-checked against the point-based ground truth in
the test suite; see PERFORMANCE.md for the architecture and the measured
speedups.
"""

from repro.perf.graph_index import CompiledCore, GraphIndex, graph_index_for
from repro.perf.interval_relation import IntervalRelation
from repro.perf.interval_eval import IntervalBottomUpEvaluator

__all__ = [
    "CompiledCore",
    "GraphIndex",
    "graph_index_for",
    "IntervalRelation",
    "IntervalBottomUpEvaluator",
]
