"""Interval-native temporal relations (the Section-VI representation for algebra).

A :class:`~repro.eval.relation.TemporalRelation` materializes a binary
relation over temporal objects as explicit ``(o, t, o', t')`` 4-tuples,
so its size — and the cost of every operation on it — scales with the
number of time *points*.  This module lifts the paper's coalesced
interval representation from unary existence families to binary
relations.

Every relation denoted by a NavL[PC,NOI] expression is a finite union of
*diagonals*

    ``{(o, t, o', t + δ) : t ∈ I}``

for an object pair ``(o, o')``, an integer offset ``δ`` and a coalesced
family of anchor intervals ``I``: tests and structural axes contribute
``δ = 0`` diagonals, the temporal axes ``N``/``P`` contribute ``δ = ±1``,
and union / composition / repetition preserve the form (composition adds
offsets, so the closure under the algebra is immediate by induction).
:class:`IntervalRelation` stores exactly this decomposition —
``(o, o') → δ → IntervalSet`` — and implements the bottom-up algebra of
Theorem C.1 as interval arithmetic, so cost scales with the number of
maximal intervals rather than with ``|Ω|``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator, Mapping

from repro.eval.relation import TemporalRelation
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
#: ``(source object, target object) → time offset → anchor intervals``.
DiagonalMap = dict[tuple[ObjectId, ObjectId], dict[int, IntervalSet]]


class IntervalRelation:
    """An immutable temporal relation stored as coalesced diagonal families.

    The represented point relation is
    ``{(o, t, o', t + δ) : ((o, o'), δ, I) stored, t ∈ I}``.
    """

    __slots__ = ("_data",)

    def __init__(
        self,
        data: Mapping[tuple[ObjectId, ObjectId], Mapping[int, IntervalSet]] = (),
    ) -> None:
        normalized: DiagonalMap = {}
        for pair, diagonals in dict(data).items():
            kept = {
                delta: family
                for delta, family in diagonals.items()
                if not family.is_empty()
            }
            if kept:
                normalized[pair] = kept
        self._data = normalized

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "IntervalRelation":
        return IntervalRelation()

    @staticmethod
    def identity(objects: Iterable[ObjectId], domain: Interval) -> "IntervalRelation":
        """The diagonal relation ``{(o, t, o, t) : t ∈ domain}`` (``path⁰``)."""
        family = IntervalSet((domain,))
        return IntervalRelation({(o, o): {0: family} for o in objects})

    @staticmethod
    def from_diagonals(
        entries: Iterable[tuple[ObjectId, ObjectId, int, IntervalSet]]
    ) -> "IntervalRelation":
        """Build a relation from ``(source, target, offset, anchors)`` entries."""
        data: DiagonalMap = {}
        for src, dst, delta, family in entries:
            if family.is_empty():
                continue
            diagonals = data.setdefault((src, dst), {})
            existing = diagonals.get(delta)
            diagonals[delta] = family if existing is None else existing.union(family)
        return IntervalRelation(data)

    @staticmethod
    def from_temporal_relation(relation: TemporalRelation) -> "IntervalRelation":
        """Exact conversion from the point-tuple representation."""
        grouped: dict[tuple[ObjectId, ObjectId, int], set[int]] = defaultdict(set)
        for o, t, o2, t2 in relation:
            grouped[(o, o2, t2 - t)].add(t)
        return IntervalRelation.from_diagonals(
            (src, dst, delta, IntervalSet.from_points(points))
            for (src, dst, delta), points in grouped.items()
        )

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        return not self._data

    def num_diagonals(self) -> int:
        """Number of stored maximal diagonal intervals (the compact size)."""
        return sum(
            len(family)
            for diagonals in self._data.values()
            for family in diagonals.values()
        )

    def num_tuples(self) -> int:
        """Number of represented point tuples, without materializing them."""
        return sum(
            family.total_points()
            for diagonals in self._data.values()
            for family in diagonals.values()
        )

    def entries(self) -> Iterator[tuple[ObjectId, ObjectId, int, IntervalSet]]:
        """Iterate over the stored ``(source, target, offset, anchors)`` entries."""
        for (src, dst), diagonals in self._data.items():
            for delta, family in diagonals.items():
                yield src, dst, delta, family

    def by_source(self) -> dict[ObjectId, list[tuple[ObjectId, int, IntervalSet]]]:
        """Stored diagonals grouped by source object.

        The returned map sends each source to its ``(target, offset,
        anchors)`` continuations — the join index used by
        :meth:`compose` and by the MATCH-segment composer
        (:class:`~repro.perf.interval_eval.IntervalMatchEvaluator`),
        which both advance per source object rather than per point.
        """
        grouped: dict[ObjectId, list[tuple[ObjectId, int, IntervalSet]]] = (
            defaultdict(list)
        )
        for (src, dst), diagonals in self._data.items():
            for delta, family in diagonals.items():
                grouped[src].append((dst, delta, family))
        return grouped

    def __contains__(self, item: tuple[ObjectId, int, ObjectId, int]) -> bool:
        o, t, o2, t2 = item
        diagonals = self._data.get((o, o2))
        if not diagonals:
            return False
        family = diagonals.get(t2 - t)
        return family is not None and family.contains_point(t)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalRelation):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        return hash(
            frozenset(
                (pair, delta, family)
                for pair, diagonals in self._data.items()
                for delta, family in diagonals.items()
            )
        )

    def __repr__(self) -> str:
        return (
            f"IntervalRelation({len(self._data)} pairs, "
            f"{self.num_diagonals()} diagonals)"
        )

    def to_temporal_relation(self) -> TemporalRelation:
        """Expand to the point-tuple representation (for cross-checks/output)."""
        tuples = [
            (src, t, dst, t + delta)
            for src, dst, delta, family in self.entries()
            for t in family.points()
        ]
        return TemporalRelation(tuples)

    def source_project(self) -> dict[ObjectId, IntervalSet]:
        """Starting temporal objects as ``object → times`` (for path conditions)."""
        out: dict[ObjectId, IntervalSet] = {}
        for (src, _dst), diagonals in self._data.items():
            for family in diagonals.values():
                existing = out.get(src)
                out[src] = family if existing is None else existing.union(family)
        return out

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalRelation") -> "IntervalRelation":
        if not self._data:
            return other
        if not other._data:
            return self
        data: DiagonalMap = {
            pair: dict(diagonals) for pair, diagonals in self._data.items()
        }
        for pair, diagonals in other._data.items():
            mine = data.setdefault(pair, {})
            for delta, family in diagonals.items():
                existing = mine.get(delta)
                mine[delta] = family if existing is None else existing.union(family)
        return IntervalRelation(data)

    def intersect(self, other: "IntervalRelation") -> "IntervalRelation":
        if not self._data or not other._data:
            return IntervalRelation.empty()
        data: DiagonalMap = {}
        for pair, diagonals in self._data.items():
            theirs = other._data.get(pair)
            if not theirs:
                continue
            kept: dict[int, IntervalSet] = {}
            for delta, family in diagonals.items():
                other_family = theirs.get(delta)
                if other_family is None:
                    continue
                overlap = family.intersect(other_family)
                if not overlap.is_empty():
                    kept[delta] = overlap
            if kept:
                data[pair] = kept
        return IntervalRelation(data)

    def compose(self, other: "IntervalRelation") -> "IntervalRelation":
        """Relational composition as diagonal arithmetic.

        ``(a, t, b, t + δ₁)`` with ``t ∈ I`` composed with
        ``(b, u, c, u + δ₂)`` with ``u ∈ J`` yields
        ``(a, t, c, t + δ₁ + δ₂)`` for ``t ∈ I ∩ (J − δ₁)`` — one
        interval-set intersection per matching diagonal pair, never a
        point-level join.
        """
        if not self._data or not other._data:
            return IntervalRelation.empty()
        by_source = other.by_source()
        data: DiagonalMap = {}
        for (src, mid), diagonals in self._data.items():
            continuations = by_source.get(mid)
            if not continuations:
                continue
            for delta1, family1 in diagonals.items():
                for dst, delta2, family2 in continuations:
                    anchors = family1.intersect(family2.shift(-delta1))
                    if anchors.is_empty():
                        continue
                    out = data.setdefault((src, dst), {})
                    delta = delta1 + delta2
                    existing = out.get(delta)
                    out[delta] = (
                        anchors if existing is None else existing.union(anchors)
                    )
        return IntervalRelation(data)

    def power(self, exponent: int, identity: "IntervalRelation") -> "IntervalRelation":
        """``self`` composed with itself ``exponent`` times (Algorithm 1)."""
        if exponent == 0:
            return identity
        if exponent == 1:
            return self
        half = self.power(exponent // 2, identity)
        squared = half.compose(half)
        if exponent % 2 == 0:
            return squared
        return squared.compose(self)

    def bounded_repetition(
        self, lower: int, upper: int, identity: "IntervalRelation"
    ) -> "IntervalRelation":
        """``⋃_{k=lower}^{upper} self^k`` (Algorithms 1 and 2 on intervals)."""
        if upper < lower:
            raise ValueError(f"upper bound {upper} below lower bound {lower}")
        prefix = self.power(lower, identity)
        if upper == lower:
            return prefix
        return prefix.compose(self._repetition_up_to(upper - lower, identity))

    def _repetition_up_to(
        self, bound: int, identity: "IntervalRelation"
    ) -> "IntervalRelation":
        if bound <= 0:
            return identity
        base = identity.union(self)
        result = identity
        power = base
        remaining = bound
        while remaining > 0:
            if remaining & 1:
                result = result.compose(power)
            power = power.compose(power)
            remaining >>= 1
        return result

    def unbounded_repetition(
        self, lower: int, identity: "IntervalRelation"
    ) -> "IntervalRelation":
        """``⋃_{k>=lower} self^k`` via a doubling fixpoint.

        Each iteration unions the previous closure back in, so the
        closure grows monotonically and an unchanged tuple count implies
        convergence — no structural equality check needed.
        """
        closure = identity.union(self)
        size = closure.num_tuples()
        while True:
            closure = closure.compose(closure).union(closure)
            next_size = closure.num_tuples()
            if next_size == size:
                break
            size = next_size
        return self.power(lower, identity).compose(closure)
