"""Interval-native bottom-up evaluation of NavL[PC,NOI] expressions.

:class:`IntervalBottomUpEvaluator` runs the same parse-tree recursion as
:class:`~repro.eval.bottom_up.BottomUpEvaluator` — leaves are
materialized, inner nodes combine child relations with union /
composition / repetition — but every intermediate relation is an
:class:`~repro.perf.interval_relation.IntervalRelation`, so the cost of
each step scales with the number of maximal diagonal intervals instead
of the number of time points.  The two evaluators compute *identical*
point relations (the test suite cross-checks them on the running
example, random graphs and the hardness gadgets); this one is the fast
mode behind ``BottomUpEvaluator(graph, use_intervals=True)``.
"""

from __future__ import annotations

from typing import Hashable, Union as TypingUnion

from repro.lang.ast import (
    Axis,
    Concat,
    PathExpr,
    PathTest,
    Repeat,
    Test,
    TestPath,
    Union,
)
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.eval.relation import TemporalRelation
from repro.perf.graph_index import GraphIndex, graph_index_for
from repro.perf.interval_relation import IntervalRelation
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


class IntervalBottomUpEvaluator:
    """Bottom-up evaluation on coalesced diagonal relations, with memoization."""

    def __init__(self, graph: TemporalGraph | GraphIndex) -> None:
        self._index = graph if isinstance(graph, GraphIndex) else graph_index_for(graph)
        self._cache: dict[PathExpr, IntervalRelation] = {}
        self._identity: IntervalRelation | None = None

    @property
    def index(self) -> GraphIndex:
        return self._index

    @property
    def graph(self) -> IntervalTPG:
        return self._index.graph

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, path: PathExpr) -> IntervalRelation:
        """The relation ``JpathK_G`` in the diagonal-interval representation."""
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        relation = self._evaluate(path)
        self._cache[path] = relation
        return relation

    def evaluate_points(self, path: PathExpr) -> TemporalRelation:
        """The relation expanded to point tuples (for cross-checks/output)."""
        return self.evaluate(path).to_temporal_relation()

    def condition_times(self, obj: ObjectId, condition: Test) -> IntervalSet:
        """Times at which ``(obj, t)`` satisfies ``condition`` (path conditions ok)."""
        return self._index.times_for(obj, condition, self._resolve_path_test)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _identity_relation(self) -> IntervalRelation:
        if self._identity is None:
            self._identity = IntervalRelation.identity(
                self._index.objects, self._index.domain
            )
        return self._identity

    def _resolve_path_test(self, condition: PathTest) -> dict[ObjectId, IntervalSet]:
        return self.evaluate(condition.path).source_project()

    def _evaluate(self, path: PathExpr) -> IntervalRelation:
        if isinstance(path, Axis):
            return self._evaluate_axis(path)
        if isinstance(path, TestPath):
            table = self._index.condition_table(
                path.condition, self._resolve_path_test
            )
            return IntervalRelation.from_diagonals(
                (obj, obj, 0, times) for obj, times in table.items()
            )
        if isinstance(path, Concat):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.compose(self.evaluate(part))
            return relation
        if isinstance(path, Union):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.union(self.evaluate(part))
            return relation
        if isinstance(path, Repeat):
            body = self.evaluate(path.body)
            identity = self._identity_relation()
            if path.upper is None:
                return body.unbounded_repetition(path.lower, identity)
            return body.bounded_repetition(path.lower, path.upper, identity)
        raise TypeError(f"unknown path expression {path!r}")

    def _evaluate_axis(self, axis: Axis) -> IntervalRelation:
        """Axes as diagonals over the full domain (point semantics, Appendix C).

        Structural axes relate endpoints at equal times for *every* time
        point; temporal axes shift by one point; existence filtering, if
        any, comes from the surrounding tests.
        """
        index = self._index
        domain = index.domain
        full = IntervalSet((domain,))
        entries: list[tuple[ObjectId, ObjectId, int, IntervalSet]] = []
        if axis.kind in ("F", "B"):
            for edge, src in index.edge_source.items():
                tgt = index.edge_target[edge]
                if axis.kind == "F":
                    entries.append((src, edge, 0, full))
                    entries.append((edge, tgt, 0, full))
                else:
                    entries.append((tgt, edge, 0, full))
                    entries.append((edge, src, 0, full))
        else:
            delta = 1 if axis.kind == "N" else -1
            if domain.start == domain.end:
                return IntervalRelation.empty()
            anchors = IntervalSet(
                (
                    Interval(domain.start, domain.end - 1)
                    if axis.kind == "N"
                    else Interval(domain.start + 1, domain.end),
                )
            )
            entries.extend((obj, obj, delta, anchors) for obj in index.objects)
        return IntervalRelation.from_diagonals(entries)
