"""Interval-native bottom-up evaluation of NavL[PC,NOI] expressions.

:class:`IntervalBottomUpEvaluator` runs the same parse-tree recursion as
:class:`~repro.eval.bottom_up.BottomUpEvaluator` — leaves are
materialized, inner nodes combine child relations with union /
composition / repetition — but every intermediate relation is an
:class:`~repro.perf.interval_relation.IntervalRelation`, so the cost of
each step scales with the number of maximal diagonal intervals instead
of the number of time points.  The two evaluators compute *identical*
point relations (the test suite cross-checks them on the running
example, random graphs and the hardness gadgets); this one is the fast
mode behind ``BottomUpEvaluator(graph, use_intervals=True)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Union as TypingUnion

from repro.errors import EvaluationError
from repro.lang.ast import (
    Axis,
    Concat,
    PathExpr,
    PathTest,
    Repeat,
    Test,
    TestPath,
    Union,
)
from repro.lang.translate import CompiledMatch
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.eval.bindings import Family
from repro.eval.relation import TemporalRelation
from repro.perf.graph_index import GraphIndex, graph_index_for
from repro.perf.interval_relation import IntervalRelation
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]

#: One coalesced MATCH output entry: variable bindings plus the shared
#: family of matching times.  The canonical alias lives in
#: :mod:`repro.eval.bindings` (structurally identical to
#: :data:`repro.dataflow.frontier2.IntervalFamily`, kept separate only
#: so neither ground-truth layer depends on the dataflow engine).
MatchFamily = Family

#: One interval-native MATCH frontier entry key: the bindings made so
#: far, each binding's time offset relative to the current time, and the
#: current object.  The mapped value is the coalesced family of current
#: times.
FrontierKey = tuple[tuple[tuple[str, ObjectId], ...], tuple[int, ...], ObjectId]


class IntervalBottomUpEvaluator:
    """Bottom-up evaluation on coalesced diagonal relations, with memoization."""

    def __init__(self, graph: TemporalGraph | GraphIndex) -> None:
        self._index = graph if isinstance(graph, GraphIndex) else graph_index_for(graph)
        self._cache: dict[PathExpr, IntervalRelation] = {}
        self._identity: IntervalRelation | None = None

    @property
    def index(self) -> GraphIndex:
        return self._index

    @property
    def graph(self) -> IntervalTPG:
        return self._index.graph

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, path: PathExpr) -> IntervalRelation:
        """The relation ``JpathK_G`` in the diagonal-interval representation."""
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        relation = self._evaluate(path)
        self._cache[path] = relation
        return relation

    def evaluate_points(self, path: PathExpr) -> TemporalRelation:
        """The relation expanded to point tuples (for cross-checks/output)."""
        return self.evaluate(path).to_temporal_relation()

    def condition_times(self, obj: ObjectId, condition: Test) -> IntervalSet:
        """Times at which ``(obj, t)`` satisfies ``condition`` (path conditions ok)."""
        return self._index.times_for(obj, condition, self._resolve_path_test)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _identity_relation(self) -> IntervalRelation:
        if self._identity is None:
            self._identity = IntervalRelation.identity(
                self._index.objects, self._index.domain
            )
        return self._identity

    def _resolve_path_test(self, condition: PathTest) -> dict[ObjectId, IntervalSet]:
        return self.evaluate(condition.path).source_project()

    def _evaluate(self, path: PathExpr) -> IntervalRelation:
        if isinstance(path, Axis):
            return self._evaluate_axis(path)
        if isinstance(path, TestPath):
            table = self._index.condition_table(
                path.condition, self._resolve_path_test
            )
            return IntervalRelation.from_diagonals(
                (obj, obj, 0, times) for obj, times in table.items()
            )
        if isinstance(path, Concat):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.compose(self.evaluate(part))
            return relation
        if isinstance(path, Union):
            relation = self.evaluate(path.parts[0])
            for part in path.parts[1:]:
                relation = relation.union(self.evaluate(part))
            return relation
        if isinstance(path, Repeat):
            body = self.evaluate(path.body)
            identity = self._identity_relation()
            if path.upper is None:
                return body.unbounded_repetition(path.lower, identity)
            return body.bounded_repetition(path.lower, path.upper, identity)
        raise TypeError(f"unknown path expression {path!r}")

    def _evaluate_axis(self, axis: Axis) -> IntervalRelation:
        """Axes as diagonals over the full domain (point semantics, Appendix C).

        Structural axes relate endpoints at equal times for *every* time
        point; temporal axes shift by one point; existence filtering, if
        any, comes from the surrounding tests.
        """
        index = self._index
        domain = index.domain
        full = IntervalSet((domain,))
        entries: list[tuple[ObjectId, ObjectId, int, IntervalSet]] = []
        if axis.kind in ("F", "B"):
            for edge, src in index.edge_source.items():
                tgt = index.edge_target[edge]
                if axis.kind == "F":
                    entries.append((src, edge, 0, full))
                    entries.append((edge, tgt, 0, full))
                else:
                    entries.append((tgt, edge, 0, full))
                    entries.append((edge, src, 0, full))
        else:
            delta = 1 if axis.kind == "N" else -1
            if domain.start == domain.end:
                return IntervalRelation.empty()
            anchors = IntervalSet(
                (
                    Interval(domain.start, domain.end - 1)
                    if axis.kind == "N"
                    else Interval(domain.start + 1, domain.end),
                )
            )
            entries.extend((obj, obj, delta, anchors) for obj in index.objects)
        return IntervalRelation.from_diagonals(entries)


class IntervalMatchEvaluator:
    """MATCH-segment composition on coalesced diagonal relations.

    The reference engine's MATCH evaluation advances a frontier of
    partial bindings through the compiled segments.  Done on point
    relations, each advance is a hash join over ``(o, t)`` tuples, so
    the frontier — and every join — scales with the number of time
    points.  This composer keeps the frontier interval-native: because
    every segment relation is a union of diagonals
    ``{(o, t, o', t + δ)}``, each binding's time relates to the current
    time by a *fixed offset* along any composition of diagonals.  A
    frontier entry is therefore keyed by ``(bindings, offsets, current
    object)`` and carries one coalesced family of current times; a
    segment advance is one interval intersection and shift per matching
    diagonal (:meth:`IntervalRelation.by_source`), and signature-equal
    entries merge eagerly through an
    :class:`~repro.temporal.intervalset.IntervalSetAccumulator` — the
    same coalescing discipline as the dataflow engine's set-at-a-time
    frontier.

    Point rows (:meth:`rows`) are expanded only from the final frontier;
    coalesced families (:meth:`families`) never expand at all.
    """

    def __init__(self, evaluator: IntervalBottomUpEvaluator) -> None:
        self._evaluator = evaluator

    def frontier(self, compiled: CompiledMatch) -> dict[FrontierKey, IntervalSet]:
        """The final MATCH frontier in the offset-diagonal representation."""
        first = compiled.segments[0]
        relation = self._evaluator.evaluate(first.path)
        accumulators: dict[FrontierKey, IntervalSetAccumulator] = defaultdict(
            IntervalSetAccumulator
        )
        for _src, dst, delta, anchors in relation.entries():
            bindings = ((first.variable, dst),) if first.variable else ()
            offsets = (0,) if first.variable else ()
            accumulators[(bindings, offsets, dst)].add(anchors.shift(delta))
        entries = {key: acc.build() for key, acc in accumulators.items()}
        for segment in compiled.segments[1:]:
            if not entries:
                break
            continuations = self._evaluator.evaluate(segment.path).by_source()
            accumulators = defaultdict(IntervalSetAccumulator)
            for (bindings, offsets, current), times in entries.items():
                for dst, delta, anchors in continuations.get(current, ()):
                    moved = times.intersect(anchors)
                    if moved.is_empty():
                        continue
                    if delta:
                        moved = moved.shift(delta)
                        new_offsets = tuple(offset - delta for offset in offsets)
                    else:
                        new_offsets = offsets
                    new_bindings = bindings
                    if segment.variable:
                        new_bindings = bindings + ((segment.variable, dst),)
                        new_offsets = new_offsets + (0,)
                    accumulators[(new_bindings, new_offsets, dst)].add(moved)
            entries = {key: acc.build() for key, acc in accumulators.items()}
        return entries

    def families(self, compiled: CompiledMatch) -> list[MatchFamily]:
        """Coalesced ``(bindings, times)`` families, one per binding tuple.

        Raises :class:`~repro.errors.EvaluationError` when some frontier
        entry binds variables at different times (offsets disagree) —
        such output cannot be coalesced onto a shared time axis.  The
        check is exact: a query whose temporal moves cancel out (e.g.
        ``N·P`` between two bindings) still coalesces here, whereas the
        dataflow engine rejects it statically.
        """
        merged: dict[tuple[tuple[str, ObjectId], ...], IntervalSetAccumulator] = {}
        for (bindings, offsets, _current), times in self.frontier(compiled).items():
            if offsets and any(offset != offsets[0] for offset in offsets[1:]):
                raise EvaluationError(
                    "interval (coalesced) output is only defined when every "
                    "variable is bound at a single shared time"
                )
            anchor = offsets[0] if offsets else 0
            accumulator = merged.get(bindings)
            if accumulator is None:
                accumulator = merged[bindings] = IntervalSetAccumulator()
            accumulator.add(times.shift(anchor) if anchor else times)
        return [(bindings, acc.build()) for bindings, acc in merged.items()]

    def rows(self, compiled: CompiledMatch) -> list[tuple[tuple[ObjectId, int], ...]]:
        """Point-based binding rows, expanded from the final frontier only."""
        out: list[tuple[tuple[ObjectId, int], ...]] = []
        for (bindings, offsets, _current), times in self.frontier(compiled).items():
            if not bindings:
                if not times.is_empty():
                    out.append(())
                continue
            objects = tuple(obj for _name, obj in bindings)
            for t in times.points():
                out.append(
                    tuple(
                        (obj, t + offset)
                        for obj, offset in zip(objects, offsets)
                    )
                )
        return out
